"""Scenario fuzzing: seeded STG/netlist generation, mutation operators,
differential oracles, shrinking, and the ``repro-fuzz`` campaign.

The paper's experimental surface is 23 hand-authored STG benchmarks;
this package grows the corpus arbitrarily.  A seeded generator
(:mod:`repro.fuzz.generator`) emits *healthy* STGs — free-choice,
input-resolved, persistent, CSC — by construction on a Johnson-ring
backbone with concurrency/choice/mirror decorations, plus raw racy
feedback netlists for the settling oracles.  Every scenario runs
through the model-dispatched differential oracle pairs
(:mod:`repro.fuzz.oracles`):

* compiled engine vs the seed's sweep settling,
* explicit-exact vs symbolic CSSG construction,
* fault overlays vs materialized faulty netlists,
* arena walk vs slab fault-sim kernels,
* plain vs incremental re-ATPG across mutations
  (:mod:`repro.fuzz.mutate`).

A divergence is auto-shrunk (:mod:`repro.fuzz.shrink`) to a minimal
failing spec.  :mod:`repro.fuzz.campaign` packages seed ranges as
campaign jobs so ``repro-fuzz`` rides the existing runner: fork
workers, heartbeats and the content-addressed result store (warm
reruns of an already-fuzzed seed range cost zero).
"""

from repro.fuzz.campaign import (
    FUZZ_SCHEMA_VERSION,
    FuzzSpec,
    aggregate_reports,
    execute_fuzz_job,
    expand_fuzz,
    fuzz_job_key,
)
from repro.fuzz.generator import (
    GeneratorConfig,
    RejectionStats,
    Scenario,
    generate_scenario,
    generate_spec,
    spec_to_stg_text,
)
from repro.fuzz.mutate import (
    MUTATION_OPS,
    Mutation,
    mutate_netlist,
    shift_marking,
)
from repro.fuzz.oracles import (
    ORACLES,
    Divergence,
    OracleCaps,
    ScenarioReport,
    oracle_names,
    run_scenario,
)
from repro.fuzz.shrink import shrink_netlist_text, shrink_scenario, shrink_spec

__all__ = [
    "FUZZ_SCHEMA_VERSION",
    "Divergence",
    "FuzzSpec",
    "GeneratorConfig",
    "MUTATION_OPS",
    "Mutation",
    "ORACLES",
    "OracleCaps",
    "RejectionStats",
    "Scenario",
    "ScenarioReport",
    "aggregate_reports",
    "execute_fuzz_job",
    "expand_fuzz",
    "fuzz_job_key",
    "generate_scenario",
    "generate_spec",
    "mutate_netlist",
    "oracle_names",
    "run_scenario",
    "shift_marking",
    "shrink_netlist_text",
    "shrink_scenario",
    "shrink_spec",
    "spec_to_stg_text",
]
