"""Auto-shrinking: reduce a failing scenario to a minimal failing spec.

Greedy first-improvement delta debugging over two substrates:

* **spec level** (:func:`shrink_spec`) — structural moves on the
  generator IR: drop a par/choice/mirror decoration, drop a choice
  branch, shorten a response chain, shorten the ring once the spec is
  undecorated, and fall back from two-level to complex synthesis.
  Every move strictly decreases a size measure, so the loop
  terminates; the result is 1-minimal — no single remaining move
  keeps the failure alive.

* **netlist level** (:func:`shrink_netlist_text`) — circuit surgery on
  canonical ``.net`` text: drop a gate or primary input (readers see
  the dropped signal's reset value as a constant), or replace a gate's
  expression with one of its own subexpressions.

``fails`` predicates must return True iff the candidate still exhibits
the failure; raise-free — a candidate that crashes the predicate
should be reported as False (not failing), which the campaign's
wrapper does.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.circuit.expr import And, Const, Expr, Not, Or, Var, Xor
from repro.circuit.netlist import Circuit
from repro.circuit.parser import netlist_to_text, parse_netlist
from repro.fuzz.generator import (
    ChoiceSpec,
    Scenario,
    StgSpec,
    spec_to_stg_text,
)

__all__ = ["shrink_netlist_text", "shrink_scenario", "shrink_spec"]


# -- spec-level moves ---------------------------------------------------


def _used_signals(spec: StgSpec) -> Tuple[str, ...]:
    used = list(spec.ring)
    for choice in spec.choices:
        used.extend(choice.inputs)
        for chain in choice.responses:
            used.extend(chain)
        used.append(choice.merge)
    return tuple(used)


def _normalize(spec: StgSpec) -> StgSpec:
    """Drop kind rows for signals no longer referenced anywhere."""
    used = set(_used_signals(spec))
    return replace(
        spec, kinds=tuple((s, k) for s, k in spec.kinds if s in used)
    )


def _spec_moves(spec: StgSpec) -> Iterator[StgSpec]:
    """Candidate one-step reductions, cheapest-win order."""
    for i in range(len(spec.choices)):
        yield replace(spec, choices=spec.choices[:i] + spec.choices[i + 1:])
    for i in range(len(spec.pars)):
        yield replace(spec, pars=spec.pars[:i] + spec.pars[i + 1:])
    for i in range(len(spec.mirrors)):
        yield replace(spec, mirrors=spec.mirrors[:i] + spec.mirrors[i + 1:])
    for ci, choice in enumerate(spec.choices):
        if len(choice.inputs) > 2:
            for b in range(len(choice.inputs)):
                smaller = ChoiceSpec(
                    choice.pos,
                    choice.inputs[:b] + choice.inputs[b + 1:],
                    choice.responses[:b] + choice.responses[b + 1:],
                    choice.merge,
                )
                yield replace(
                    spec,
                    choices=spec.choices[:ci] + (smaller,) + spec.choices[ci + 1:],
                )
        for b, chain in enumerate(choice.responses):
            if chain:
                shorter = ChoiceSpec(
                    choice.pos,
                    choice.inputs,
                    choice.responses[:b] + (chain[:-1],) + choice.responses[b + 1:],
                    choice.merge,
                )
                yield replace(
                    spec,
                    choices=spec.choices[:ci] + (shorter,) + spec.choices[ci + 1:],
                )
    if (
        len(spec.ring) > 2
        and not spec.pars
        and not spec.choices
        and not spec.mirrors
    ):
        yield replace(spec, ring=spec.ring[:-1])
    if spec.style != "complex":
        yield replace(spec, style="complex")


def shrink_spec(
    spec: StgSpec, fails: Callable[[StgSpec], bool]
) -> StgSpec:
    """Greedily minimize ``spec`` while ``fails`` stays True.

    ``fails`` receives normalized candidate specs.  The input spec is
    assumed failing; the result is 1-minimal over the move set.
    """
    current = _normalize(spec)
    improved = True
    while improved:
        improved = False
        for candidate in _spec_moves(current):
            candidate = _normalize(candidate)
            if fails(candidate):
                current = candidate
                improved = True
                break
    return current


# -- netlist-level moves ------------------------------------------------


def _subexprs(expr: Expr) -> List[Expr]:
    if isinstance(expr, Not):
        return [expr.arg]
    if isinstance(expr, (And, Or)):
        out = list(expr.args)
        if len(expr.args) > 2:  # also try dropping one operand
            for i in range(len(expr.args)):
                rest = expr.args[:i] + expr.args[i + 1:]
                out.append(rest[0] if len(rest) == 1 else type(expr)(rest))
        return out
    if isinstance(expr, Xor):
        return [expr.a, expr.b]
    return []


def _replace_var(expr: Expr, name: str, value: Expr) -> Expr:
    if isinstance(expr, Var):
        return value if expr.name == name else expr
    if isinstance(expr, Not):
        return Not(_replace_var(expr.arg, name, value))
    if isinstance(expr, And):
        return And(tuple(_replace_var(a, name, value) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(_replace_var(a, name, value) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(
            _replace_var(expr.a, name, value), _replace_var(expr.b, name, value)
        )
    return expr


def _emit(
    circuit: Circuit,
    *,
    drop: Optional[str] = None,
    expr_override: Optional[Tuple[str, Expr]] = None,
) -> Optional[str]:
    """Re-emit ``circuit`` minus ``drop`` (readers get its reset value
    as a constant) and/or with one gate's expression replaced."""
    dropped_const: Optional[Expr] = None
    if drop is not None:
        if circuit.reset_state is None:
            dropped_const = Const(0)
        else:
            dropped_const = Const((circuit.reset_state >> circuit.index(drop)) & 1)
    out = Circuit(circuit.name)
    for name in circuit.input_names:
        if name != drop:
            out.add_input(name)
    n_gates = 0
    for gate in circuit.gates:
        if gate.name == drop:
            continue
        expr = gate.expr
        if expr_override is not None and gate.name == expr_override[0]:
            expr = expr_override[1]
        if drop is not None:
            expr = _replace_var(expr, drop, dropped_const)
        out.add_gate(gate.name, expr=expr)
        n_gates += 1
    if n_gates == 0:
        return None
    outputs = [n for n in circuit.output_names if n != drop]
    if not outputs:
        return None  # a circuit with nothing observable is not a scenario
    for name in outputs:
        out.mark_output(name)
    if circuit.reset_state is not None:
        out.set_reset(
            {
                s.name: (circuit.reset_state >> s.index) & 1
                for s in circuit.signals
                if s.name != drop
            }
        )
    out.set_k(circuit.k)
    return netlist_to_text(out.finalize())


def _netlist_candidates(text: str) -> Iterator[str]:
    circuit = parse_netlist(text, filename="<shrink>")
    for gate in circuit.gates:
        cand = _emit(circuit, drop=gate.name)
        if cand is not None:
            yield cand
    if len(circuit.input_names) > 1:
        for name in circuit.input_names:
            cand = _emit(circuit, drop=name)
            if cand is not None:
                yield cand
    for gate in circuit.gates:
        for sub in _subexprs(gate.expr):
            cand = _emit(circuit, expr_override=(gate.name, sub))
            if cand is not None:
                yield cand


def shrink_netlist_text(text: str, fails: Callable[[str], bool]) -> str:
    """Greedily minimize canonical ``.net`` text while ``fails`` holds."""
    current = netlist_to_text(parse_netlist(text, filename="<shrink>"))
    improved = True
    while improved:
        improved = False
        for candidate in _netlist_candidates(current):
            if candidate != current and fails(candidate):
                current = candidate
                improved = True
                break
    return current


# -- scenario dispatch --------------------------------------------------


def shrink_scenario(
    scenario: Scenario, fails: Callable[[Scenario], bool]
) -> Scenario:
    """Minimal failing scenario, same seed and kind as the input.

    STG scenarios carrying their generator IR shrink structurally;
    raw netlists (and corpus replays without an IR) shrink at the
    netlist level.
    """
    if scenario.kind == "stg" and scenario.spec is not None:

        def spec_fails(spec: StgSpec) -> bool:
            return fails(
                Scenario(
                    scenario.seed,
                    "stg",
                    spec_to_stg_text(spec),
                    style=spec.style,
                    spec=spec,
                )
            )

        best = shrink_spec(scenario.spec, spec_fails)
        return Scenario(
            scenario.seed,
            "stg",
            spec_to_stg_text(best),
            style=best.style,
            spec=best,
            rejections=scenario.rejections,
        )

    if scenario.kind != "netlist":
        return scenario  # an STG replay without its IR cannot shrink

    def text_fails(text: str) -> bool:
        return fails(replace_text(scenario, text))

    best_text = shrink_netlist_text(scenario.text, text_fails)
    return replace_text(scenario, best_text)


def replace_text(scenario: Scenario, text: str) -> Scenario:
    """A copy of ``scenario`` carrying different source text."""
    return Scenario(
        scenario.seed,
        scenario.kind,
        text,
        style=scenario.style,
        spec=None,
        rejections=scenario.rejections,
    )
