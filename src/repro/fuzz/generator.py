"""Seeded, reproducible STG / netlist scenario generation.

Healthy STGs are generated **by construction**, then verified: the
backbone is a Johnson ring ``s0+ s1+ ... s0- s1- ...`` whose running
codes are pairwise distinct (so CSC holds on the undecorated ring),
decorated along tunable shape axes:

* **concurrency** — a window of ring edges is forked into two parallel
  marked-graph branches (fork/join on the neighbouring ring edges);
* **choice** — a free-choice place whose consumers are dedicated
  *input* transitions (the environment resolves the choice), each
  branch a nested handshake over fresh signals that raises a shared
  merge signal before rejoining, so no two reachable states share a
  code with conflicting next-state functions;
* **mirror** — an input-signal ring edge duplicated into ``e/1`` /
  ``e/2`` instances consuming one shared place (instance-suffix
  machinery, trivially confluent).

Every emitted spec is parsed back and gated through the full
:func:`repro.stg.analysis.analyse_stg` battery plus synthesis of the
requested style; unhealthy draws are rejected and retried with the
rejection reason recorded (multi-decoration draws *can* alias codes —
that is what the health gate is for).  Generation is a pure function
of ``(seed, config)``: same seed, byte-identical spec.

Raw **netlist** scenarios (racy, oscillating, non-confluent feedback
circuits the healthy family can never produce) are generated for the
settling/CSSG/kernel oracles, with a deterministically chosen stable
reset state.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.expr import And, Const, Expr, Not, Or, Var, Xor
from repro.circuit.netlist import Circuit
from repro.circuit.parser import netlist_to_text, parse_netlist
from repro.errors import ReproError
from repro.stg.analysis import analyse_stg
from repro.stg.parser import parse_stg
from repro.stg.reachability import build_state_graph
from repro.stg.synthesis import synthesize

__all__ = [
    "GeneratorConfig",
    "RejectionStats",
    "Scenario",
    "StgSpec",
    "generate_netlist_text",
    "generate_scenario",
    "generate_spec",
    "spec_to_stg_text",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape axes of the scenario distribution.

    ``GeneratorConfig()`` is the everyday small-and-fast profile used
    by the CI smoke job; the nightly campaign widens the axes.

    >>> GeneratorConfig(max_signals=6).max_signals
    6
    """

    #: Johnson-ring signal count range (total signals grow further with
    #: each choice block's dedicated input/response/merge signals).
    min_signals: int = 2
    max_signals: int = 4
    #: Hard cap on total signals (ring + choice extras).  Synthesis
    #: cost is exponential in the signal count, so this is the
    #: scenario-latency dial: 9 keeps health checks well under 100 ms.
    max_total_signals: int = 9
    #: Probability of inserting a free-choice block (per feasible slot,
    #: at most ``max_choices`` per spec).
    choice_density: float = 0.6
    max_choices: int = 2
    max_choice_branches: int = 3
    #: Response-handshake depth inside choice branches (0 = bare pulse).
    max_response_depth: int = 2
    #: Probability of forking a ring window into two parallel branches.
    concurrency: float = 0.6
    max_pars: int = 2
    #: Probability of mirroring one input-signal ring edge.
    mirror_density: float = 0.3
    #: Synthesis-style mix for STG scenarios.
    p_two_level: float = 0.25
    #: Fraction of scenarios that are raw feedback netlists instead of
    #: healthy STGs (racy circuits for the settling oracles).
    netlist_fraction: float = 0.25
    netlist_max_inputs: int = 3
    netlist_max_gates: int = 4
    #: Probability a raw-netlist gate may read its own output.
    feedback: float = 0.5
    #: Health gate: reject state graphs larger than this.
    max_states: int = 5000
    #: Rejection-sampling budget per scenario seed.
    max_attempts: int = 10

    def to_json_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json_dict(data: Dict) -> "GeneratorConfig":
        return GeneratorConfig(**data)


@dataclass
class RejectionStats:
    """Why draws were rejected before a healthy spec came out."""

    attempts: int = 0
    accepted: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)

    def note(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    def merge(self, other: "RejectionStats") -> None:
        self.attempts += other.attempts
        self.accepted += other.accepted
        for reason, n in other.by_reason.items():
            self.by_reason[reason] = self.by_reason.get(reason, 0) + n

    def to_json_dict(self) -> Dict:
        return {
            "attempts": self.attempts,
            "accepted": self.accepted,
            "by_reason": dict(sorted(self.by_reason.items())),
        }


# -- the STG spec IR ----------------------------------------------------


@dataclass(frozen=True)
class ParSpec:
    """Fork ring positions ``[start, start+length)`` (one half only)
    into two branches: the first ``split`` edges and the rest."""

    start: int
    length: int
    split: int


@dataclass(frozen=True)
class ChoiceSpec:
    """Free-choice block inserted before ring position ``pos``.

    Branch ``b`` is the edge chain ``x_b+ r1+ .. rd+ w+/b x_b- rd- ..
    r1-`` over dedicated signals; all branches raise the shared merge
    signal ``w`` (distinct instances), whose fall is spliced in right
    after ring edge ``pos`` so the join state never shares a code with
    the pre-choice state.
    """

    pos: int
    inputs: Tuple[str, ...]  #: one dedicated input signal per branch
    responses: Tuple[Tuple[str, ...], ...]  #: per-branch response chain
    merge: str  #: shared non-input merge signal


@dataclass(frozen=True)
class MirrorSpec:
    """Duplicate the input-signal ring edge at ``pos`` into ``ways``
    instance-suffixed transitions consuming one shared place."""

    pos: int
    ways: int


@dataclass(frozen=True)
class StgSpec:
    """The generator's intermediate representation of one scenario —
    small enough to mutate structurally (the shrinker's substrate) and
    deterministic to emit."""

    name: str
    ring: Tuple[str, ...]  #: Johnson-ring signals, bit order
    kinds: Tuple[Tuple[str, str], ...]  #: (signal, input|output|internal)
    pars: Tuple[ParSpec, ...] = ()
    choices: Tuple[ChoiceSpec, ...] = ()
    mirrors: Tuple[MirrorSpec, ...] = ()
    style: str = "complex"

    @property
    def kind_of(self) -> Dict[str, str]:
        return dict(self.kinds)

    def signals(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.kinds)


@dataclass
class Scenario:
    """One generated scenario: the spec text *is* the artifact (same
    seed, byte-identical text)."""

    seed: int
    kind: str  #: ``"stg"`` or ``"netlist"``
    text: str  #: ``.g`` or ``.net`` source
    style: str = "complex"  #: synthesis style (STG scenarios)
    spec: Optional[StgSpec] = None  #: IR when generated (not for corpus replays)
    rejections: RejectionStats = field(default_factory=RejectionStats)

    def circuit(self) -> Circuit:
        """Synthesize / parse the scenario's gate-level circuit."""
        if self.kind == "netlist":
            return parse_netlist(self.text, filename=f"<fuzz:{self.seed}>")
        stg = parse_stg(self.text, filename=f"<fuzz:{self.seed}>")
        return synthesize(stg, style=self.style)


# -- spec construction --------------------------------------------------


def _rng_for(seed: int, attempt: int) -> random.Random:
    return random.Random(f"repro-fuzz:{seed}:{attempt}")


def generate_spec(seed: int, cfg: GeneratorConfig, attempt: int = 0) -> StgSpec:
    """One structured draw from the spec distribution (health not yet
    checked — :func:`generate_scenario` gates and retries)."""
    rng = _rng_for(seed, attempt)
    m = rng.randint(cfg.min_signals, min(cfg.max_signals, cfg.max_total_signals - 1))
    ring = tuple(f"s{i}" for i in range(m))
    kinds: Dict[str, str] = {}
    for s in ring:
        kinds[s] = rng.choice(("input", "output", "internal"))
    # The only transition enabled at the initial marking is s0+: it must
    # be an input edge or the synthesized reset state cannot be stable.
    kinds[ring[0]] = "input"
    budget = cfg.max_total_signals - m

    blocked: set = {0}  # position 0 keeps the marked entry place p0
    pars: List[ParSpec] = []
    choices: List[ChoiceSpec] = []
    mirrors: List[MirrorSpec] = []

    def block(lo: int, hi: int) -> None:
        blocked.update(range(lo, hi + 1))

    def free(lo: int, hi: int) -> bool:
        return 0 <= lo and hi <= 2 * m - 1 and not any(
            p in blocked for p in range(lo, hi + 1)
        )

    # Concurrency: fork windows inside one half; the fork is the ring
    # edge before the window and the join the ring edge after it, so a
    # one-position margin on both sides stays undecorated.
    for _ in range(cfg.max_pars):
        if rng.random() >= cfg.concurrency:
            continue
        half = rng.choice((0, 1))
        lo_half, hi_half = (0, m - 1) if half == 0 else (m, 2 * m - 1)
        length = rng.randint(2, max(2, min(4, m)))
        starts = [
            i
            for i in range(lo_half, hi_half - length + 2)
            if free(i - 1, i + length)
        ]
        if not starts:
            continue
        start = rng.choice(starts)
        split = rng.randint(1, length - 1)
        pars.append(ParSpec(start, length, split))
        block(start - 1, start + length)

    # Choice blocks: inserted before a free position, with the merge
    # signal's fall spliced right after it (margin of one on each side).
    extra = 0
    for _ in range(cfg.max_choices):
        if rng.random() >= cfg.choice_density:
            continue
        slots = [p for p in range(1, 2 * m) if free(p - 1, p + 1)]
        if not slots:
            continue
        pos = rng.choice(slots)
        n_branches = rng.randint(2, cfg.max_choice_branches)
        if n_branches + 1 > budget:
            continue  # block would blow the signal budget — skip it
        xs, rs = [], []
        spare = budget - n_branches - 1
        for b in range(n_branches):
            xs.append(f"c{extra}x{b}")
            depth = min(rng.randint(0, cfg.max_response_depth), spare)
            spare -= depth
            chain = tuple(f"c{extra}r{b}_{j}" for j in range(depth))
            rs.append(chain)
        merge = f"c{extra}w"
        budget -= n_branches + 1 + sum(len(c) for c in rs)
        choices.append(ChoiceSpec(pos, tuple(xs), tuple(rs), merge))
        for x in xs:
            kinds[x] = "input"
        for chain in rs:
            for r in chain:
                kinds[r] = rng.choice(("input", "output", "internal"))
        kinds[merge] = rng.choice(("output", "internal"))
        block(pos - 1, pos + 1)
        extra += 1

    # Mirrors: duplicate one input-signal ring edge.  The final ring
    # position is excluded — its join place would arc straight into p0
    # (place-to-place, which the net forbids).
    if rng.random() < cfg.mirror_density:
        slots = [
            p
            for p in range(1, 2 * m - 1)
            if p not in blocked and kinds[ring[p % m]] == "input"
        ]
        if slots:
            pos = rng.choice(slots)
            mirrors.append(MirrorSpec(pos, rng.randint(2, 3)))
            block(pos, pos)

    # Interface sanity: at least one input and one non-input signal.
    if not any(k == "input" for k in kinds.values()):
        kinds[ring[0]] = "input"
    if not any(k != "input" for k in kinds.values()):
        kinds[ring[-1]] = "output"
    # Fault observation needs a primary output.
    if not any(k == "output" for k in kinds.values()):
        name = next(s for s, k in kinds.items() if k != "input")
        kinds[name] = "output"

    order = list(ring) + sorted(k for k in kinds if k not in ring)
    style = "two-level" if rng.random() < cfg.p_two_level else "complex"
    return StgSpec(
        name=f"fz{seed}",
        ring=ring,
        kinds=tuple((s, kinds[s]) for s in order),
        pars=tuple(pars),
        choices=tuple(sorted(choices, key=lambda c: c.pos)),
        mirrors=tuple(mirrors),
        style=style,
    )


def _ring_label(spec: StgSpec, pos: int) -> str:
    m = len(spec.ring)
    return spec.ring[pos % m] + ("+" if pos < m else "-")


def spec_to_stg_text(spec: StgSpec) -> str:
    """Deterministically emit the spec as ``.g`` source."""
    m = len(spec.ring)
    kind_of = spec.kind_of
    by_kind = {"input": [], "output": [], "internal": []}
    for name, kind in spec.kinds:
        by_kind[kind].append(name)

    par_at = {p.start: p for p in spec.pars}
    par_member: Dict[int, ParSpec] = {}
    for p in spec.pars:
        for q in range(p.start, p.start + p.length):
            par_member[q] = p
    choice_at = {c.pos: c for c in spec.choices}
    mirror_at = {mi.pos: mi for mi in spec.mirrors}

    lines: List[str] = [f".model {spec.name}"]
    for kind in ("input", "output", "internal"):
        if by_kind[kind]:
            directive = {"input": ".inputs", "output": ".outputs",
                         "internal": ".internal"}[kind]
            lines.append(f"{directive} {' '.join(by_kind[kind])}")
    lines.append(".graph")

    arcs: List[str] = []
    fresh = iter(range(10_000))

    def connect(srcs: Sequence[str], dsts: Sequence[str]) -> None:
        """Arc every source to every destination (implicit places)."""
        for s in srcs:
            for d in dsts:
                arcs.append(f"{s} {d}")

    tails: List[str] = ["p0"]
    pos = 0
    while pos < 2 * m:
        choice = choice_at.get(pos)
        if choice is not None:
            # free-choice place fed by the current tail
            pc = f"pc{next(fresh)}"
            connect(tails, [pc])
            pj = f"pj{next(fresh)}"
            for b, x in enumerate(choice.inputs):
                chain = (
                    [f"{x}+"]
                    + [f"{r}+" for r in choice.responses[b]]
                    + [f"{choice.merge}+/{b + 1}"]
                    + [f"{x}-"]
                    + [f"{r}-" for r in reversed(choice.responses[b])]
                )
                arcs.append(f"{pc} {chain[0]}")
                for a, bb in zip(chain, chain[1:]):
                    arcs.append(f"{a} {bb}")
                arcs.append(f"{chain[-1]} {pj}")
            tails = [pj]

        par = par_at.get(pos)
        if par is not None:
            window = [_ring_label(spec, q) for q in range(par.start, par.start + par.length)]
            branches = [window[: par.split], window[par.split:]]
            new_tails = []
            for branch in branches:
                connect(tails, [branch[0]])
                for a, b in zip(branch, branch[1:]):
                    arcs.append(f"{a} {b}")
                new_tails.append(branch[-1])
            tails = new_tails
            pos = par.start + par.length
            continue

        label = _ring_label(spec, pos)
        mirror = mirror_at.get(pos)
        if mirror is not None:
            pm = f"pm{next(fresh)}"
            pj = f"pj{next(fresh)}"
            connect(tails, [pm])
            for w in range(mirror.ways):
                arcs.append(f"{pm} {label}/{w + 1}")
                arcs.append(f"{label}/{w + 1} {pj}")
            tails = [pj]
        else:
            connect(tails, [label])
            tails = [label]

        if choice is not None:
            # merge signal falls right after the post-choice ring edge
            connect(tails, [f"{choice.merge}-"])
            tails = [f"{choice.merge}-"]
        pos += 1

    connect(tails, ["p0"])
    lines.extend(arcs)
    lines.append(".marking { p0 }")
    names = [name for name, _ in spec.kinds]
    lines.append(".initial " + " ".join(f"{s}=0" for s in names))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def check_spec_health(text: str, style: str, cfg: GeneratorConfig) -> Optional[str]:
    """None when the spec passes every gate, else the rejection reason."""
    try:
        stg = parse_stg(text)
        sg = build_state_graph(stg, cap=4 * cfg.max_states)
    except ReproError as exc:
        return f"build:{type(exc).__name__}"
    if sg.n_states > cfg.max_states:
        return "too-many-states"
    report = analyse_stg(stg, sg)
    if report.non_free_choice_places:
        return "non-free-choice"
    if report.non_input_choice_places:
        return "output-choice"
    if report.persistency_violations:
        return "non-persistent"
    if report.dead_signals:
        return "dead-signals"
    if report.csc_conflicts:
        return "csc-conflict"
    try:
        synthesize(stg, style=style, sg=sg)
    except ReproError as exc:
        return f"synthesis:{type(exc).__name__}"
    return None


# -- raw racy netlists --------------------------------------------------

_DEPTH_OPS = ("and", "or", "xor")


def _random_expr(rng: random.Random, pool: Sequence[str], depth: int) -> Expr:
    if depth <= 0 or (len(pool) > 1 and rng.random() < 0.35):
        base: Expr = Var(rng.choice(pool))
        return Not(base) if rng.random() < 0.4 else base
    if rng.random() < 0.06:
        return Const(rng.randint(0, 1))
    a = _random_expr(rng, pool, depth - 1)
    b = _random_expr(rng, pool, depth - 1)
    op = rng.choice(_DEPTH_OPS)
    if op == "and":
        return And((a, b))
    if op == "or":
        return Or((a, b))
    return Xor(a, b)


def _build_netlist(rng: random.Random, cfg: GeneratorConfig,
                   reset_bits: Optional[int] = None) -> Circuit:
    n_inputs = rng.randint(1, cfg.netlist_max_inputs)
    n_gates = rng.randint(2, cfg.netlist_max_gates)
    c = Circuit("fznet")
    pool: List[str] = []
    for i in range(n_inputs):
        c.add_input(f"I{i}")
    for i in range(n_inputs):
        c.add_gate(f"b{i}", gtype="BUF", inputs=[f"I{i}"])
        pool.append(f"b{i}")
    for j in range(n_gates):
        name = f"g{j}"
        # Self- and forward-feedback allowed: racy circuits are the point.
        sources = pool + ([name] if rng.random() < cfg.feedback else [])
        c.add_gate(name, expr=_random_expr(rng, sources, rng.randint(1, 3)))
        pool.append(name)
    c.mark_output(pool[-1])
    if reset_bits is not None:
        names = [f"I{i}" for i in range(n_inputs)] + pool
        c.set_reset({n: (reset_bits >> i) & 1 for i, n in enumerate(names)})
    return c.finalize()


def generate_netlist_text(seed: int, cfg: GeneratorConfig,
                          attempt: int = 0) -> Optional[str]:
    """A racy feedback netlist with a deterministically chosen *stable*
    reset, as canonical ``.net`` text — or None for a reset-less draw."""
    probe = _build_netlist(_rng_for(seed, attempt), cfg)
    stable = probe.enumerate_stable_states()
    if not stable:
        return None
    pick = stable[_rng_for(seed ^ 0x5EED, attempt).randrange(len(stable))]
    circuit = _build_netlist(_rng_for(seed, attempt), cfg, reset_bits=pick)
    return netlist_to_text(circuit)


# -- the scenario entry point ------------------------------------------


def generate_scenario(seed: int, cfg: Optional[GeneratorConfig] = None) -> Optional[Scenario]:
    """The scenario for ``seed`` — a pure function of ``(seed, cfg)``.

    Draws are health-gated and retried up to ``cfg.max_attempts``
    times with the rejection reasons recorded on the returned
    scenario; ``None`` (rare) means every attempt was rejected.

    >>> a = generate_scenario(7)
    >>> b = generate_scenario(7)
    >>> a.text == b.text and a.kind == b.kind
    True
    """
    cfg = cfg or GeneratorConfig()
    stats = RejectionStats()
    mode_rng = random.Random(f"repro-fuzz-kind:{seed}")
    want_netlist = mode_rng.random() < cfg.netlist_fraction
    for attempt in range(cfg.max_attempts):
        stats.attempts += 1
        if want_netlist:
            text = generate_netlist_text(seed, cfg, attempt)
            if text is None:
                stats.note("netlist:no-stable-reset")
                continue
            stats.accepted += 1
            return Scenario(seed, "netlist", text, style="", rejections=stats)
        spec = generate_spec(seed, cfg, attempt)
        text = spec_to_stg_text(spec)
        reason = check_spec_health(text, spec.style, cfg)
        if reason is not None:
            stats.note(reason)
            continue
        stats.accepted += 1
        return Scenario(
            seed, "stg", text, style=spec.style, spec=spec, rejections=stats
        )
    return None
