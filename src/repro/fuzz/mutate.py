"""Mutation operators keyed to the cohort-invalidation matrix.

Each operator takes canonical ``.net`` text and returns a
:class:`Mutation` — the mutated canonical text plus what the edit
*means* for the incremental layer (``docs/incremental.md``):

=============  ==========  ===========================================
operator       preserving  expected cohort / CSSG effect
=============  ==========  ===========================================
``rename``     yes         cones whose docs mention the old name get
                           new keys; the name-free CSSG fingerprint is
                           unchanged, so the CSSG cache still hits
``rewrite``    yes         double-negates one gate: same function, new
                           cone doc and new structural fingerprint —
                           that gate's cones and the CSSG cache miss,
                           the rest of the partition is reused
``splice``     no          inserts a fanout buffer: every cone that
                           contained the spliced consumer widens, and
                           the fault universe itself changes
``reset_shift``  no        moves the reset to another stable state:
                           reset bits live in every cone doc, so all
                           cohorts and the CSSG cache are invalidated
=============  ==========  ===========================================

``preserving`` means the *good-circuit semantics* are untouched (the
CSSG is identical up to signal names); it does **not** mean the ATPG
payload is byte-identical — rewrites and splices change fault sites.

:func:`shift_marking` is the STG-level counterpart: it advances the
initial marking by firing one enabled transition (re-gate health after
applying it — the new start state may not be synthesizable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuit.expr import And, Expr, Not, Or, Var, Xor
from repro.circuit.netlist import Circuit
from repro.circuit.parser import _gate_input_order, netlist_to_text, parse_netlist
from repro.stg.parser import parse_stg

__all__ = [
    "MUTATION_OPS",
    "Mutation",
    "mutate_netlist",
    "shift_marking",
]


@dataclass(frozen=True)
class Mutation:
    op: str  #: one of :data:`MUTATION_OPS`
    preserving: bool  #: good-circuit semantics (CSSG) unchanged?
    target: str  #: the signal/gate the edit touched
    text: str  #: mutated canonical ``.net`` text
    detail: str = ""  #: e.g. the new name for a rename


def _subst(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Rename variables throughout an expression tree."""
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, Not):
        return Not(_subst(expr.arg, mapping))
    if isinstance(expr, And):
        return And(tuple(_subst(a, mapping) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(_subst(a, mapping) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(_subst(expr.a, mapping), _subst(expr.b, mapping))
    return expr  # Const


def _rebuild(
    circuit: Circuit,
    *,
    rename: Optional[Dict[str, str]] = None,
    expr_override: Optional[Dict[str, Expr]] = None,
    extra_gates: Optional[List[Tuple[str, str, str]]] = None,
    reset_extra: Optional[Dict[str, int]] = None,
    reset_bits: Optional[int] = None,
) -> Circuit:
    """Clone ``circuit`` with edits applied, preserving gate order.

    ``extra_gates`` are ``(after, name, src)`` buffer insertions;
    ``reset_bits`` replaces the reset outright, ``reset_extra`` only
    extends it (for the new buffers).
    """
    rename = rename or {}
    expr_override = expr_override or {}
    extras = {after: (name, src) for after, name, src in (extra_gates or [])}
    out = Circuit(circuit.name)
    for name in circuit.input_names:
        out.add_input(rename.get(name, name))
    for gate in circuit.gates:
        new_name = rename.get(gate.name, gate.name)
        if gate.name in expr_override:
            out.add_gate(new_name, expr=_subst(expr_override[gate.name], rename))
        elif gate.gtype is not None:
            ins = [
                rename.get(circuit.signal_name(i), circuit.signal_name(i))
                for i in _gate_input_order(circuit, gate)
            ]
            out.add_gate(new_name, gtype=gate.gtype, inputs=ins)
        else:
            out.add_gate(new_name, expr=_subst(gate.expr, rename))
        if gate.name in extras:
            buf, src = extras[gate.name]
            out.add_gate(buf, gtype="BUF", inputs=[rename.get(src, src)])
    for name in circuit.output_names:
        out.mark_output(rename.get(name, name))
    if reset_bits is not None:
        names = [s.name for s in circuit.signals]
        out.set_reset(
            {rename.get(n, n): (reset_bits >> i) & 1 for i, n in enumerate(names)}
        )
    elif circuit.reset_state is not None:
        reset = {
            rename.get(s.name, s.name): (circuit.reset_state >> s.index) & 1
            for s in circuit.signals
        }
        reset.update(reset_extra or {})
        out.set_reset(reset)
    out.set_k(circuit.k)
    return out.finalize()


def _fresh_name(circuit: Circuit, stem: str) -> str:
    taken = {s.name for s in circuit.signals}
    for i in range(len(taken) + 1):
        name = f"{stem}{i}"
        if name not in taken:
            return name
    raise AssertionError("unreachable")


def _op_rename(circuit: Circuit, rng: random.Random) -> Optional[Mutation]:
    """Rename one non-interface gate (inputs/outputs are the contract)."""
    interface = set(circuit.input_names) | set(circuit.output_names)
    candidates = [g.name for g in circuit.gates if g.name not in interface]
    if not candidates:
        return None
    old = rng.choice(candidates)
    new = _fresh_name(circuit, "fzren")
    mutated = _rebuild(circuit, rename={old: new})
    return Mutation("rename", True, old, netlist_to_text(mutated), detail=new)


def _op_rewrite(circuit: Circuit, rng: random.Random) -> Optional[Mutation]:
    """Double-negate one gate's function: same logic, new structure."""
    if not circuit.gates:
        return None
    gate = rng.choice(circuit.gates)
    mutated = _rebuild(circuit, expr_override={gate.name: Not(Not(gate.expr))})
    return Mutation("rewrite", True, gate.name, netlist_to_text(mutated))


def _op_splice(circuit: Circuit, rng: random.Random) -> Optional[Mutation]:
    """Split one fanout: route a consumer through a fresh buffer."""
    pairs = []
    for gate in circuit.gates:
        for src in gate.expr.vars():
            if src != gate.name:
                pairs.append((src, gate.name))
    if not pairs:
        return None
    src, consumer = rng.choice(sorted(pairs))
    buf = _fresh_name(circuit, "fzbuf")
    gate = next(g for g in circuit.gates if g.name == consumer)
    reset_extra = None
    if circuit.reset_state is not None:
        reset_extra = {buf: (circuit.reset_state >> circuit.index(src)) & 1}
    mutated = _rebuild(
        circuit,
        expr_override={consumer: _subst(gate.expr, {src: buf})},
        extra_gates=[(consumer, buf, src)],
        reset_extra=reset_extra,
    )
    return Mutation("splice", False, src, netlist_to_text(mutated), detail=consumer)


def _op_reset_shift(circuit: Circuit, rng: random.Random) -> Optional[Mutation]:
    """Move the reset to a different stable state."""
    stable = [s for s in circuit.enumerate_stable_states() if s != circuit.reset_state]
    if not stable:
        return None
    pick = stable[rng.randrange(len(stable))]
    mutated = _rebuild(circuit, reset_bits=pick)
    return Mutation("reset_shift", False, f"{pick:b}", netlist_to_text(mutated))


_OPS: Dict[str, Callable[[Circuit, random.Random], Optional[Mutation]]] = {
    "rename": _op_rename,
    "rewrite": _op_rewrite,
    "splice": _op_splice,
    "reset_shift": _op_reset_shift,
}

MUTATION_OPS: Tuple[str, ...] = tuple(_OPS)


def mutate_netlist(text: str, op: str, rng: random.Random) -> Optional[Mutation]:
    """Apply ``op`` to canonical ``.net`` text; None when inapplicable.

    >>> import random
    >>> from repro.fuzz.generator import generate_scenario
    >>> sc = generate_scenario(3)
    >>> from repro.circuit.parser import netlist_to_text
    >>> base = netlist_to_text(sc.circuit())
    >>> m = mutate_netlist(base, "rename", random.Random(0))
    >>> m.preserving and m.detail.startswith("fzren")
    True
    """
    if op not in _OPS:
        raise ValueError(f"unknown mutation op {op!r} (have {MUTATION_OPS})")
    circuit = parse_netlist(text, filename="<mutate>")
    return _OPS[op](circuit, rng)


def shift_marking(stg_text: str, rng: random.Random) -> Optional[str]:
    """Advance the initial marking by firing one enabled transition.

    Returns new ``.g`` text with ``.marking`` and ``.initial`` rewritten
    (or None when nothing is enabled).  The result is a reachable
    marking of the same net, but the shifted start state is not
    guaranteed synthesizable — re-gate health before using it.
    """
    stg = parse_stg(stg_text, filename="<shift>")
    enabled = stg.enabled(stg.initial_marking)
    if not enabled:
        return None
    t = enabled[rng.randrange(len(enabled))]
    after = stg.fire(stg.initial_marking, t)
    values = dict(stg.initial_values or {s: 0 for s in stg.signals})
    values[t.signal] = 1 if t.direction > 0 else 0
    marking_tokens = sorted(stg.place_names[p] for p in after)
    out_lines = []
    for line in stg_text.splitlines():
        stripped = line.strip()
        if stripped.startswith(".marking"):
            out_lines.append(".marking { " + " ".join(marking_tokens) + " }")
        elif stripped.startswith(".initial"):
            out_lines.append(
                ".initial " + " ".join(f"{s}={values[s]}" for s in stg.signals)
            )
        else:
            out_lines.append(line)
    return "\n".join(out_lines) + ("\n" if stg_text.endswith("\n") else "")
