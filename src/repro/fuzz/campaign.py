"""Fuzzing as campaign jobs: seed-range chunks on the existing runner.

A fuzz campaign is a seed interval ``[start, stop)`` chopped into
chunks; each chunk is a regular :class:`~repro.campaign.plan.Job` with
``source_kind="fuzz"`` whose ``source`` is the canonical JSON job
document (generator config, oracle caps, oracle list, seed range).
The job key is the SHA-256 of that document — same seeds + same config
+ same code version means a warm rerun is served entirely from the
content-addressed result store, exactly like benchmark ATPG jobs.

:func:`~repro.campaign.runner.execute_job` dispatches these jobs here;
they ride the fork workers, heartbeats, hang policing and the store
untouched.  Results are byte-deterministic: the only non-deterministic
payload field is ``cpu_seconds`` (excluded from reproducibility
comparisons, like everywhere else in the repo).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.atpg import RESULT_SCHEMA_VERSION, AtpgOptions
from repro.campaign.plan import CODE_VERSION, Job
from repro.errors import ReproError
from repro.flow import ProgressTick
from repro.fuzz.generator import GeneratorConfig, generate_scenario
from repro.fuzz.oracles import OracleCaps, oracle_names, run_scenario
from repro.fuzz.shrink import shrink_scenario

__all__ = [
    "FUZZ_SCHEMA_VERSION",
    "FuzzSpec",
    "aggregate_reports",
    "execute_fuzz_job",
    "expand_fuzz",
    "fuzz_job_key",
]

#: Version of the fuzz job document *and* result block; bump on any
#: change to generation, oracles or shrinking semantics so stale
#: cached verdicts can never satisfy a new campaign.
FUZZ_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FuzzSpec:
    """What to fuzz: a seed interval and the knobs that shape it."""

    start: int = 0
    stop: int = 200
    chunk: int = 25  #: seeds per job (one worker dispatch unit)
    oracles: Tuple[str, ...] = ()  #: () = the full battery
    config: GeneratorConfig = field(default_factory=GeneratorConfig)
    caps: OracleCaps = field(default_factory=OracleCaps)
    shrink: bool = True  #: auto-shrink divergent scenarios in-job


def _job_doc(spec: FuzzSpec, a: int, b: int) -> Dict:
    return {
        "fuzz_schema": FUZZ_SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "config": spec.config.to_json_dict(),
        "caps": spec.caps.to_json_dict(),
        "oracles": list(spec.oracles or oracle_names()),
        "seeds": [a, b],
        "shrink": bool(spec.shrink),
    }


def fuzz_job_key(doc: Dict) -> str:
    """Content hash of a fuzz job document (its store address)."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def expand_fuzz(spec: FuzzSpec) -> List[Job]:
    """One job per seed chunk.

    >>> jobs = expand_fuzz(FuzzSpec(start=0, stop=100, chunk=40))
    >>> [j.name for j in jobs]
    ['fuzz/0..40', 'fuzz/40..80', 'fuzz/80..100']
    >>> jobs[0].source_kind
    'fuzz'
    """
    if spec.stop <= spec.start:
        raise ReproError(f"empty fuzz seed range [{spec.start}, {spec.stop})")
    if spec.chunk < 1:
        raise ReproError(f"fuzz chunk must be >= 1, got {spec.chunk}")
    unknown = sorted(set(spec.oracles) - set(oracle_names()))
    if unknown:
        raise ReproError(f"unknown oracles {unknown} (have {oracle_names()})")
    jobs = []
    for a in range(spec.start, spec.stop, spec.chunk):
        b = min(a + spec.chunk, spec.stop)
        doc = _job_doc(spec, a, b)
        key = fuzz_job_key(doc)
        jobs.append(
            Job(
                name=f"fuzz/{a}..{b}",
                source_kind="fuzz",
                source=json.dumps(doc, sort_keys=True),
                style="complex",
                seed=a,
                k=None,
                options=AtpgOptions(),
                key=key,
                group=key,
                cost_hint=b - a,
            )
        )
    return jobs


@dataclass
class FuzzResult:
    """One chunk's outcome; ``to_json_dict()`` is the stored payload."""

    seeds: Tuple[int, int]
    doc: Dict
    scenarios: List[Dict]
    divergences: List[Dict]
    rejections: Dict[str, int]
    checks: Dict[str, int]
    n_unproductive: int  #: seeds whose every generation attempt was rejected
    cpu_seconds: float = 0.0

    def to_json_dict(self) -> Dict:
        # schema_version keeps the runner's cache-freshness gate
        # (``_fresh_payload``) working unmodified for fuzz payloads.
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "fuzz",
            "fuzz_schema": FUZZ_SCHEMA_VERSION,
            "seeds": list(self.seeds),
            "config": self.doc["config"],
            "caps": self.doc["caps"],
            "oracles": self.doc["oracles"],
            "scenarios": self.scenarios,
            "divergences": self.divergences,
            "rejections": dict(sorted(self.rejections.items())),
            "checks": dict(sorted(self.checks.items())),
            "n_scenarios": len(self.scenarios),
            "n_divergent": len({d["seed"] for d in self.divergences}),
            "n_unproductive": self.n_unproductive,
            "cpu_seconds": self.cpu_seconds,
        }


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def execute_fuzz_job(job: Job, listeners=()) -> FuzzResult:
    """Run one seed chunk: generate, oracle, shrink divergences.

    The per-seed scenario records carry only content *hashes* of the
    spec text (payloads stay small); divergence records carry the full
    failing text plus its shrunk minimal form — that is the artifact a
    nightly job uploads.
    """
    doc = json.loads(job.source)
    if doc.get("fuzz_schema") != FUZZ_SCHEMA_VERSION:
        raise ReproError(
            f"fuzz job schema {doc.get('fuzz_schema')!r} != {FUZZ_SCHEMA_VERSION}"
        )
    cfg = GeneratorConfig.from_json_dict(doc["config"])
    caps = OracleCaps.from_json_dict(doc["caps"])
    oracles = tuple(doc["oracles"])
    a, b = doc["seeds"]
    t0 = time.perf_counter()

    def emit(event) -> None:
        for listener in listeners:
            listener(event)

    scenarios: List[Dict] = []
    divergences: List[Dict] = []
    rejections: Dict[str, int] = {}
    checks: Dict[str, int] = {}
    n_unproductive = 0
    for done, seed in enumerate(range(a, b)):
        emit(ProgressTick("fuzz", done=done, total=b - a, covered=0))
        scenario = generate_scenario(seed, cfg)
        if scenario is None:
            n_unproductive += 1
            continue
        for reason, n in scenario.rejections.by_reason.items():
            rejections[reason] = rejections.get(reason, 0) + n
        report = run_scenario(scenario, oracles, caps)
        for oracle, n in report.checks.items():
            checks[oracle] = checks.get(oracle, 0) + n
        scenarios.append(
            {
                "seed": seed,
                "kind": scenario.kind,
                "style": scenario.style,
                "sha256": _sha(scenario.text),
                "attempts": scenario.rejections.attempts,
                "checks": dict(sorted(report.checks.items())),
                "ok": report.ok,
            }
        )
        if report.ok:
            continue
        failing = sorted({d.oracle for d in report.divergences})
        shrunk_text = ""
        if doc["shrink"]:
            shrunk = shrink_scenario(scenario, _fails_predicate(failing, caps))
            shrunk_text = shrunk.text
        for d in report.divergences:
            divergences.append(
                {
                    "seed": seed,
                    "kind": scenario.kind,
                    "style": scenario.style,
                    "oracle": d.oracle,
                    "detail": d.detail,
                    "spec_text": scenario.text,
                    "shrunk_text": shrunk_text,
                }
            )
    return FuzzResult(
        seeds=(a, b),
        doc=doc,
        scenarios=scenarios,
        divergences=divergences,
        rejections=rejections,
        checks=checks,
        n_unproductive=n_unproductive,
        cpu_seconds=time.perf_counter() - t0,
    )


def _fails_predicate(failing_oracles: Sequence[str], caps: OracleCaps):
    """Does a candidate still diverge on any of the originally failing
    oracle pairs?  Candidates that crash an oracle count as *not*
    failing — shrinking must converge on the original defect, not on
    whatever new ways a truncated spec finds to blow up."""

    def fails(candidate) -> bool:
        try:
            return not run_scenario(candidate, failing_oracles, caps).ok
        except Exception:
            return False

    return fails


def aggregate_reports(payloads: Sequence[Dict]) -> Dict:
    """Campaign-level roll-up of fuzz chunk payloads (the ``repro-fuzz``
    summary and the CI gate read this single dict)."""
    out: Dict = {
        "n_scenarios": 0,
        "n_divergent": 0,
        "n_unproductive": 0,
        "by_kind": {},
        "checks": {},
        "rejections": {},
        "divergences": [],
    }
    for payload in payloads:
        if payload.get("kind") != "fuzz":
            raise ReproError("aggregate_reports fed a non-fuzz payload")
        out["n_scenarios"] += payload["n_scenarios"]
        out["n_divergent"] += payload["n_divergent"]
        out["n_unproductive"] += payload["n_unproductive"]
        for record in payload["scenarios"]:
            kind = record["kind"]
            out["by_kind"][kind] = out["by_kind"].get(kind, 0) + 1
        for oracle, n in payload["checks"].items():
            out["checks"][oracle] = out["checks"].get(oracle, 0) + n
        for reason, n in payload["rejections"].items():
            out["rejections"][reason] = out["rejections"].get(reason, 0) + n
        out["divergences"].extend(payload["divergences"])
    out["by_kind"] = dict(sorted(out["by_kind"].items()))
    out["checks"] = dict(sorted(out["checks"].items()))
    out["rejections"] = dict(sorted(out["rejections"].items()))
    out["divergences"].sort(key=lambda d: (d["seed"], d["oracle"]))
    return out
