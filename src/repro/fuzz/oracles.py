"""The five differential oracle pairs every scenario runs through.

Each oracle compares two independent implementations that must agree;
any disagreement is a :class:`Divergence` (a bug in one of the two, by
construction — there is no "expected output" file anywhere):

============   ====================================================
``settle``     compiled ternary engine vs the seed's sweep-based
               legacy settling, over random ternary states and
               stuck-at overlays (the only kinds the legacy oracle
               implements)
``cssg``       explicit-exact CSSG construction vs the symbolic
               (BDD) builder: reset, state set and edge function
``faults``     packed fault overlays vs physically materialized
               faulty netlists along random valid walks, for every
               registered fault model
``kernels``    arena walk and slab kernels vs the scalar
               :class:`~repro.sim.batch.FaultBatch` reference,
               detection words and packed states per step
``incremental``  plain :func:`~repro.campaign.runner.execute_job` vs
               the cohort-incremental path: cold byte-identity, warm
               pure-merge identity, then a mutation with the *exact*
               predicted cohort-reuse count and verdict replay
============   ====================================================

Oracles assert exactly the documented contracts and no more: the
incremental oracle predicts reuse counts from cohort-key set
intersections (the invalidation matrix in ``docs/incremental.md``)
and requires replayed faults to keep their cached verdicts, but does
not compare stale-fault test indices to a from-scratch run — those
are documented to differ.

Everything is deterministic in ``(scenario, caps)``: internal RNGs are
seeded from the scenario seed, so a divergence found in CI replays
locally from the seed alone.
"""

from __future__ import annotations

import json
import hashlib
import random
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cohort import cohort_salt, partition
from repro.campaign.plan import Job, job_key, source_fingerprint
from repro.campaign.runner import execute_job, execute_job_incremental
from repro.campaign.store import ResultStore
from repro.circuit.faults import fault_universe, materialize_fault
from repro.circuit.netlist import Circuit
from repro.circuit.parser import netlist_to_text, parse_netlist
from repro.core.atpg import AtpgOptions
from repro.faultmodels import model_names
from repro.fuzz.generator import Scenario
from repro.fuzz.mutate import MUTATION_OPS, mutate_netlist
from repro.sgraph.cssg import Cssg, build_cssg
from repro.sgraph.symbolic import SymbolicTcsg
from repro.sim import legacy, ternary
from repro.sim.batch import ChunkedFaultSim, FaultBatch

__all__ = [
    "ORACLES",
    "Divergence",
    "OracleCaps",
    "ScenarioReport",
    "oracle_names",
    "run_scenario",
]


@dataclass(frozen=True)
class OracleCaps:
    """Per-scenario effort dials (all deterministic)."""

    max_faults: int = 8  #: fault-sample cap per model
    n_states: int = 12  #: random ternary start states for ``settle``
    walk_len: int = 8  #: CSSG walk length for fault/kernel parity
    #: the BDD builder's cost explodes past ~13 signals; the ``cssg``
    #: oracle skips (checks=0) on circuits wider than this
    max_symbolic_signals: int = 12

    def to_json_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json_dict(data: Dict) -> "OracleCaps":
        return OracleCaps(**data)


@dataclass(frozen=True)
class Divergence:
    """One oracle disagreement — `detail` is self-contained enough to
    reproduce by hand together with the scenario text."""

    oracle: str
    detail: str

    def to_json_dict(self) -> Dict:
        return {"oracle": self.oracle, "detail": self.detail}


@dataclass
class ScenarioReport:
    """What one scenario's oracle battery did."""

    seed: int
    kind: str
    checks: Dict[str, int]  #: oracle -> comparisons made (0 = skipped)
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "checks": dict(sorted(self.checks.items())),
            "divergences": [d.to_json_dict() for d in self.divergences],
        }


class _Ctx:
    """Shared per-scenario material (circuit + exact CSSG, built once)."""

    def __init__(self, scenario: Scenario, caps: OracleCaps):
        self.scenario = scenario
        self.caps = caps
        self.circuit = scenario.circuit()
        self._cssg: Optional[Cssg] = None

    @property
    def cssg(self) -> Cssg:
        if self._cssg is None:
            self._cssg = build_cssg(self.circuit, method="exact")
        return self._cssg

    def fault_sample(self, model: str) -> List:
        """A deterministic spread through the model's universe."""
        faults = fault_universe(self.circuit, model)
        cap = self.caps.max_faults
        if len(faults) <= cap:
            return list(faults)
        stride = len(faults) / cap
        return [faults[int(i * stride)] for i in range(cap)]


def _tstate(rng: random.Random, n: int) -> Tuple[int, int]:
    """A random valid ternary state (each signal 0, 1 or X)."""
    low = high = 0
    for i in range(n):
        l, h = rng.choice(((1, 0), (0, 1), (1, 1)))
        low |= l << i
        high |= h << i
    return (low, high)


def _oracle_settle(ctx: _Ctx) -> Tuple[int, List[str]]:
    c = ctx.circuit
    rng = random.Random(f"fuzz-settle:{ctx.scenario.seed}")
    states = [ternary.from_binary(c.require_reset(), c.n_signals)]
    states += [_tstate(rng, c.n_signals) for _ in range(ctx.caps.n_states)]
    faults = [None]
    for model in ("output", "input"):  # the kinds the legacy oracle knows
        faults.extend(ctx.fault_sample(model)[: ctx.caps.max_faults // 2])
    checks, bad = 0, []
    for tstate in states:
        for fault in faults:
            got = ternary.settle(c, tstate, fault)
            want = legacy.settle(c, tstate, fault)
            checks += 1
            if got != want:
                fj = None if fault is None else fault.to_json()
                bad.append(
                    f"settle({tstate}, fault={fj}): engine={got} legacy={want}"
                )
    return checks, bad


def _oracle_cssg(ctx: _Ctx) -> Tuple[int, List[str]]:
    if ctx.circuit.n_signals > ctx.caps.max_symbolic_signals:
        return 0, []  # symbolic construction is impractically slow here
    explicit = ctx.cssg
    symbolic = SymbolicTcsg(ctx.circuit).build_cssg()
    bad = []
    if symbolic.reset != explicit.reset:
        bad.append(f"reset: exact={explicit.reset} symbolic={symbolic.reset}")
    if symbolic.states != explicit.states:
        bad.append(
            f"states: exact has {len(explicit.states)}, "
            f"symbolic has {len(symbolic.states)}, "
            f"diff={sorted(set(explicit.states) ^ set(symbolic.states))[:8]}"
        )
    if symbolic.edges != explicit.edges:
        bad.append("edge functions differ between exact and symbolic")
    return 3, bad


def _oracle_faults(ctx: _Ctx) -> Tuple[int, List[str]]:
    c = ctx.circuit
    cssg = ctx.cssg
    checks, bad = 0, []
    for model in model_names():
        for fault in ctx.fault_sample(model):
            rng = random.Random(
                f"fuzz-faults:{ctx.scenario.seed}:{fault.to_json()}"
            )
            mat = materialize_fault(c, fault)
            via_overlay = ternary.settle_from_reset(c, cssg.reset, fault)
            via_netlist = ternary.settle_from_reset(mat, mat.require_reset())
            checks += 1
            if via_overlay != via_netlist:
                bad.append(f"{model}/{fault.describe(c)}: reset settle differs")
                continue
            good = cssg.reset
            for _ in range(ctx.caps.walk_len):
                choices = sorted(cssg.valid_patterns(good))
                if not choices:
                    break
                pattern = rng.choice(choices)
                good = cssg.edges[good][pattern]
                via_overlay = ternary.apply_pattern(c, via_overlay, pattern, fault)
                via_netlist = ternary.apply_pattern(mat, via_netlist, pattern)
                checks += 1
                if via_overlay != via_netlist:
                    bad.append(
                        f"{model}/{fault.describe(c)}: overlay={via_overlay} "
                        f"materialized={via_netlist} after {pattern:b}"
                    )
                    break
    return checks, bad


def _oracle_kernels(ctx: _Ctx) -> Tuple[int, List[str]]:
    c = ctx.circuit
    cssg = ctx.cssg
    faults = []
    for model in model_names():
        faults.extend(ctx.fault_sample(model))
    if not faults:
        return 0, []
    rng = random.Random(f"fuzz-kernels:{ctx.scenario.seed}")
    patterns = cssg.random_walk(rng, ctx.caps.walk_len)
    trail, good = [], cssg.reset
    for pattern in patterns:
        good = cssg.edges[good][pattern]
        trail.append((pattern, good))

    batch = FaultBatch(c, faults)
    state = batch.reset_and_settle(cssg.reset)
    walk = batch.walk(cssg.reset)
    slab = ChunkedFaultSim(c, faults).walk(cssg.reset)
    checks, bad = 0, []

    def compare(step: str, pattern=None, good_state=None) -> None:
        nonlocal checks, state
        if pattern is not None:
            state = batch.apply_settled(state, pattern)
        ref = batch.observe(state, good_state)
        w = walk.observe(good_state) if pattern is None else walk.step(pattern, good_state)
        s = slab.observe(good_state) if pattern is None else slab.step(pattern, good_state)
        checks += 1
        if w != ref or s != ref or walk.state() != state or slab.state() != state:
            bad.append(
                f"{step}: batch det={ref:#x} walk det={w:#x} slab det={s:#x}"
            )

    compare("reset", good_state=cssg.reset)
    for i, (pattern, good) in enumerate(trail):
        if bad:
            break
        compare(f"step{i}", pattern=pattern, good_state=good)
    return checks, bad


def _digest(payload: Dict) -> str:
    doc = {
        k: v
        for k, v in payload.items()
        if k not in ("cpu_seconds", "schema_version", "telemetry")
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _fault_names(circuit: Circuit, fault_json: Sequence) -> Tuple:
    kind, gate, site, value = fault_json
    return (kind, circuit.signal_name(gate), circuit.signal_name(site), value)


def _oracle_incremental(ctx: _Ctx) -> Tuple[int, List[str]]:
    if ctx.scenario.kind != "stg":
        return 0, []  # ATPG contracts are only claimed for healthy specs
    seed = ctx.scenario.seed
    rng = random.Random(f"fuzz-incremental:{seed}")
    # "output" keeps the fault universe stable under the preserving
    # mutations (sites are gate outputs, and gates are never added).
    # cssg_method is pinned ("auto" would hand wide synthesized circuits
    # to the minutes-slow symbolic builder) and the search is bounded:
    # fuzzed specs can have 6+ primary inputs, where unbounded
    # input-change CSSGs make three-phase ATPG ~15 s per fault.
    # Aborted-by-cap faults are deterministic, so parity still holds.
    options = AtpgOptions(
        fault_model="output",
        seed=seed & 0xFFFF,
        random_walks=4,
        cssg_method="exact",
        max_input_changes=1,
        max_product_states=4000,
    )
    base_text = netlist_to_text(ctx.circuit)
    checks, bad = 0, []
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-inc-") as td:
        tmp = Path(td)
        store = ResultStore(tmp / "cache")

        def mk_job(text: str, tag: str) -> Job:
            path = tmp / f"{tag}.net"
            path.write_text(text)
            fingerprint = source_fingerprint("netlist", str(path))
            key = job_key(fingerprint, "complex", options)
            return Job(
                name=f"fuzz/{seed}/{tag}",
                source_kind="netlist",
                source=str(path),
                style="complex",
                seed=options.seed,
                k=None,
                options=options,
                key=key,
                group=key,
                cost_hint=len(text),
            )

        job = mk_job(base_text, "base")
        plain = execute_job(job).to_json_dict()
        cold, _live, _stats = execute_job_incremental(job, store)
        checks += 1
        if _digest(cold) != _digest(plain):
            bad.append("cold incremental payload != plain payload")
        warm, live, warm_stats = execute_job_incremental(job, store)
        checks += 1
        if live is not None or warm_stats.cohorts_executed != 0:
            bad.append("warm rerun was not a pure cohort merge")
        elif _digest(warm) != _digest(plain):
            bad.append("warm merged payload != plain payload")

        op = MUTATION_OPS[rng.randrange(len(MUTATION_OPS))]
        mutation = mutate_netlist(base_text, op, rng)
        if mutation is None:
            return checks, bad
        base_c = parse_netlist(base_text)
        mut_c = parse_netlist(mutation.text)
        base_keys = {
            co.key
            for co in partition(
                base_c,
                fault_universe(base_c, "output"),
                cohort_salt(base_c, "complex", options),
            )
        }
        mut_cohorts = partition(
            mut_c,
            fault_universe(mut_c, "output"),
            cohort_salt(mut_c, "complex", options),
        )
        expected_reused = sum(1 for co in mut_cohorts if co.key in base_keys)

        mjob = mk_job(mutation.text, "mut")
        merged, _mlive, mstats = execute_job_incremental(mjob, store)
        checks += 1
        if (
            mstats is None
            or mstats.cohorts_total != len(mut_cohorts)
            or mstats.cohorts_reused != expected_reused
        ):
            bad.append(
                f"{op}: predicted {expected_reused}/{len(mut_cohorts)} reused "
                f"cohorts, runner reported "
                f"{mstats and mstats.cohorts_reused}/{mstats and mstats.cohorts_total}"
            )
        universe = [f.to_json() for f in fault_universe(mut_c, "output")]
        checks += 1
        if merged["faults"] != universe or merged["n_total"] != len(universe):
            bad.append(f"{op}: merged payload does not cover the mutated universe")
        # Replayed cohorts must keep their cached verdicts verbatim
        # (matched by name — indices may shift under a splice).
        by_fault = {tuple(s["fault"]): s for s in merged["statuses"]}
        base_by_name = {
            _fault_names(base_c, s["fault"]): s for s in plain["statuses"]
        }
        checks += 1
        for co in mut_cohorts:
            if co.key not in base_keys:
                continue
            for fault in co.faults:
                got = by_fault[tuple(fault.to_json())]
                want = base_by_name.get(_fault_names(mut_c, fault.to_json()))
                if want is None or got["status"] != want["status"]:
                    bad.append(
                        f"{op}: replayed fault {fault.to_json()} has status "
                        f"{got['status']!r}, cached verdict was "
                        f"{want and want['status']!r}"
                    )
                    break
    return checks, bad


ORACLES: Dict[str, Callable[[_Ctx], Tuple[int, List[str]]]] = {
    "settle": _oracle_settle,
    "cssg": _oracle_cssg,
    "faults": _oracle_faults,
    "kernels": _oracle_kernels,
    "incremental": _oracle_incremental,
}


def oracle_names() -> Tuple[str, ...]:
    """All oracle pair names, battery order.

    >>> oracle_names()
    ('settle', 'cssg', 'faults', 'kernels', 'incremental')
    """
    return tuple(ORACLES)


def run_scenario(
    scenario: Scenario,
    oracles: Optional[Sequence[str]] = None,
    caps: Optional[OracleCaps] = None,
) -> ScenarioReport:
    """Run ``scenario`` through the named oracle pairs (default: all)."""
    names = tuple(oracles) if oracles else oracle_names()
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise ValueError(f"unknown oracles {unknown} (have {oracle_names()})")
    ctx = _Ctx(scenario, caps or OracleCaps())
    checks: Dict[str, int] = {}
    divergences: List[Divergence] = []
    for name in names:
        n, bad = ORACLES[name](ctx)
        checks[name] = n
        divergences.extend(Divergence(name, detail) for detail in bad)
    return ScenarioReport(scenario.seed, scenario.kind, checks, divergences)
