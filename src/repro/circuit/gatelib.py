"""Named gate types used by netlists and the synthesizer.

Each gate type is a function from ``(output_name, input_names)`` to an
:class:`~repro.circuit.expr.Expr`.  Sequential elements (the Muller
C-element, set/reset dominant latches) reference their own output name —
the unbounded-delay model treats feedback like any other wire.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.circuit.expr import And, Const, Expr, Not, Or, Var, Xor, and_all, or_all
from repro.errors import NetlistError

GateBuilder = Callable[[str, Sequence[str]], Expr]


def _vars(names: Sequence[str]) -> List[Expr]:
    return [Var(n) for n in names]


def _need(n, names, gtype):
    if len(names) != n:
        raise NetlistError(f"gate type {gtype} expects {n} inputs, got {len(names)}")


def _buf(out, ins):
    _need(1, ins, "BUF")
    return Var(ins[0])


def _inv(out, ins):
    _need(1, ins, "INV")
    return Not(Var(ins[0]))


def _and(out, ins):
    if len(ins) < 2:
        raise NetlistError("AND expects >= 2 inputs")
    return and_all(_vars(ins))


def _or(out, ins):
    if len(ins) < 2:
        raise NetlistError("OR expects >= 2 inputs")
    return or_all(_vars(ins))


def _nand(out, ins):
    return Not(_and(out, ins))


def _nor(out, ins):
    return Not(_or(out, ins))


def _xor(out, ins):
    _need(2, ins, "XOR2")
    return Xor(Var(ins[0]), Var(ins[1]))


def _xnor(out, ins):
    _need(2, ins, "XNOR2")
    return Not(Xor(Var(ins[0]), Var(ins[1])))


def _mux(out, ins):
    # MUX21 s a b = s ? a : b
    _need(3, ins, "MUX21")
    s, a, b = _vars(ins)
    return Or((And((s, a)), And((Not(s), b))))


def _aoi21(out, ins):
    _need(3, ins, "AOI21")
    a, b, c = _vars(ins)
    return Not(Or((And((a, b)), c)))


def _oai21(out, ins):
    _need(3, ins, "OAI21")
    a, b, c = _vars(ins)
    return Not(And((Or((a, b)), c)))


def _maj3(out, ins):
    _need(3, ins, "MAJ3")
    a, b, c = _vars(ins)
    return Or((And((a, b)), And((a, c)), And((b, c))))


def _celem(out, ins):
    """Muller C-element: output rises when all inputs are 1, falls when
    all are 0, holds otherwise.  ``c' = ab...  +  c (a + b + ...)``."""
    if len(ins) < 2:
        raise NetlistError("CELEM expects >= 2 inputs")
    terms = _vars(ins)
    fb = Var(out)
    return Or((and_all(terms), And((fb, or_all(terms)))))


def _celem_inv(out, ins):
    """C-element with the *last* input inverted (a common gC fragment):
    set network is ``a & ... & ~r``, reset network is ``~a & ... & r``."""
    if len(ins) < 2:
        raise NetlistError("CELEMN expects >= 2 inputs")
    pos = _vars(ins[:-1])
    neg = Not(Var(ins[-1]))
    terms = pos + [neg]
    fb = Var(out)
    return Or((and_all(terms), And((fb, or_all(terms)))))


def _srff(out, ins):
    """Set/reset element with set dominance: ``q' = s + q & ~r``."""
    _need(2, ins, "SR")
    s, r = _vars(ins)
    return Or((s, And((Var(out), Not(r)))))


def _const0(out, ins):
    _need(0, ins, "ZERO")
    return Const(0)


def _const1(out, ins):
    _need(0, ins, "ONE")
    return Const(1)


GATE_TYPES: Dict[str, GateBuilder] = {
    "BUF": _buf,
    "INV": _inv,
    "NOT": _inv,
    "AND": _and,
    "AND2": _and,
    "AND3": _and,
    "AND4": _and,
    "OR": _or,
    "OR2": _or,
    "OR3": _or,
    "OR4": _or,
    "NAND": _nand,
    "NAND2": _nand,
    "NAND3": _nand,
    "NOR": _nor,
    "NOR2": _nor,
    "NOR3": _nor,
    "XOR2": _xor,
    "XOR": _xor,
    "XNOR2": _xnor,
    "XNOR": _xnor,
    "MUX21": _mux,
    "AOI21": _aoi21,
    "OAI21": _oai21,
    "MAJ3": _maj3,
    "C": _celem,
    "CELEM": _celem,
    "CELEMN": _celem_inv,
    "SR": _srff,
    "ZERO": _const0,
    "ONE": _const1,
}

_SIZED = {"AND2": 2, "AND3": 3, "AND4": 4, "OR2": 2, "OR3": 3, "OR4": 4,
          "NAND2": 2, "NAND3": 3, "NOR2": 2, "NOR3": 3}


def build_gate_expr(gtype: str, output: str, inputs: Sequence[str]) -> Expr:
    """Expand a named gate type into its expression.

    Raises :class:`NetlistError` for unknown types or arity mismatches.
    """
    gtype = gtype.upper()
    builder = GATE_TYPES.get(gtype)
    if builder is None:
        raise NetlistError(f"unknown gate type {gtype!r}")
    expected = _SIZED.get(gtype)
    if expected is not None and len(inputs) != expected:
        raise NetlistError(
            f"gate type {gtype} expects {expected} inputs, got {len(inputs)}"
        )
    return builder(output, inputs)
