"""The gate-level circuit container and packed-state operations.

A :class:`Circuit` follows the paper's model (§3):

* an interconnection of gates, each with an instantaneous boolean function
  and an unbounded positive inertial delay attached to its output;
* primary inputs are *wires* driven by the environment; following the
  paper, real designs buffer every primary input through an identity gate
  so that input transitions also race through delays (figure 1 shows the
  ``A -> a`` buffers).  Buffers are ordinary gates here — the synthesis
  front end inserts them automatically, hand-written netlists write them
  explicitly.

A circuit **state** packs the values of all signals into one int: input
wires occupy bits ``0..m-1`` in declaration order, gate outputs the bits
after them.  A gate is *excited* when its function disagrees with its
output; a state is *stable* when no gate is excited (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._bits import bit, bits_to_str, mask, set_bit
from repro.circuit.expr import (
    Expr,
    Program,
    compile_expr,
    eval_binary,
    parse_expr,
    program_vars,
)
from repro.circuit.gatelib import build_gate_expr
from repro.errors import NetlistError


@dataclass(frozen=True)
class Signal:
    """A named wire: either a primary input or a gate output."""

    name: str
    index: int
    is_input: bool
    is_output: bool


@dataclass(frozen=True)
class Gate:
    """A gate: the function driving signal ``index``.

    ``support`` lists the distinct source-signal indices the function
    reads; each (gate, support signal) pair is an input *pin* for the
    input stuck-at fault model.
    """

    name: str
    index: int
    expr: Expr
    program: Program
    support: Tuple[int, ...]
    gtype: Optional[str] = None


class Circuit:
    """A finalized asynchronous circuit.

    Build one incrementally::

        c = Circuit("demo")
        c.add_input("A")
        c.add_gate("a", gtype="BUF", inputs=["A"])
        c.add_gate("y", expr="a & ~y")
        c.mark_output("y")
        c.set_reset({"A": 0, "a": 0, "y": 0})
        c.finalize()

    or use :func:`repro.circuit.parser.parse_netlist`.  After
    :meth:`finalize` the circuit is immutable.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._input_names: List[str] = []
        self._gate_defs: List[Tuple[str, Expr, Optional[str]]] = []
        self._output_names: List[str] = []
        self._reset_values: Optional[Dict[str, int]] = None
        self._k: Optional[int] = None
        self._finalized = False
        # Populated by finalize():
        self.signals: Tuple[Signal, ...] = ()
        self.gates: Tuple[Gate, ...] = ()
        self.outputs: Tuple[int, ...] = ()
        self.reset_state: Optional[int] = None

    # -- construction -------------------------------------------------

    def _check_mutable(self):
        if self._finalized:
            raise NetlistError("circuit is finalized and immutable")

    def _check_fresh_name(self, name: str):
        if not name or any(ch.isspace() for ch in name):
            raise NetlistError(f"invalid signal name {name!r}")
        if name in self._input_names or any(g[0] == name for g in self._gate_defs):
            raise NetlistError(f"signal {name!r} defined twice")

    def add_input(self, name: str) -> None:
        """Declare a primary input wire."""
        self._check_mutable()
        self._check_fresh_name(name)
        self._input_names.append(name)

    def add_gate(
        self,
        name: str,
        expr: Optional[Expr] = None,
        gtype: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> None:
        """Add a gate driving signal ``name``.

        Provide either ``expr`` (an :class:`Expr` or an expression string)
        or ``gtype`` plus ``inputs`` (a library gate).
        """
        self._check_mutable()
        self._check_fresh_name(name)
        if expr is not None and gtype is not None:
            raise NetlistError("give either expr or gtype, not both")
        if expr is None:
            if gtype is None:
                raise NetlistError("gate needs an expr or a gtype")
            expr = build_gate_expr(gtype, name, list(inputs or []))
        elif isinstance(expr, str):
            expr = parse_expr(expr)
        self._gate_defs.append((name, expr, gtype))

    def mark_output(self, name: str) -> None:
        """Mark a signal as a primary (observable) output."""
        self._check_mutable()
        if name not in self._output_names:
            self._output_names.append(name)

    def set_reset(self, values: Dict[str, int]) -> None:
        """Give the reset state as a {signal name: 0/1} map (all signals)."""
        self._check_mutable()
        self._reset_values = dict(values)

    def set_k(self, k: int) -> None:
        """Set the default test-cycle transition bound (paper §4.1)."""
        self._check_mutable()
        if k < 1:
            raise NetlistError("k must be positive")
        self._k = k

    def finalize(self) -> "Circuit":
        """Resolve names, compile gate programs, validate. Returns self."""
        self._check_mutable()
        if not self._gate_defs:
            raise NetlistError("circuit has no gates")
        names = self._input_names + [g[0] for g in self._gate_defs]
        index_of = {n: i for i, n in enumerate(names)}
        signals = []
        gates = []
        out_set = set(self._output_names)
        for i, n in enumerate(self._input_names):
            signals.append(Signal(n, i, True, n in out_set))
        m = len(self._input_names)
        for j, (n, expr, gtype) in enumerate(self._gate_defs):
            idx = m + j
            try:
                program = compile_expr(expr, index_of)
            except KeyError as exc:
                raise NetlistError(
                    f"gate {n!r} references undefined signal {exc.args[0]!r}"
                ) from None
            gates.append(Gate(n, idx, expr, program, program_vars(program), gtype))
            signals.append(Signal(n, idx, False, n in out_set))
        for n in self._output_names:
            if n not in index_of:
                raise NetlistError(f"output {n!r} is not a defined signal")
        self.signals = tuple(signals)
        self.gates = tuple(gates)
        self.outputs = tuple(index_of[n] for n in self._output_names)
        self._index_of = index_of
        if self._reset_values is not None:
            missing = [n for n in names if n not in self._reset_values]
            if missing:
                raise NetlistError(f"reset state missing signals: {missing}")
            unknown = [n for n in self._reset_values if n not in index_of]
            if unknown:
                raise NetlistError(f"reset state has unknown signals: {unknown}")
            state = 0
            for n, v in self._reset_values.items():
                state = set_bit(state, index_of[n], int(v))
            self.reset_state = state
        self._finalized = True
        return self

    # -- derived structure (cached; consumed by the compiled engine) ----

    def fanouts(self) -> Tuple[Tuple[int, ...], ...]:
        """For every signal index, the positions (into ``self.gates``) of
        the gates whose support reads that signal.  Computed once and
        cached; the event-driven simulation engine seeds its worklist
        from these lists."""
        cached = getattr(self, "_fanouts", None)
        if cached is None:
            lists: List[List[int]] = [[] for _ in range(self.n_signals)]
            for pos, gate in enumerate(self.gates):
                for src in gate.support:
                    lists[src].append(pos)
            cached = tuple(tuple(l) for l in lists)
            self._fanouts = cached
        return cached

    def levels(self) -> Tuple[int, ...]:
        """Gate positions in a feedback-tolerant topological order.

        Gates whose support is fully resolved (inputs or already-levelled
        gates) come first, layer by layer; gates stuck in feedback cycles
        are appended in declaration order.  The engine uses this as its
        initial evaluation schedule so feed-forward logic settles in one
        pass."""
        cached = getattr(self, "_levels", None)
        if cached is None:
            resolved = [False] * self.n_signals
            for i in range(self.n_inputs):
                resolved[i] = True
            order: List[int] = []
            remaining = list(range(len(self.gates)))
            while remaining:
                layer = [
                    pos
                    for pos in remaining
                    if all(
                        resolved[src] or src == self.gates[pos].index
                        for src in self.gates[pos].support
                    )
                ]
                if not layer:
                    break  # pure feedback knot: fall through to append
                for pos in layer:
                    order.append(pos)
                    resolved[self.gates[pos].index] = True
                remaining = [pos for pos in remaining if not resolved[self.gates[pos].index]]
            order.extend(remaining)
            cached = tuple(order)
            self._levels = cached
        return cached

    # -- shape queries -------------------------------------------------

    @property
    def n_inputs(self) -> int:
        return len(self._input_names)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_signals(self) -> int:
        return len(self.signals)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self._input_names)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(self._output_names)

    @property
    def k(self) -> int:
        """Test-cycle transition bound: explicit, or the §4.1-style
        estimate ``4 * n_signals + 8`` (a loose |sigma| upper bound)."""
        if self._k is not None:
            return self._k
        return 4 * self.n_signals + 8

    def index(self, name: str) -> int:
        """Signal index for ``name``."""
        try:
            return self._index_of[name]
        except KeyError:
            raise NetlistError(f"unknown signal {name!r}") from None

    def gate_at(self, index: int) -> Optional[Gate]:
        """The gate driving signal ``index``, or None for primary-input
        wires.  O(1): gates occupy indices ``n_inputs..n_signals-1`` in
        declaration order."""
        pos = index - self.n_inputs
        if 0 <= pos < len(self.gates):
            return self.gates[pos]
        return None

    def signal_name(self, i: int) -> str:
        return self.signals[i].name

    # -- state operations ----------------------------------------------

    def value(self, state: int, name: str) -> int:
        """Value of the named signal in ``state``."""
        return bit(state, self.index(name))

    def input_pattern(self, state: int) -> int:
        """The lambda_P labeling: the low m bits of the state."""
        return state & mask(self.n_inputs)

    def apply_input_pattern(self, state: int, pattern: int) -> int:
        """Replace the input bits of ``state`` by ``pattern`` (an R_I step:
        several inputs may change at once, no gate has switched yet)."""
        return (state & ~mask(self.n_inputs)) | (pattern & mask(self.n_inputs))

    def gate_eval(self, gate: Gate, state: int) -> int:
        """Instantaneous function value of ``gate`` in ``state``."""
        return eval_binary(gate.program, state)

    def is_excited(self, gate: Gate, state: int) -> bool:
        return eval_binary(gate.program, state) != bit(state, gate.index)

    def excited_gates(self, state: int) -> List[Gate]:
        """All excited gates of ``state`` (the nondeterministic choices of
        the next-state function delta, §3.1)."""
        return [g for g in self.gates
                if eval_binary(g.program, state) != bit(state, g.index)]

    def is_stable(self, state: int) -> bool:
        return not any(
            eval_binary(g.program, state) != bit(state, g.index) for g in self.gates
        )

    def switch(self, state: int, gate: Gate) -> int:
        """delta(s, g): flip the gate's output (gate must be excited)."""
        return state ^ (1 << gate.index)

    def output_values(self, state: int) -> Tuple[int, ...]:
        """Values of the primary outputs in ``state``, in output order."""
        return tuple(bit(state, o) for o in self.outputs)

    def state_of(self, values: Dict[str, int]) -> int:
        """Pack a {name: value} map (must cover all signals) into a state."""
        missing = [s.name for s in self.signals if s.name not in values]
        if missing:
            raise NetlistError(f"state map missing signals: {missing}")
        state = 0
        for n, v in values.items():
            state = set_bit(state, self.index(n), int(v))
        return state

    def format_state(self, state: int) -> str:
        """Human-readable state like ``A=0 B=1 | a=0 b=1 c=0``."""
        ins = " ".join(
            f"{s.name}={bit(state, s.index)}" for s in self.signals if s.is_input
        )
        outs = " ".join(
            f"{s.name}={bit(state, s.index)}" for s in self.signals if not s.is_input
        )
        return f"{ins} | {outs}" if ins else outs

    def state_bits(self, state: int) -> str:
        """The paper's compact convention: signal-ordered bit string."""
        return bits_to_str(state, self.n_signals)

    def enumerate_stable_states(self, limit: int = 1 << 22) -> List[int]:
        """Brute-force all stable states (testing aid; small circuits only)."""
        n = self.n_signals
        if (1 << n) > limit:
            raise NetlistError(f"too many states to enumerate: 2^{n}")
        return [s for s in range(1 << n) if self.is_stable(s)]

    def require_reset(self) -> int:
        """Return the reset state or raise if the netlist did not set one."""
        if self.reset_state is None:
            raise NetlistError(f"circuit {self.name!r} has no reset state")
        return self.reset_state

    def __repr__(self):
        return (
            f"Circuit({self.name!r}, inputs={self.n_inputs}, "
            f"gates={self.n_gates}, outputs={len(self.outputs)})"
        )
