"""The :class:`Fault` record and registry-backed universe entry points.

A fault is four ints/strings — ``(kind, gate, site, value)`` — whose
*meaning* is owned by the fault model registered for ``kind`` in
:mod:`repro.faultmodels`:

* ``input`` stuck-at — ``gate`` is the affected gate's output signal,
  ``site`` the source signal feeding the stuck pin, ``value`` the stuck
  constant (paper §1, §5, §6);
* ``output`` stuck-at — ``gate == site`` is the stuck signal;
* ``bridging`` — ``gate < site`` are the two shorted nets, ``value``
  selects wired-AND (0) / wired-OR (1);
* ``transition`` — ``gate == site`` is the slow signal, ``value`` the
  transition's destination (1 = slow-to-rise, 0 = slow-to-fall).

This module stays the stable import surface the rest of the package
(and external callers) use: :func:`fault_universe` dispatches through
the registry and raises :class:`~repro.errors.ReproError` naming the
registered models for unknown names; ``input_fault_universe`` /
``output_fault_universe`` and :func:`materialize_fault` keep their
historical signatures.  The model *semantics* live in
:mod:`repro.faultmodels` (imported lazily, so ``repro.circuit`` keeps
loading first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit, Gate


@dataclass(frozen=True, order=True)
class Fault:
    """One fault record; see the module docstring for the per-kind
    field meaning.  Hashable and totally ordered, so fault sets,
    ledgers and cache keys are deterministic."""

    kind: str
    gate: int
    site: int
    value: int

    def describe(self, circuit: Circuit) -> str:
        """Human-readable fault name, e.g. ``y<-a SA0``, ``y SA1``,
        ``a~b wired-AND`` or ``y STR``."""
        from repro.faultmodels import model_for_kind

        return model_for_kind(self.kind).describe(circuit, self)

    def excitation_site(self) -> int:
        """The signal whose stable value matters for excitation
        (paper §5.1).  Meaningful for the stuck-at kinds; model-aware
        callers should use :meth:`FaultModel.excites` instead."""
        return self.site

    def to_json(self) -> List:
        """Compact JSON form: ``[kind, gate, site, value]``."""
        return [self.kind, self.gate, self.site, self.value]

    @staticmethod
    def from_json(data: Sequence) -> "Fault":
        kind, gate, site, value = data
        return Fault(str(kind), int(gate), int(site), int(value))


def input_fault_universe(circuit: Circuit) -> List[Fault]:
    """All single input stuck-at faults: two per gate input pin."""
    from repro.faultmodels import INPUT_STUCK_AT

    return INPUT_STUCK_AT.universe(circuit)


def output_fault_universe(circuit: Circuit) -> List[Fault]:
    """All single output stuck-at faults: two per gate output."""
    from repro.faultmodels import OUTPUT_STUCK_AT

    return OUTPUT_STUCK_AT.universe(circuit)


def fault_universe(circuit: Circuit, model: str) -> List[Fault]:
    """The universe of the registered fault model named ``model``.

    Raises :class:`~repro.errors.ReproError` listing the registered
    models for an unknown name — the CLIs surface it as exit status 1.

    >>> from repro.benchmarks_data import load_benchmark
    >>> c = load_benchmark("dff")
    >>> {m: len(fault_universe(c, m))
    ...  for m in ("input", "output", "bridging", "transition")}
    {'input': 10, 'output': 6, 'bridging': 6, 'transition': 6}
    """
    from repro.faultmodels import get_model

    return get_model(model).universe(circuit)


def gate_of(circuit: Circuit, fault: Fault) -> Optional[Gate]:
    """The Gate object whose evaluation the fault perturbs (the first
    one, for bridging faults)."""
    return circuit.gate_at(fault.gate)


def substitute_signal(expr, name: str, value: int):
    """Replace every occurrence of Var(name) in ``expr`` by Const(value)
    — the input stuck-at cofactor, also useful for model authors."""
    from repro.circuit.expr import And, Const, Not, Or, Var, Xor

    if isinstance(expr, Var):
        return Const(value) if expr.name == name else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(substitute_signal(expr.arg, name, value))
    if isinstance(expr, And):
        return And(tuple(substitute_signal(a, name, value) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(substitute_signal(a, name, value) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(
            substitute_signal(expr.a, name, value),
            substitute_signal(expr.b, name, value),
        )
    raise TypeError(f"unknown expression node {expr!r}")


#: Backwards-compatible alias (pre-registry private name).
_substitute = substitute_signal


def materialize_fault(circuit: Circuit, fault: Fault) -> Circuit:
    """Build the faulty circuit as a real netlist, dispatching to the
    fault's model.  The signal order, outputs and ``k`` are preserved,
    so states of the two circuits are directly comparable — this
    enables *exact* faulty-machine simulation with the same settling
    explorer used for the good circuit, avoiding the conservatism of
    ternary simulation."""
    from repro.faultmodels import model_for_kind

    return model_for_kind(fault.kind).materialize(circuit, fault)
