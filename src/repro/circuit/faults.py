"""Stuck-at fault models (paper §1, §5, §6).

Two universes:

* **output stuck-at** — every gate output (including the primary-input
  buffer gates) stuck at 0 and at 1.  Modeled by replacing the gate's
  function with a constant; after the forced reset state settles, the
  node holds the stuck value permanently.
* **input stuck-at** — every gate input *pin* stuck at 0 and at 1, where a
  pin is a (gate, source-signal) pair in the gate's support (feedback
  inputs included).  Modeled by forcing the source value to a constant
  inside that single gate's evaluation; other readers of the same wire
  see the true value.  This universe subsumes the output universe on
  single-fanout nets, matching the paper's remark that "the input
  stuck-at fault model includes all output stuck-at faults".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit, Gate


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault.

    ``kind`` is ``"input"`` or ``"output"``.  For input faults ``gate`` is
    the index of the affected gate's output signal and ``site`` the source
    signal feeding the stuck pin.  For output faults ``gate == site`` is
    the stuck signal itself.  ``value`` is the stuck constant.
    """

    kind: str
    gate: int
    site: int
    value: int

    def describe(self, circuit: Circuit) -> str:
        """Human-readable fault name, e.g. ``y<-a SA0`` or ``y SA1``."""
        if self.kind == "input":
            return (
                f"{circuit.signal_name(self.gate)}<-"
                f"{circuit.signal_name(self.site)} SA{self.value}"
            )
        return f"{circuit.signal_name(self.site)} SA{self.value}"

    def excitation_site(self) -> int:
        """The signal whose stable value must differ from the stuck value
        for the fault to be *excited* (paper §5.1)."""
        return self.site

    def to_json(self) -> List:
        """Compact JSON form: ``[kind, gate, site, value]``."""
        return [self.kind, self.gate, self.site, self.value]

    @staticmethod
    def from_json(data: Sequence) -> "Fault":
        kind, gate, site, value = data
        return Fault(str(kind), int(gate), int(site), int(value))


def input_fault_universe(circuit: Circuit) -> List[Fault]:
    """All single input stuck-at faults: two per gate input pin."""
    faults: List[Fault] = []
    for gate in circuit.gates:
        for src in gate.support:
            for value in (0, 1):
                faults.append(Fault("input", gate.index, src, value))
    return faults


def output_fault_universe(circuit: Circuit) -> List[Fault]:
    """All single output stuck-at faults: two per gate output."""
    faults: List[Fault] = []
    for gate in circuit.gates:
        for value in (0, 1):
            faults.append(Fault("output", gate.index, gate.index, value))
    return faults


def fault_universe(circuit: Circuit, model: str) -> List[Fault]:
    """Universe for ``model`` in {"input", "output"}."""
    if model == "input":
        return input_fault_universe(circuit)
    if model == "output":
        return output_fault_universe(circuit)
    raise ValueError(f"unknown fault model {model!r}")


def gate_of(circuit: Circuit, fault: Fault) -> Optional[Gate]:
    """The Gate object whose evaluation the fault perturbs."""
    for gate in circuit.gates:
        if gate.index == fault.gate:
            return gate
    return None


def _substitute(expr, name: str, value: int):
    """Replace every occurrence of Var(name) in ``expr`` by Const(value)."""
    from repro.circuit.expr import And, Const, Not, Or, Var, Xor

    if isinstance(expr, Var):
        return Const(value) if expr.name == name else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(_substitute(expr.arg, name, value))
    if isinstance(expr, And):
        return And(tuple(_substitute(a, name, value) for a in expr.args))
    if isinstance(expr, Or):
        return Or(tuple(_substitute(a, name, value) for a in expr.args))
    if isinstance(expr, Xor):
        return Xor(_substitute(expr.a, name, value), _substitute(expr.b, name, value))
    raise TypeError(f"unknown expression node {expr!r}")


def materialize_fault(circuit: Circuit, fault: Fault) -> Circuit:
    """Build the faulty circuit as a real netlist.

    * input pin fault — the faulted gate's expression reads a constant in
      place of the stuck source signal;
    * output fault — the gate's function becomes the constant, and the
      reset state pre-sets the node to its stuck value (the node never
      held the fault-free reset value).

    The signal order, outputs and ``k`` are preserved, so states of the
    two circuits are directly comparable.  This enables *exact* faulty-
    machine simulation with the same settling explorer used for the good
    circuit, avoiding the conservatism of ternary simulation.
    """
    from repro._bits import bit
    from repro.circuit.expr import Const

    faulty = Circuit(f"{circuit.name}#{fault.kind}-{fault.gate}-{fault.site}-{fault.value}")
    for name in circuit.input_names:
        faulty.add_input(name)
    for gate in circuit.gates:
        if fault.kind == "output" and gate.index == fault.gate:
            faulty.add_gate(gate.name, expr=Const(fault.value))
        elif fault.kind == "input" and gate.index == fault.gate:
            site_name = circuit.signal_name(fault.site)
            faulty.add_gate(gate.name, expr=_substitute(gate.expr, site_name, fault.value))
        else:
            faulty.add_gate(gate.name, expr=gate.expr)
    for name in circuit.output_names:
        faulty.mark_output(name)
    if circuit.reset_state is not None:
        reset = {s.name: bit(circuit.reset_state, s.index) for s in circuit.signals}
        if fault.kind == "output":
            reset[circuit.signal_name(fault.site)] = fault.value
        faulty.set_reset(reset)
    faulty.set_k(circuit.k)
    return faulty.finalize()
