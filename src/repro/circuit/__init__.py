"""Gate-level circuit model under the unbounded inertial gate-delay model.

This subpackage provides:

* :mod:`repro.circuit.expr` — boolean expression ASTs used as gate
  functions, with compiled evaluators (binary, ternary, word-parallel).
* :mod:`repro.circuit.gatelib` — a library of named gate types
  (``AND2``, ``CELEM``, ...) that expand to expressions.
* :mod:`repro.circuit.netlist` — the :class:`Circuit` container and
  packed-integer state representation.
* :mod:`repro.circuit.parser` — the textual ``.net`` format.
* :mod:`repro.circuit.faults` — input/output stuck-at fault universes.
"""

from repro.circuit.expr import Expr, Var, Const, Not, And, Or, Xor, parse_expr
from repro.circuit.netlist import Circuit, Gate, Signal
from repro.circuit.parser import parse_netlist, netlist_to_text, load_netlist
from repro.circuit.faults import (
    Fault,
    input_fault_universe,
    output_fault_universe,
    fault_universe,
)

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Not",
    "And",
    "Or",
    "Xor",
    "parse_expr",
    "Circuit",
    "Gate",
    "Signal",
    "parse_netlist",
    "netlist_to_text",
    "load_netlist",
    "Fault",
    "input_fault_universe",
    "output_fault_universe",
    "fault_universe",
]
