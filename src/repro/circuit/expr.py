"""Boolean expression ASTs for gate functions.

A gate's behaviour is an :class:`Expr` over signal *names*.  When a circuit
is finalized each expression is compiled to a small postfix *program* over
signal *indices*; the simulators then evaluate programs rather than walking
the AST.

Three evaluation domains share the compiled form:

* **binary** — values are the bits of a packed-int circuit state;
* **ternary** — values are (l, h) pairs where ``l`` means "can be 0" and
  ``h`` means "can be 1"; ``(1, 1)`` is the uncertain value Φ of
  Eichelberger's ternary simulation;
* **word-parallel ternary** — identical code with W-bit ints in place of
  single bits, simulating W faulty machines at once (Seshu-style parallel
  fault simulation combined with ternary values, paper §5.4).

The ternary operators used here are the standard monotone extensions:
``NOT (l,h) = (h,l)``, ``AND = (l1|l2, h1&h2)``, ``OR = (l1&l2, h1|h2)``,
``XOR = (l1&l2 | h1&h2, l1&h2 | h1&l2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ParseError

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class for boolean expressions over named signals."""

    def vars(self) -> List[str]:
        """Return the distinct variable names, in first-appearance order."""
        seen: Dict[str, None] = {}
        self._collect_vars(seen)
        return list(seen)

    def _collect_vars(self, seen: Dict[str, None]) -> None:
        raise NotImplementedError

    # Operator sugar so circuits can be built programmatically:
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, _as_expr(other)))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, _as_expr(other)))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor(self, _as_expr(other))

    def __invert__(self) -> "Expr":
        return Not(self)


def _as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if value in (0, 1):
        return Const(int(value))
    raise TypeError(f"cannot interpret {value!r} as an expression")


@dataclass(frozen=True)
class Const(Expr):
    """The constant 0 or 1."""

    value: int

    def __post_init__(self):
        if self.value not in (0, 1):
            raise ValueError("Const value must be 0 or 1")

    def _collect_vars(self, seen):
        pass

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a signal by name."""

    name: str

    def _collect_vars(self, seen):
        seen.setdefault(self.name)

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    arg: Expr

    def _collect_vars(self, seen):
        self.arg._collect_vars(seen)

    def __str__(self):
        return f"~{_paren(self.arg)}"


@dataclass(frozen=True)
class And(Expr):
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.args) < 2:
            raise ValueError("And needs at least two operands")

    def _collect_vars(self, seen):
        for a in self.args:
            a._collect_vars(seen)

    def __str__(self):
        return " & ".join(_paren(a) for a in self.args)


@dataclass(frozen=True)
class Or(Expr):
    args: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.args) < 2:
            raise ValueError("Or needs at least two operands")

    def _collect_vars(self, seen):
        for a in self.args:
            a._collect_vars(seen)

    def __str__(self):
        return " | ".join(_paren(a) for a in self.args)


@dataclass(frozen=True)
class Xor(Expr):
    a: Expr
    b: Expr

    def _collect_vars(self, seen):
        self.a._collect_vars(seen)
        self.b._collect_vars(seen)

    def __str__(self):
        return f"{_paren(self.a)} ^ {_paren(self.b)}"


def _paren(e: Expr) -> str:
    if isinstance(e, (Var, Const, Not)):
        return str(e)
    return f"({e})"


def and_all(args: Sequence[Expr]) -> Expr:
    """Conjunction of ``args`` (returns Const(1) / the operand / an And)."""
    args = [_as_expr(a) for a in args]
    if not args:
        return Const(1)
    if len(args) == 1:
        return args[0]
    return And(tuple(args))


def or_all(args: Sequence[Expr]) -> Expr:
    """Disjunction of ``args``."""
    args = [_as_expr(a) for a in args]
    if not args:
        return Const(0)
    if len(args) == 1:
        return args[0]
    return Or(tuple(args))


# ---------------------------------------------------------------------------
# Parser:  |  lowest, then ^, &, ~ highest;  parentheses; names; 0/1.
# ---------------------------------------------------------------------------

_TOKEN_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.$[]")


def _tokenize(text: str, filename: str, line: int) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "&|^~()!":
            tokens.append("~" if ch == "!" else ch)
            i += 1
        elif ch in _TOKEN_CHARS:
            j = i
            while j < len(text) and text[j] in _TOKEN_CHARS:
                j += 1
            tokens.append(text[i:j])
            i = j
        else:
            raise ParseError(f"unexpected character {ch!r} in expression", filename, line)
    return tokens


class _ExprParser:
    def __init__(self, tokens: List[str], filename: str, line: int):
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.line = line

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def next(self) -> str:
        tok = self.peek()
        self.pos += 1
        return tok

    def fail(self, message: str):
        raise ParseError(message, self.filename, self.line)

    def parse(self) -> Expr:
        e = self.parse_or()
        if self.peek():
            self.fail(f"trailing tokens starting at {self.peek()!r}")
        return e

    def parse_or(self) -> Expr:
        parts = [self.parse_xor()]
        while self.peek() == "|":
            self.next()
            parts.append(self.parse_xor())
        return or_all(parts)

    def parse_xor(self) -> Expr:
        e = self.parse_and()
        while self.peek() == "^":
            self.next()
            e = Xor(e, self.parse_and())
        return e

    def parse_and(self) -> Expr:
        parts = [self.parse_unary()]
        while self.peek() == "&":
            self.next()
            parts.append(self.parse_unary())
        return and_all(parts)

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok == "~":
            self.next()
            return Not(self.parse_unary())
        if tok == "(":
            self.next()
            e = self.parse_or()
            if self.next() != ")":
                self.fail("missing closing parenthesis")
            return e
        if tok == "":
            self.fail("unexpected end of expression")
        self.next()
        if tok == "0":
            return Const(0)
        if tok == "1":
            return Const(1)
        return Var(tok)


def parse_expr(text: str, filename: str = "<string>", line: int = 0) -> Expr:
    """Parse an expression like ``(a & ~b) | c ^ d``.

    Precedence (highest first): ``~``, ``&``, ``^``, ``|``.
    """
    return _ExprParser(_tokenize(text, filename, line), filename, line).parse()


# ---------------------------------------------------------------------------
# Compilation to postfix programs
# ---------------------------------------------------------------------------

OP_VAR = 0
OP_NOT = 1
OP_AND = 2
OP_OR = 3
OP_XOR = 4
OP_CONST = 5

Program = Tuple[Tuple[int, int], ...]


def compile_expr(expr: Expr, index_of: Dict[str, int]) -> Program:
    """Compile ``expr`` to a postfix program over signal indices.

    ``index_of`` maps signal names to indices; unknown names raise
    ``KeyError`` (the netlist layer turns that into a NetlistError).
    """
    code: List[Tuple[int, int]] = []

    def emit(e: Expr) -> None:
        if isinstance(e, Var):
            code.append((OP_VAR, index_of[e.name]))
        elif isinstance(e, Const):
            code.append((OP_CONST, e.value))
        elif isinstance(e, Not):
            emit(e.arg)
            code.append((OP_NOT, 0))
        elif isinstance(e, And):
            emit(e.args[0])
            for a in e.args[1:]:
                emit(a)
                code.append((OP_AND, 0))
        elif isinstance(e, Or):
            emit(e.args[0])
            for a in e.args[1:]:
                emit(a)
                code.append((OP_OR, 0))
        elif isinstance(e, Xor):
            emit(e.a)
            emit(e.b)
            code.append((OP_XOR, 0))
        else:
            raise TypeError(f"unknown expression node {e!r}")

    emit(expr)
    return tuple(code)


def eval_binary(program: Program, state: int) -> int:
    """Evaluate a compiled program against a packed binary state."""
    stack: List[int] = []
    push = stack.append
    pop = stack.pop
    for op, arg in program:
        if op == OP_VAR:
            push((state >> arg) & 1)
        elif op == OP_NOT:
            stack[-1] ^= 1
        elif op == OP_AND:
            b = pop()
            stack[-1] &= b
        elif op == OP_OR:
            b = pop()
            stack[-1] |= b
        elif op == OP_XOR:
            b = pop()
            stack[-1] ^= b
        else:  # OP_CONST
            push(arg)
    return stack[0]


def eval_ternary(
    program: Program,
    getv: Callable[[int], Tuple[int, int]],
    ones: int = 1,
) -> Tuple[int, int]:
    """Evaluate a program in the ternary (l, h) domain.

    ``getv(signal_index)`` supplies operand pairs; ``ones`` is the all-ones
    word (1 for scalar evaluation, a W-bit mask for parallel fault
    simulation).  Returns the (l, h) pair of the result.
    """
    stack: List[Tuple[int, int]] = []
    push = stack.append
    pop = stack.pop
    for op, arg in program:
        if op == OP_VAR:
            push(getv(arg))
        elif op == OP_NOT:
            l, h = stack[-1]
            stack[-1] = (h, l)
        elif op == OP_AND:
            l2, h2 = pop()
            l1, h1 = stack[-1]
            stack[-1] = (l1 | l2, h1 & h2)
        elif op == OP_OR:
            l2, h2 = pop()
            l1, h1 = stack[-1]
            stack[-1] = (l1 & l2, h1 | h2)
        elif op == OP_XOR:
            l2, h2 = pop()
            l1, h1 = stack[-1]
            stack[-1] = ((l1 & l2) | (h1 & h2), (l1 & h2) | (h1 & l2))
        else:  # OP_CONST
            push((0, ones) if arg else (ones, 0))
    return stack[0]


def program_vars(program: Program) -> Tuple[int, ...]:
    """Distinct signal indices referenced by a program, sorted."""
    return tuple(sorted({arg for op, arg in program if op == OP_VAR}))
