"""Reader/writer for the textual ``.net`` netlist format.

The format is line-based; ``#`` starts a comment.  Directives::

    .model NAME
    .inputs A B ...
    .outputs y z ...
    .gate OUT GTYPE IN1 IN2 ...     # library gate (see gatelib)
    .expr OUT = EXPRESSION          # arbitrary gate function
    .reset A=0 B=0 a=0 ...          # full reset state (all signals)
    .k 24                           # test-cycle transition bound
    .end                            # optional

Example (the paper's figure 1(b) oscillator)::

    .model fig1b
    .inputs A
    .gate a BUF A
    .expr c = ~(a & d)
    .gate d BUF c
    .outputs d
    .reset A=0 a=0 c=1 d=1
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuit.expr import parse_expr
from repro.circuit.netlist import Circuit
from repro.errors import ParseError


def parse_netlist(text: str, filename: str = "<string>") -> Circuit:
    """Parse ``.net`` source text into a finalized :class:`Circuit`."""
    circuit: Optional[Circuit] = None
    pending: List[tuple] = []  # deferred (kind, payload, line)
    name = "circuit"
    inputs: List[str] = []
    outputs: List[str] = []
    reset = None
    k = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        if head == ".model":
            if len(tokens) != 2:
                raise ParseError(".model expects one name", filename, lineno)
            name = tokens[1]
        elif head == ".inputs":
            inputs.extend(tokens[1:])
        elif head == ".outputs":
            outputs.extend(tokens[1:])
        elif head == ".gate":
            if len(tokens) < 3:
                raise ParseError(".gate expects OUT GTYPE [INPUTS...]", filename, lineno)
            pending.append(("gate", (tokens[1], tokens[2], tokens[3:]), lineno))
        elif head == ".expr":
            if "=" not in line:
                raise ParseError(".expr expects OUT = EXPRESSION", filename, lineno)
            lhs, rhs = line[len(".expr"):].split("=", 1)
            out = lhs.strip()
            if not out or len(out.split()) != 1:
                raise ParseError("bad .expr output name", filename, lineno)
            pending.append(("expr", (out, parse_expr(rhs, filename, lineno)), lineno))
        elif head == ".reset":
            reset = {}
            for tok in tokens[1:]:
                if "=" not in tok:
                    raise ParseError(f"bad reset assignment {tok!r}", filename, lineno)
                n, v = tok.split("=", 1)
                if v not in ("0", "1"):
                    raise ParseError(f"reset value must be 0/1 in {tok!r}", filename, lineno)
                reset[n] = int(v)
        elif head == ".k":
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ParseError(".k expects a positive integer", filename, lineno)
            k = int(tokens[1])
        elif head == ".end":
            break
        else:
            raise ParseError(f"unknown directive {head!r}", filename, lineno)

    circuit = Circuit(name)
    for n in inputs:
        _wrap(circuit.add_input, filename, 0, n)
    for kind, payload, lineno in pending:
        if kind == "gate":
            out, gtype, ins = payload
            _wrap(circuit.add_gate, filename, lineno, out, gtype=gtype, inputs=ins)
        else:
            out, expr = payload
            _wrap(circuit.add_gate, filename, lineno, out, expr=expr)
    for n in outputs:
        circuit.mark_output(n)
    if reset is not None:
        circuit.set_reset(reset)
    if k is not None:
        circuit.set_k(k)
    _wrap(circuit.finalize, filename, 0)
    return circuit


def _wrap(fn, filename, lineno, *args, **kwargs):
    """Convert NetlistError raised by construction into a ParseError with
    position information."""
    from repro.errors import NetlistError

    try:
        return fn(*args, **kwargs)
    except NetlistError as exc:
        raise ParseError(str(exc), filename, lineno) from None


def load_netlist(path) -> Circuit:
    """Parse a ``.net`` file from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_netlist(f.read(), filename=str(path))


def netlist_to_text(circuit: Circuit) -> str:
    """Serialize a finalized circuit back to ``.net`` text.

    Library gates round-trip as ``.gate`` lines when their type was
    recorded; everything else is written with ``.expr``.
    """
    lines = [f".model {circuit.name}"]
    if circuit.input_names:
        lines.append(".inputs " + " ".join(circuit.input_names))
    for gate in circuit.gates:
        if gate.gtype is not None:
            ins = " ".join(circuit.signal_name(i) for i in _gate_input_order(circuit, gate))
            lines.append(f".gate {gate.name} {gate.gtype} {ins}".rstrip())
        else:
            lines.append(f".expr {gate.name} = {gate.expr}")
    if circuit.output_names:
        lines.append(".outputs " + " ".join(circuit.output_names))
    if circuit.reset_state is not None:
        parts = [
            f"{s.name}={(circuit.reset_state >> s.index) & 1}" for s in circuit.signals
        ]
        lines.append(".reset " + " ".join(parts))
    lines.append(f".k {circuit.k}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _gate_input_order(circuit: Circuit, gate) -> List[int]:
    """Original operand order for library gates: first-appearance order of
    variables in the expression, excluding the feedback self-reference."""
    order = []
    for name in gate.expr.vars():
        idx = circuit.index(name)
        if idx == gate.index and gate.gtype in ("C", "CELEM", "CELEMN", "SR"):
            continue
        if idx not in order:
            order.append(idx)
    return order
