"""Command line interface: ``repro-atpg`` (or ``python -m repro.cli``).

Examples::

    repro-atpg --list                    # show bundled benchmarks
    repro-atpg ebergen                   # ATPG on a bundled benchmark
    repro-atpg ebergen --style two-level --model output
    repro-atpg path/to/circuit.net --show-tests
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.benchmarks_data import TABLE1_NAMES, benchmark_names, load_benchmark
from repro.circuit.parser import load_netlist
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.errors import ReproError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atpg",
        description="Synchronous ATPG for asynchronous circuits (DAC'97).",
    )
    parser.add_argument(
        "circuit",
        nargs="?",
        help="bundled benchmark name or path to a .net netlist",
    )
    parser.add_argument("--list", action="store_true", help="list bundled benchmarks")
    parser.add_argument(
        "--style",
        default="complex",
        choices=["complex", "two-level"],
        help="synthesis back end for bundled STG benchmarks",
    )
    parser.add_argument(
        "--model",
        default="input",
        choices=["input", "output"],
        help="stuck-at fault model",
    )
    parser.add_argument("--seed", type=int, default=0, help="random TPG seed")
    parser.add_argument("--k", type=int, default=None, help="test-cycle bound k")
    parser.add_argument(
        "--cssg-method",
        default="auto",
        choices=["auto", "exact", "ternary"],
        help="CSSG vector-validity analysis",
    )
    parser.add_argument(
        "--no-random", action="store_true", help="skip the random TPG step"
    )
    parser.add_argument(
        "--show-tests", action="store_true", help="print every generated sequence"
    )
    parser.add_argument(
        "--show-undetected", action="store_true", help="print undetected faults"
    )
    return parser


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.list:
        for name in benchmark_names():
            print(name)
        return 0
    if not args.circuit:
        print("error: give a benchmark name or .net path (or --list)", file=sys.stderr)
        return 2
    try:
        if args.circuit in TABLE1_NAMES:
            circuit = load_benchmark(args.circuit, style=args.style)
        else:
            path = Path(args.circuit)
            if not path.exists():
                print(
                    f"error: {args.circuit!r} is neither a bundled benchmark "
                    "nor an existing file",
                    file=sys.stderr,
                )
                return 2
            circuit = load_netlist(path)
        options = AtpgOptions(
            fault_model=args.model,
            seed=args.seed,
            k=args.k,
            cssg_method=args.cssg_method,
            use_random_tpg=not args.no_random,
        )
        result = AtpgEngine(circuit, options).run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.summary())
    if args.show_tests:
        for i, test in enumerate(result.tests):
            patterns = " ".join(test.format_patterns(circuit)) or "(observe reset)"
            names = ", ".join(f.describe(circuit) for f in test.faults)
            print(f"  test {i} [{test.source}]: {patterns}  -> {names}")
    if args.show_undetected:
        for fault in result.undetected_faults():
            status = result.statuses[fault].status
            print(f"  undetected [{status}]: {fault.describe(circuit)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
