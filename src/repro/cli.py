"""Command line interfaces: ``repro-atpg``, ``repro-campaign``,
``repro-cache``, and ``repro-fuzz``.

Examples::

    repro-atpg --list                    # show bundled benchmarks
    repro-atpg ebergen                   # ATPG on a bundled benchmark
    repro-atpg ebergen --style two-level --model output
    repro-atpg ebergen --model bridging         # wired-AND/OR net shorts
    repro-atpg ebergen --model transition       # slow-to-rise/fall
    repro-atpg ebergen --cssg-method symbolic   # BDD-based construction
    repro-atpg path/to/circuit.net --show-tests
    repro-atpg converta --json           # one result as a JSON object
    repro-atpg vbe6a --progress          # live stage/coverage line
    repro-atpg vbe6a --trace out.jsonl   # structured event trace
    repro-atpg vbe6a --deadline 0.5      # bounded run (partial result)
    repro-atpg vbe6a --collapse --compact --faulty-semantics ternary

    repro-campaign                       # Table 1 corpus, all cores
    repro-campaign --table2 --workers 4 --out out/table2
    repro-campaign dff chu150 --seeds 0,1,2 --no-cache
    repro-campaign dff --cssg-method hybrid,symbolic   # method axis
    repro-campaign --models output,input,bridging,transition
    repro-atpg --campaign --table2       # alias for repro-campaign

    repro-cache list                     # entries in the shared cache
    repro-cache stats                    # size + lifetime hit rate
    repro-cache prune --max-age-days 30 --max-size-mb 512
    repro-cache clear

    repro-fuzz -n 200                    # 200 seeds through all oracles
    repro-fuzz --seed 1000 -n 50 --oracles settle,kernels
    repro-fuzz -n 500 --workers 8 --out out/fuzz   # shrunk-spec artifacts

(The ``repro-serve`` daemon has its own entry point — see
:mod:`repro.serve.server` and ``docs/serving.md``.)

``python -m repro.cli`` behaves like ``repro-atpg``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.benchmarks_data import benchmark_names, load_benchmark
from repro.circuit.parser import load_netlist
from repro.core.atpg import AtpgOptions
from repro.errors import ReproError
from repro.faultmodels import model_names
from repro.flow import Flow, ProgressLine, TraceWriter
from repro.sgraph.cssg import CSSG_METHODS


def _cssg_method_choices():
    """Every registered construction method plus the size-resolved
    ``auto`` — derived from the registry so a newly registered builder
    is immediately accepted by both CLIs."""
    return ["auto"] + sorted(CSSG_METHODS)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atpg",
        description="Synchronous ATPG for asynchronous circuits (DAC'97).",
    )
    parser.add_argument(
        "circuit",
        nargs="?",
        help="bundled benchmark name or path to a .net netlist",
    )
    parser.add_argument("--list", action="store_true", help="list bundled benchmarks")
    parser.add_argument(
        "--style",
        default="complex",
        choices=["complex", "two-level"],
        help="synthesis back end for bundled STG benchmarks",
    )
    parser.add_argument(
        "--model",
        default="input",
        metavar="MODEL",
        help=(
            "fault model to run: one of "
            f"{', '.join(model_names())} (default: input). "
            "An unknown name exits 1 listing the registered models."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="random TPG seed")
    parser.add_argument("--k", type=int, default=None, help="test-cycle bound k")
    parser.add_argument(
        "--cssg-method",
        default="auto",
        choices=_cssg_method_choices(),
        help="CSSG construction method (symbolic = BDD image computation)",
    )
    parser.add_argument(
        "--no-random", action="store_true", help="skip the random TPG step"
    )
    parser.add_argument(
        "--faulty-semantics",
        default="exact",
        choices=["exact", "ternary"],
        help="faulty-machine semantics for the 3-phase generator",
    )
    parser.add_argument(
        "--collapse",
        action="store_true",
        help="structural fault collapsing before generation",
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="static test-set compaction after generation",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget for the run; on expiry the untried "
            "remainder is reported aborted (reason 'budget') and the "
            "partial result is still valid"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live one-line progress from the flow event stream (stderr)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write the flow's event stream as JSON lines to FILE",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "collect run metrics and write them to FILE on exit "
            "(Prometheus text format; JSON when FILE ends in .json)"
        ),
    )
    parser.add_argument(
        "--spans",
        default=None,
        metavar="FILE",
        help="trace the run's spans and write them as JSON lines to FILE",
    )
    parser.add_argument(
        "--self-profile",
        action="store_true",
        help=(
            "trace the run's spans and print the aggregated span table "
            "(calls, total/self seconds) to stderr"
        ),
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="FILE",
        help=(
            "run under cProfile, dump stats to FILE (.pstats) and print "
            "the top 20 functions by cumulative time to stderr"
        ),
    )
    parser.add_argument(
        "--show-tests", action="store_true", help="print every generated sequence"
    )
    parser.add_argument(
        "--show-undetected", action="store_true", help="print undetected faults"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the result as one JSON object instead of the summary",
    )
    return parser


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if "--campaign" in argv:  # alias: repro-atpg --campaign ... == repro-campaign ...
        return campaign_main([a for a in argv if a != "--campaign"])
    args = build_arg_parser().parse_args(argv)
    if args.list:
        for name in benchmark_names():
            print(name)
        return 0
    if not args.circuit:
        print("error: give a benchmark name or .net path (or --list)", file=sys.stderr)
        return 2
    try:
        from repro.faultmodels import get_model

        get_model(args.model)  # unknown fault model: exit 1 with the list
        path = Path(args.circuit)
        if args.circuit in benchmark_names():
            circuit = load_benchmark(args.circuit, style=args.style)
        elif path.exists():
            circuit = load_netlist(path)
        elif "/" in args.circuit or args.circuit.endswith(".net"):
            print(
                f"error: {args.circuit!r} is neither a bundled benchmark "
                "nor an existing file",
                file=sys.stderr,
            )
            return 2
        else:
            # A bare word that names neither a benchmark nor a file:
            # raise the ReproError that lists the available benchmarks.
            circuit = load_benchmark(args.circuit, style=args.style)
        options = AtpgOptions(
            fault_model=args.model,
            seed=args.seed,
            k=args.k,
            cssg_method=args.cssg_method,
            use_random_tpg=not args.no_random,
            faulty_semantics=args.faulty_semantics,
            collapse=args.collapse,
            compact=args.compact,
            deadline_seconds=args.deadline,
        )
        listeners = []
        progress = trace = None
        if args.progress:
            progress = ProgressLine(sys.stderr)
            listeners.append(progress)
        if args.trace:
            try:
                trace = TraceWriter(args.trace)
            except OSError as exc:
                print(f"error: cannot open trace file: {exc}", file=sys.stderr)
                return 1
            listeners.append(trace)
        tracer = None
        if args.spans or args.self_profile:
            from repro.obs import Tracer

            tracer = Tracer()
        if args.metrics:
            from repro.obs import MetricsRegistry, enable

            enable(MetricsRegistry())
        try:
            result = _run_observed(circuit, options, listeners, tracer, args)
        finally:
            if progress is not None:
                progress.close()
            if trace is not None:
                trace.close()
            if args.metrics:
                from repro.obs import disable

                disable()  # one-shot: don't leave the global switch armed
        if args.metrics:
            from repro.obs import get_registry, write_metrics

            write_metrics(args.metrics, get_registry())
        if tracer is not None:
            if args.spans:
                tracer.write_jsonl(args.spans)
            if args.self_profile:
                from repro.obs import format_profile

                print(format_profile(tracer.profile()), file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2))
        return 0
    print(result.summary())
    if args.show_tests:
        for i, test in enumerate(result.tests):
            patterns = " ".join(test.format_patterns(circuit)) or "(observe reset)"
            names = ", ".join(f.describe(circuit) for f in test.faults)
            print(f"  test {i} [{test.source}]: {patterns}  -> {names}")
    if args.show_undetected:
        for fault in result.undetected_faults():
            record = result.statuses[fault]
            label = record.status
            if record.reason:
                label += f": {record.reason}"
            print(f"  undetected [{label}]: {fault.describe(circuit)}")
    return 0


def _run_observed(circuit, options, listeners, tracer, args):
    """One flow run under whatever observability the flags selected:
    an explicit tracer scope (``--spans`` / ``--self-profile``) and/or
    a cProfile wrap (``--profile``, top-20 cumulative to stderr)."""
    from contextlib import nullcontext

    from repro.obs import use_tracer

    scope = use_tracer(tracer) if tracer is not None else nullcontext()
    with scope:
        if not args.profile:
            return Flow.default().run(circuit, options, listeners=listeners)
        import cProfile
        import pstats

        directory = os.path.dirname(os.path.abspath(args.profile))
        os.makedirs(directory, exist_ok=True)
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = Flow.default().run(circuit, options, listeners=listeners)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(20)
        return result


# ---------------------------------------------------------------------------
# repro-campaign
# ---------------------------------------------------------------------------


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description=(
            "Run an ATPG campaign: many (circuit, fault model, seed) jobs "
            "sharded across worker processes, with a content-addressed "
            "result cache so unchanged jobs are never recomputed."
        ),
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help=(
            "bundled benchmark names and/or .net paths "
            "(default: the paper's Table 1 corpus)"
        ),
    )
    parser.add_argument(
        "--table2",
        action="store_true",
        help="default to the Table 2 subset with the two-level back end",
    )
    parser.add_argument(
        "--style",
        default=None,
        choices=["complex", "two-level"],
        help="synthesis back end (default: complex, or two-level with --table2)",
    )
    parser.add_argument(
        "--models",
        default="output,input",
        help=(
            "comma list of fault models to run, each a registered model "
            f"({', '.join(model_names())}); default: output,input"
        ),
    )
    parser.add_argument(
        "--seeds", default="0", help="comma list of random-TPG seeds (default: 0)"
    )
    parser.add_argument("--k", type=int, default=None, help="test-cycle bound k")
    parser.add_argument(
        "--cssg-method",
        default="auto",
        help=(
            "comma list of CSSG construction methods to cross as a "
            "campaign axis (auto/exact/ternary/hybrid/symbolic; "
            "default: auto)"
        ),
    )
    parser.add_argument(
        "--random-walks", type=int, default=None, help="random TPG walk count"
    )
    parser.add_argument(
        "--walk-len", type=int, default=None, help="random TPG walk length"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = in-process; default: CPU count)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds (default: 600)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        help=(
            "kill a worker silent (no flow heartbeat) this long; "
            "slow-but-alive jobs still get the full --timeout "
            "(default: disabled)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results but still store fresh ones",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "resolve cache misses through the per-cohort incremental "
            "layer: fault cohorts whose cones of influence are unchanged "
            "replay from cached partials, only stale ones re-run "
            "(needs the cache; see docs/incremental.md)"
        ),
    )
    parser.add_argument(
        "--out", default=None, help="write table.txt / campaign.csv / campaign.json here"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the campaign manifest as JSON instead of the table",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress on stderr"
    )
    parser.add_argument(
        "--dashboard",
        action="store_true",
        help=(
            "live campaign dashboard on stderr (jobs done/running/hung, "
            "classification rates, cache hit ratio); also collects "
            "campaign-wide telemetry from the workers"
        ),
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help=(
            "collect campaign-wide telemetry and write the merged "
            "metrics to FILE on exit (Prometheus text; JSON for .json)"
        ),
    )
    return parser


def campaign_main(argv=None) -> int:
    from repro.benchmarks_data import TABLE1_NAMES, TABLE2_NAMES
    from repro.campaign import (
        CampaignSpec,
        ResultStore,
        campaign_manifest,
        expand,
        rows_from_outcomes,
        run_campaign,
        write_artifacts,
    )
    from repro.campaign.runner import DEFAULT_JOB_TIMEOUT
    from repro.core.report import format_table

    args = build_campaign_parser().parse_args(argv)
    names = list(args.benchmarks) or list(
        TABLE2_NAMES if args.table2 else TABLE1_NAMES
    )
    style = args.style or ("two-level" if args.table2 else "complex")
    methods = tuple(
        m.strip() for m in args.cssg_method.split(",") if m.strip()
    ) or ("auto",)
    known = set(_cssg_method_choices())
    unknown = sorted(set(methods) - known)
    if unknown:
        print(
            f"error: unknown --cssg-method value(s) {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(known))})",
            file=sys.stderr,
        )
        return 2
    option_fields = {}
    if args.random_walks is not None:
        option_fields["random_walks"] = args.random_walks
    if args.walk_len is not None:
        option_fields["walk_len"] = args.walk_len
    try:
        spec = CampaignSpec(
            benchmarks=names,
            styles=(style,),
            fault_models=tuple(m.strip() for m in args.models.split(",") if m.strip()),
            seeds=tuple(int(s) for s in args.seeds.split(",") if s.strip()),
            ks=(args.k,),
            cssg_methods=methods,
            options=AtpgOptions(**option_fields),
        )
        jobs = expand(spec)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.incremental and args.no_cache:
        print(
            "error: --incremental needs the cache; "
            "drop --no-cache or --incremental",
            file=sys.stderr,
        )
        return 2
    store = None if args.no_cache else ResultStore(args.cache_dir)

    def progress(outcome, done, total):
        if args.quiet:
            return
        line = f"[{done}/{total}] {outcome.job.name}: {outcome.status}"
        if outcome.executed:
            line += f" ({outcome.seconds:.2f}s)"
        if outcome.error:
            line += f" — {outcome.error}"
        print(line, file=sys.stderr)

    title = "Table-2 campaign" if args.table2 else "Campaign"
    collect_telemetry = args.dashboard or bool(args.metrics)
    dashboard = None
    if args.dashboard:
        from repro.obs import CampaignDashboard, MetricsRegistry, enable

        enable(MetricsRegistry())
        dashboard = CampaignDashboard(total_jobs=len(jobs))
    elif args.metrics:
        from repro.obs import MetricsRegistry, enable

        enable(MetricsRegistry())
    try:
        report = run_campaign(
            jobs,
            workers=args.workers,
            store=store,
            timeout=args.timeout if args.timeout is not None else DEFAULT_JOB_TIMEOUT,
            # The dashboard owns the stderr frame; per-job progress
            # lines would tear it.
            progress=None if args.dashboard else progress,
            refresh=args.refresh,
            hang_timeout=args.hang_timeout,
            collect_telemetry=collect_telemetry,
            dashboard=dashboard,
            incremental=args.incremental,
        )
    finally:
        if dashboard is not None:
            dashboard.close()
        if collect_telemetry:
            from repro.obs import disable

            disable()  # one-shot: don't leave the global switch armed
    if args.metrics:
        from repro.obs import get_registry, write_metrics

        write_metrics(args.metrics, get_registry())
    if args.out:
        write_artifacts(args.out, report, spec, title=title)
    if args.json:
        print(json.dumps(campaign_manifest(spec, report, title=title), indent=2))
    else:
        print(format_table(rows_from_outcomes(report.outcomes), title=title))
    print(report.summary(), file=sys.stderr)
    if args.incremental:
        inc = [o.incremental for o in report.outcomes if o.incremental]
        if inc:
            print(
                "incremental: "
                f"{sum(d.get('cohorts_reused', 0) for d in inc)} cohorts "
                f"reused, {sum(d.get('cohorts_executed', 0) for d in inc)} "
                f"executed of {sum(d.get('cohorts_total', 0) for d in inc)}",
                file=sys.stderr,
            )
    for outcome in report.outcomes:
        if not outcome.ok:
            print(
                f"error: {outcome.job.name}: {outcome.status} {outcome.error}",
                file=sys.stderr,
            )
    return 0 if report.all_ok else 1


# ---------------------------------------------------------------------------
# repro-fuzz
# ---------------------------------------------------------------------------


def build_fuzz_parser() -> argparse.ArgumentParser:
    from repro.fuzz import oracle_names

    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Differential-oracle fuzzing: generate seeded STG/netlist "
            "scenarios, run each through paired implementations (engine "
            "vs legacy settle, explicit vs symbolic CSSG, overlay vs "
            "materialized faults, walk vs slab kernels, plain vs "
            "incremental re-ATPG) and auto-shrink any divergence to a "
            "minimal failing spec.  Runs as a campaign: seed chunks are "
            "jobs on the fork workers with the shared result cache."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first scenario seed (default: 0)"
    )
    parser.add_argument(
        "-n",
        "--scenarios",
        type=int,
        default=200,
        help="number of consecutive seeds to fuzz (default: 200)",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=25,
        help="seeds per campaign job (default: 25)",
    )
    parser.add_argument(
        "--oracles",
        default=None,
        help=(
            "comma list of oracle pairs to run "
            f"({', '.join(oracle_names())}); default: all"
        ),
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without auto-shrinking them",
    )
    parser.add_argument(
        "--max-signals",
        type=int,
        default=None,
        help="ring signals per scenario upper bound (generator axis)",
    )
    parser.add_argument(
        "--max-total-signals",
        type=int,
        default=None,
        help="hard cap on total signals incl. decorations (latency dial)",
    )
    parser.add_argument(
        "--netlist-fraction",
        type=float,
        default=None,
        help="fraction of seeds that generate raw netlists instead of STGs",
    )
    parser.add_argument(
        "--choice-density",
        type=float,
        default=None,
        help="probability of decorating an STG with an input choice",
    )
    parser.add_argument(
        "--concurrency",
        type=float,
        default=None,
        help="probability of decorating an STG with a parallel fork",
    )
    parser.add_argument(
        "--mirror-density",
        type=float,
        default=None,
        help="probability of duplicating an input edge as label/1, label/2",
    )
    parser.add_argument(
        "--max-faults",
        type=int,
        default=None,
        help="faults sampled per model in the oracle battery",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = in-process; default: CPU count)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-chunk timeout in seconds (default: 600)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        help="kill a worker silent (no heartbeat) this long (default: off)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached chunk results but still store fresh ones",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "directory for fuzz_report.json plus one shrunk .g/.net file "
            "per divergent seed (the nightly-job artifact)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the aggregate report as JSON instead of the summary",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-chunk progress on stderr"
    )
    return parser


def fuzz_main(argv=None) -> int:
    from dataclasses import replace

    from repro.campaign import ResultStore, run_campaign
    from repro.campaign.runner import DEFAULT_JOB_TIMEOUT
    from repro.fuzz import (
        FuzzSpec,
        GeneratorConfig,
        OracleCaps,
        aggregate_reports,
        expand_fuzz,
        oracle_names,
    )

    args = build_fuzz_parser().parse_args(argv)
    oracles: tuple = ()
    if args.oracles:
        oracles = tuple(o.strip() for o in args.oracles.split(",") if o.strip())
        unknown = sorted(set(oracles) - set(oracle_names()))
        if unknown:
            print(
                f"error: unknown --oracles value(s) {', '.join(unknown)} "
                f"(choose from {', '.join(oracle_names())})",
                file=sys.stderr,
            )
            return 2
    config = GeneratorConfig()
    config_fields = {}
    for flag, field in (
        ("max_signals", "max_signals"),
        ("max_total_signals", "max_total_signals"),
        ("netlist_fraction", "netlist_fraction"),
        ("choice_density", "choice_density"),
        ("concurrency", "concurrency"),
        ("mirror_density", "mirror_density"),
    ):
        value = getattr(args, flag)
        if value is not None:
            config_fields[field] = value
    if config_fields:
        config = replace(config, **config_fields)
    caps = OracleCaps()
    if args.max_faults is not None:
        caps = replace(caps, max_faults=args.max_faults)
    try:
        spec = FuzzSpec(
            start=args.seed,
            stop=args.seed + args.scenarios,
            chunk=args.chunk,
            oracles=oracles,
            config=config,
            caps=caps,
            shrink=not args.no_shrink,
        )
        jobs = expand_fuzz(spec)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None if args.no_cache else ResultStore(args.cache_dir)

    def progress(outcome, done, total):
        if args.quiet:
            return
        line = f"[{done}/{total}] {outcome.job.name}: {outcome.status}"
        if outcome.executed:
            line += f" ({outcome.seconds:.2f}s)"
        if outcome.error:
            line += f" — {outcome.error}"
        print(line, file=sys.stderr)

    report = run_campaign(
        jobs,
        workers=args.workers,
        store=store,
        timeout=args.timeout if args.timeout is not None else DEFAULT_JOB_TIMEOUT,
        progress=progress,
        refresh=args.refresh,
        hang_timeout=args.hang_timeout,
    )
    payloads = [o.payload for o in report.outcomes if o.payload is not None]
    aggregate = aggregate_reports(payloads)
    if args.out:
        _write_fuzz_artifacts(args.out, spec, report, aggregate)
    if args.json:
        print(json.dumps(aggregate, indent=2))
    else:
        checks = ", ".join(
            f"{oracle}={n}" for oracle, n in aggregate["checks"].items()
        )
        print(
            f"fuzzed {aggregate['n_scenarios']} scenarios "
            f"(seeds {spec.start}..{spec.stop}), "
            f"{aggregate['n_divergent']} divergent, "
            f"{aggregate['n_unproductive']} unproductive"
        )
        if checks:
            print(f"checks: {checks}")
        for d in aggregate["divergences"]:
            print(
                f"DIVERGENCE seed={d['seed']} oracle={d['oracle']}: {d['detail']}"
            )
    print(report.summary(), file=sys.stderr)
    for outcome in report.outcomes:
        if not outcome.ok:
            print(
                f"error: {outcome.job.name}: {outcome.status} {outcome.error}",
                file=sys.stderr,
            )
    # The CI smoke gate is this exit code: 0 means every chunk ran
    # (or replayed) cleanly AND no oracle pair disagreed on any seed.
    return 0 if report.all_ok and aggregate["n_divergent"] == 0 else 1


def _write_fuzz_artifacts(out_dir, spec, report, aggregate) -> None:
    """``fuzz_report.json`` plus one shrunk spec file per divergence —
    what the nightly CI job uploads for offline replay."""
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    doc = {
        "spec": {
            "start": spec.start,
            "stop": spec.stop,
            "chunk": spec.chunk,
            "oracles": list(spec.oracles),
            "config": spec.config.to_json_dict(),
            "caps": spec.caps.to_json_dict(),
            "shrink": spec.shrink,
        },
        "summary": report.summary(),
        "aggregate": aggregate,
    }
    (path / "fuzz_report.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8"
    )
    seen = set()
    for d in aggregate["divergences"]:
        seed = d["seed"]
        if seed in seen:
            continue  # one artifact per seed, first oracle wins
        seen.add(seed)
        ext = "g" if d["kind"] == "stg" else "net"
        text = d["shrunk_text"] or d["spec_text"]
        (path / f"divergent-seed{seed}.{ext}").write_text(
            text, encoding="utf-8"
        )


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description=(
            "Maintain the shared content-addressed result cache used by "
            "repro-campaign and repro-serve."
        ),
    )
    parser.add_argument(
        "command", choices=["list", "stats", "prune", "clear"],
        help="what to do",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--max-age-days", type=float, default=None,
        help="prune: evict entries older than this many days",
    )
    parser.add_argument(
        "--max-size-mb", type=float, default=None,
        help="prune: evict oldest entries until the store fits this size",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="prune/clear: report what would be removed, remove nothing",
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    return parser


def cache_main(argv=None) -> int:
    """``repro-cache``: list / stats / prune / clear the result store."""
    from repro.campaign.store import ResultStore

    args = build_cache_parser().parse_args(argv)
    store = ResultStore(args.cache_dir)

    if args.command == "list":
        entries = store.entries()
        if args.json:
            print(json.dumps(
                [
                    {"key": key, "bytes": size, "mtime": mtime}
                    for key, _path, size, mtime in entries
                ],
                indent=2,
            ))
        else:
            for key, _path, size, mtime in entries:
                print(f"{key}  {size:>9d} B  mtime={mtime:.0f}")
            print(f"{len(entries)} entries in {store.root}", file=sys.stderr)
        return 0

    if args.command == "stats":
        doc = store.stats()
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(f"root:        {doc['root']}")
            print(f"entries:     {doc['n_entries']}")
            print(f"total bytes: {doc['total_bytes']}")
            lookups = doc["lookups"]
            rate = lookups["hit_rate"]
            print(
                f"lookups:     {lookups['hits']} hits / "
                f"{lookups['misses']} misses"
                + (f" ({rate:.1%} hit rate)" if rate is not None else "")
            )
            for entry_class, shape in doc["classes"].items():
                counts = shape["lookups"]
                class_rate = counts["hit_rate"]
                print(
                    f"  {entry_class:<8} {shape['n_entries']:>6} entries  "
                    f"{shape['total_bytes']:>10} B  "
                    f"{counts['hits']} hits / {counts['misses']} misses"
                    + (
                        f" ({class_rate:.1%})"
                        if class_rate is not None
                        else ""
                    )
                )
        return 0

    if args.command == "clear":
        n = len(store) if args.dry_run else store.clear()
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {n} entries from {store.root}")
        return 0

    # prune
    if args.max_age_days is None and args.max_size_mb is None:
        print(
            "error: prune needs --max-age-days and/or --max-size-mb",
            file=sys.stderr,
        )
        return 2
    max_age = (
        args.max_age_days * 86400.0 if args.max_age_days is not None else None
    )
    max_bytes = (
        int(args.max_size_mb * 1024 * 1024)
        if args.max_size_mb is not None
        else None
    )
    if args.dry_run:
        plan = store.prune_plan(
            max_age_seconds=max_age, max_total_bytes=max_bytes
        )
        if args.json:
            print(json.dumps(plan, indent=2))
            return 0
        for entry_class in ("results", "cohorts", "cssg"):
            row = plan[entry_class]
            label = (
                "full results" if entry_class == "results" else
                "cohort partials" if entry_class == "cohorts" else
                "cssg graphs"
            )
            print(
                f"  {label:<16} {row['n_entries']:>6} entries, "
                f"{row['bytes']} bytes"
            )
        total = plan["total"]
        print(
            f"would remove {total['n_entries']} entries, "
            f"freeing {total['bytes']} bytes"
        )
        return 0
    n, freed = store.prune(max_age_seconds=max_age, max_total_bytes=max_bytes)
    print(f"removed {n} entries, freed {freed} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
