"""Per-fault-cohort content hashing: the incremental re-ATPG layer.

The whole-job cache (:mod:`repro.campaign.plan`) keys a result on the
netlist *file* — edit one gate and the key changes, so the entire fault
universe re-runs.  This module refines that to fault granularity:

* Every fault gets a **cone of influence** — the forward (fanout)
  closure of its injection signals, i.e. the sub-netlist through which
  a fault effect can propagate to an observation point.
* Faults with identical cones form a **cohort**.  A cohort's content
  key hashes the *canonicalized cone sub-netlist* (signal names, gate
  expressions, output membership, reset bits — sorted by name so
  out-of-cone index shifts don't matter) plus a salt covering the
  fault-model/options signature, the stage list, the I/O interface and
  the code/schema versions.
* A run stores one **partial payload** per cohort: the cohort's fault
  verdicts and the slices of the test set that cover them.  On a rerun
  after an edit, only cohorts whose cones contain the edited logic get
  new keys; everything else is replayed from cache
  (:class:`repro.flow.stages.ReplayStage`) and only the stale faults
  reach the generating stages.
* The CSSG itself is cached under a **name-free structural
  fingerprint** (gate programs over signal indices), so renames and
  logic-preserving rewrites reuse the state graph outright.

Merging the cached partials back into a full result payload
(:func:`merge_payload`) reproduces :meth:`AtpgResult.to_json_dict`
exactly (modulo ``cpu_seconds``) when all partials come from one run —
the identity the golden tests pin on every bundled benchmark.

Cone replay is an approximation for *logic-changing* edits: the CSSG
is a global object, so an out-of-cone edit can alter reachable stable
states and invalidate a cached test sequence.  ``--refresh`` restores
full-fidelity results; docs/incremental.md spells out the contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.core.atpg import RESULT_SCHEMA_VERSION, AtpgOptions
from repro.errors import ReproError
from repro.flow import DEFAULT_STAGE_NAMES
from repro.flow.stages import ReplayPlan, ReplayedStatus, ReplayTest
from repro.sgraph.cssg import Cssg, CssgStats

__all__ = [
    "COHORT_SCHEMA_VERSION",
    "CSSG_CACHE_SCHEMA_VERSION",
    "Cohort",
    "IncrementalStats",
    "build_replay_plan",
    "cohort_key",
    "cohort_salt",
    "cone_doc",
    "cone_of",
    "cssg_fingerprint",
    "cssg_from_doc",
    "cssg_to_doc",
    "extract_partials",
    "merge_payload",
    "partition",
    "validate_partial",
]

#: Bump when the partial-payload layout or the cone canonicalization
#: changes; it salts every cohort key, so old partials simply miss.
COHORT_SCHEMA_VERSION = 1

#: Same role for serialized CSSGs under their structural fingerprint.
CSSG_CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Cohort:
    """Faults sharing one cone of influence, plus their content key.

    ``faults`` keeps fault-universe order; ``cone`` is the sorted
    signal-index set of the shared cone.
    """

    key: str
    cone: Tuple[int, ...]
    faults: Tuple[Fault, ...]


@dataclass
class IncrementalStats:
    """What an incremental execution reused vs re-ran (obs counters
    ``repro_incremental_cohorts_total{outcome=...}`` mirror these)."""

    cohorts_total: int = 0
    cohorts_reused: int = 0
    cohorts_executed: int = 0
    faults_reused: int = 0
    faults_executed: int = 0
    cssg_reused: bool = False

    def to_json_dict(self) -> Dict:
        return asdict(self)


# -- cones and cohort keys ---------------------------------------------


def cone_of(circuit: Circuit, fault: Fault) -> frozenset:
    """The fault's structural cone of influence: the forward (fanout)
    closure of its injection signals.

    Every signal a fault effect can reach is in the cone, so any edit
    that could change how this fault propagates to an observation
    point changes the cone's content hash.  Side inputs of in-cone
    gates participate *by name* through the gate expressions in
    :func:`cone_doc` — renaming one invalidates the cohort — while
    edits to logic strictly upstream of a side input do not (the
    documented approximation; see docs/incremental.md).
    """
    fan = circuit.fanouts()
    seen = {fault.gate, fault.site}
    stack = list(seen)
    while stack:
        sig = stack.pop()
        for pos in fan[sig]:
            out = circuit.gates[pos].index
            if out not in seen:
                seen.add(out)
                stack.append(out)
    return frozenset(seen)


def cone_doc(circuit: Circuit, cone: Sequence[int]) -> List[List]:
    """Canonical JSON form of the cone sub-netlist.

    One row per in-cone signal, sorted by *name* (not index, so edits
    elsewhere in the file don't shift the doc): the signal name, its
    kind (``"input"`` / library gate type / ``""``), the driving
    expression's text, output membership, and the signal's reset bit.
    """
    reset = circuit.reset_state or 0
    rows = []
    for idx in sorted(cone, key=circuit.signal_name):
        sig = circuit.signals[idx]
        gate = circuit.gate_at(idx)
        if gate is None:
            kind, expr = "input", ""
        else:
            kind, expr = gate.gtype or "", str(gate.expr)
        rows.append(
            [sig.name, kind, expr, int(sig.is_output), (reset >> idx) & 1]
        )
    return rows


def cohort_salt(
    circuit: Circuit,
    style: str,
    options: AtpgOptions,
    stages: Sequence[str] = DEFAULT_STAGE_NAMES,
) -> str:
    """The non-structural half of every cohort key: anything that
    invalidates *all* cohorts at once (option or fault-model change,
    stage-list change, interface change, code/schema bumps)."""
    doc = {
        "cohort_schema": COHORT_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "code_version": _code_version(),
        "style": style,
        "options": options.to_json_dict(),
        "stages": list(stages),
        "inputs": list(circuit.input_names),
        "outputs": list(circuit.output_names),
        "k": options.k if options.k is not None else circuit.k,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def cohort_key(salt: str, circuit: Circuit, cone: Sequence[int]) -> str:
    """SHA-256 content key of one cohort: salt + canonical cone doc."""
    blob = salt + "\n" + json.dumps(
        cone_doc(circuit, cone), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def partition(
    circuit: Circuit, faults: Sequence[Fault], salt: str
) -> List[Cohort]:
    """Group the fault universe into cohorts by cone identity.

    Cohorts come back ordered by their first fault's universe position,
    and each cohort's fault tuple keeps universe order — so a merge
    over all cohorts reconstructs the universe exactly.
    """
    grouped: Dict[frozenset, List[Fault]] = {}
    order: List[frozenset] = []
    for fault in faults:
        cone = cone_of(circuit, fault)
        if cone not in grouped:
            grouped[cone] = []
            order.append(cone)
        grouped[cone].append(fault)
    return [
        Cohort(
            key=cohort_key(salt, circuit, cone),
            cone=tuple(sorted(cone)),
            faults=tuple(grouped[cone]),
        )
        for cone in order
    ]


def _code_version() -> str:
    from repro.campaign.plan import CODE_VERSION

    return CODE_VERSION


# -- fault (de)serialization -------------------------------------------
#
# Partials name faults by *signal name*, not index, so a cached cohort
# survives edits that renumber out-of-cone signals.  Resolution failure
# (unknown name, kind mismatch) just means a cache miss.


def _fault_names(circuit: Circuit, fault: Fault) -> List:
    return [
        fault.kind,
        circuit.signal_name(fault.gate),
        circuit.signal_name(fault.site),
        fault.value,
    ]


def validate_partial(
    circuit: Circuit, cohort: Cohort, doc: object
) -> bool:
    """Whether a cached partial payload is usable for ``cohort``: right
    schema, and its named fault list resolves to exactly the cohort's
    faults (order included)."""
    if not isinstance(doc, dict):
        return False
    if doc.get("version") != COHORT_SCHEMA_VERSION:
        return False
    named = doc.get("faults")
    statuses = doc.get("statuses")
    if not isinstance(named, list) or not isinstance(statuses, list):
        return False
    if len(named) != len(cohort.faults) or len(statuses) != len(cohort.faults):
        return False
    expected = [_fault_names(circuit, f) for f in cohort.faults]
    return [list(row) for row in named] == expected


# -- partial extraction ------------------------------------------------


def extract_partials(
    circuit: Circuit,
    payload: Dict,
    cohorts: Sequence[Cohort],
    run_key: str,
) -> Dict[str, Dict]:
    """Slice a full result payload into one partial doc per cohort.

    Each partial records, in cohort-fault order, the verdict docs
    (``test`` pointing at the *producing run's* final test index) and
    the tests that cover any cohort fault — with ``at`` pairs
    ``[position-in-test, cohort-fault-index]`` so a later merge can
    rebuild every test's fault list position-exactly.
    """
    locate: Dict[Tuple, Tuple[int, int]] = {}
    for ci, cohort in enumerate(cohorts):
        for mi, fault in enumerate(cohort.faults):
            locate[tuple(fault.to_json())] = (ci, mi)

    docs = [
        {
            "version": COHORT_SCHEMA_VERSION,
            "run": run_key,
            "faults": [_fault_names(circuit, f) for f in cohort.faults],
            "statuses": [],
            "tests": [],
            "cssg": dict(payload["cssg"]),
        }
        for cohort in cohorts
    ]
    for fault_json, status in zip(payload["faults"], payload["statuses"]):
        ci, _ = locate[tuple(fault_json)]
        docs[ci]["statuses"].append(
            {
                "status": status["status"],
                "phase": status["phase"],
                "reason": status["reason"],
                "test": status["test_index"],
            }
        )
    for t_idx, test in enumerate(payload["tests"]):
        per_cohort: Dict[int, List[List[int]]] = {}
        for pos, fault_json in enumerate(test["faults"]):
            ci, mi = locate[tuple(fault_json)]
            per_cohort.setdefault(ci, []).append([pos, mi])
        for ci, at in per_cohort.items():
            docs[ci]["tests"].append(
                {
                    "index": t_idx,
                    "patterns": list(test["patterns"]),
                    "source": test["source"],
                    "at": at,
                }
            )
    return {cohort.key: doc for cohort, doc in zip(cohorts, docs)}


# -- merge and replay --------------------------------------------------


def _test_groups(
    cohorts: Sequence[Cohort], docs: Sequence[Dict]
) -> List[Tuple[Tuple[str, int], Dict]]:
    """Union the partials' test slices, grouped by the producing run's
    ``(run key, test index)`` and ordered by it — deterministic, and
    equal to original test order when every partial is from one run."""
    groups: Dict[Tuple[str, int], Dict] = {}
    for cohort, doc in zip(cohorts, docs):
        for test in doc["tests"]:
            gk = (str(doc["run"]), int(test["index"]))
            patterns = [int(p) for p in test["patterns"]]
            group = groups.get(gk)
            if group is None:
                group = groups[gk] = {
                    "patterns": patterns,
                    "source": str(test["source"]),
                    "members": {},
                }
            elif (
                group["patterns"] != patterns
                or group["source"] != test["source"]
            ):
                raise ReproError(
                    "cohort partials disagree on shared test "
                    f"{gk[1]} of run {gk[0][:12]}"
                )
            for pos, mi in test["at"]:
                group["members"][int(pos)] = cohort.faults[int(mi)]
    return [(gk, groups[gk]) for gk in sorted(groups)]


def build_replay_plan(
    cohorts: Sequence[Cohort], docs: Sequence[Dict]
) -> ReplayPlan:
    """Turn cached partials into a :class:`ReplayPlan` for the flow's
    :class:`~repro.flow.stages.ReplayStage`."""
    ordered = _test_groups(cohorts, docs)
    ref_of = {gk: i for i, (gk, _) in enumerate(ordered)}
    tests = tuple(
        ReplayTest(
            patterns=tuple(group["patterns"]),
            source=group["source"],
            members=tuple(sorted(group["members"].items())),
        )
        for _, group in ordered
    )
    statuses = []
    for cohort, doc in zip(cohorts, docs):
        for fault, status in zip(cohort.faults, doc["statuses"]):
            test = status["test"]
            statuses.append(
                ReplayedStatus(
                    fault=fault,
                    status=str(status["status"]),
                    phase=str(status["phase"]),
                    reason=str(status["reason"]),
                    test_ref=(
                        None
                        if test is None
                        else ref_of[(str(doc["run"]), int(test))]
                    ),
                )
            )
    return ReplayPlan(tests=tests, statuses=tuple(statuses))


def merge_payload(
    circuit: Circuit,
    options: AtpgOptions,
    universe: Sequence[Fault],
    cohorts: Sequence[Cohort],
    docs: Sequence[Dict],
    cpu_seconds: float,
) -> Dict:
    """Reassemble a full result payload from per-cohort partials.

    When every partial comes from one producing run, the output is
    byte-identical to that run's :meth:`AtpgResult.to_json_dict`
    except for ``cpu_seconds`` (and the absent telemetry block) — the
    invariant ``tests/test_incremental.py`` pins against the golden
    digests on every Table-1 benchmark.
    """
    ordered = _test_groups(cohorts, docs)
    index_of = {gk: i for i, (gk, _) in enumerate(ordered)}
    tests_json = [
        {
            "patterns": group["patterns"],
            "faults": [
                fault.to_json()
                for _, fault in sorted(group["members"].items())
            ],
            "source": group["source"],
        }
        for _, group in ordered
    ]
    verdict_of: Dict[Fault, Tuple[Dict, str]] = {}
    for cohort, doc in zip(cohorts, docs):
        for fault, status in zip(cohort.faults, doc["statuses"]):
            verdict_of[fault] = (status, str(doc["run"]))

    statuses_json = []
    phases = {"rnd": 0, "3-ph": 0, "sim": 0}
    by_status = {"undetectable": 0, "aborted": 0}
    for fault in universe:
        status, run = verdict_of[fault]
        test = status["test"]
        statuses_json.append(
            {
                "fault": fault.to_json(),
                "status": status["status"],
                "phase": status["phase"],
                "test_index": (
                    None if test is None else index_of[(run, int(test))]
                ),
                "reason": status["reason"],
            }
        )
        if status["phase"] in phases:
            phases[status["phase"]] += 1
        if status["status"] in by_status:
            by_status[status["status"]] += 1

    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "circuit": {
            "name": circuit.name,
            "n_inputs": circuit.n_inputs,
            "n_signals": circuit.n_signals,
        },
        "options": options.to_json_dict(),
        "cssg": dict(docs[0]["cssg"]),
        "faults": [fault.to_json() for fault in universe],
        "statuses": statuses_json,
        "tests": tests_json,
        "cpu_seconds": cpu_seconds,
        "n_total": len(universe),
        "n_covered": phases["rnd"] + phases["3-ph"] + phases["sim"],
        "n_random": phases["rnd"],
        "n_three_phase": phases["3-ph"],
        "n_fault_sim": phases["sim"],
        "n_undetectable": by_status["undetectable"],
        "n_aborted": by_status["aborted"],
    }


# -- CSSG structural cache ---------------------------------------------


def cssg_fingerprint(
    circuit: Circuit,
    k: Optional[int],
    max_input_changes: Optional[int],
    method: str,
) -> str:
    """Name-free structural fingerprint of a CSSG construction.

    The state graph is a function of the gate *logic* (compiled truth
    programs over signal indices), the reset state, ``k``, the
    input-change limit and the resolved method — never of signal
    names.  Renames and logic-preserving rewrites therefore reuse the
    cached graph; any real logic edit changes a program and misses.
    """
    doc = {
        "schema": CSSG_CACHE_SCHEMA_VERSION,
        "code_version": _code_version(),
        "n_inputs": circuit.n_inputs,
        "n_signals": circuit.n_signals,
        "reset": circuit.reset_state,
        "k": k if k is not None else circuit.k,
        "max_input_changes": max_input_changes,
        "method": method,
        "gates": [
            [gate.index, list(gate.support), [list(row) for row in gate.program]]
            for gate in circuit.gates
        ],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cssg_to_doc(cssg: Cssg) -> Dict:
    """Serialize a CSSG for the structural cache (states, edges, and
    the stats block the result payload's ``cssg`` summary reads)."""
    stats = asdict(cssg.stats)
    return {
        "version": CSSG_CACHE_SCHEMA_VERSION,
        "k": cssg.k,
        "reset": cssg.reset,
        "states": sorted(cssg.states),
        "edges": [
            [s, sorted([p, t] for p, t in cssg.edges[s].items())]
            for s in sorted(cssg.edges)
        ],
        "stats": stats,
    }


def cssg_from_doc(circuit: Circuit, doc: object) -> Optional[Cssg]:
    """Rebuild a cached CSSG against ``circuit``; None if unusable."""
    if not isinstance(doc, dict) or doc.get("version") != CSSG_CACHE_SCHEMA_VERSION:
        return None
    try:
        stats = CssgStats(**doc["stats"])
        return Cssg(
            circuit=circuit,
            k=int(doc["k"]),
            reset=int(doc["reset"]),
            states={int(s) for s in doc["states"]},
            edges={
                int(s): {int(p): int(t) for p, t in out}
                for s, out in doc["edges"]
            },
            stats=stats,
        )
    except (KeyError, TypeError, ValueError):
        return None
