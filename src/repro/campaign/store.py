"""Content-addressed on-disk result cache.

Each entry is one job's serialized :class:`~repro.core.atpg.AtpgResult`
JSON, filed under its content hash::

    <root>/results/<key[:2]>/<key>.json

The key already encodes the netlist bytes, options, code version, and
result schema version (see :mod:`repro.campaign.plan`), so invalidation
is automatic: any change produces a different key, and stale entries are
simply never addressed again.  Writes are atomic (temp file +
``os.replace``) so concurrent campaigns sharing a cache directory can
only ever observe complete entries; corrupt or foreign files read as
cache misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.obs import metrics as _obs


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``$XDG_CACHE_HOME/repro``, or
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultStore:
    """A content-addressed JSON store under one cache directory."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._results = self.root / "results"

    def path_for(self, key: str) -> Path:
        return self._results / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (missing or unreadable)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            payload = None
        if _obs.enabled():
            # Keys embed the result schema version, so a raw store hit
            # is a semantic cache hit: nothing stale ever gets a hit.
            _obs.get_registry().counter(
                "repro_campaign_cache_requests_total",
                "Result-store lookups, by outcome.",
                ("outcome",),
            ).labels("miss" if payload is None else "hit").inc()
        return payload

    def put(self, key: str, payload: Dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def iter_keys(self) -> Iterator[str]:
        if not self._results.exists():
            return
        for path in sorted(self._results.glob("*/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        n = 0
        for key in list(self.iter_keys()):
            n += self.delete(key)
        return n

    def __repr__(self):
        return f"ResultStore({str(self.root)!r})"
