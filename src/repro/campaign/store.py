"""Content-addressed on-disk result cache.

The store files three entry classes under one cache directory, each a
JSON document keyed by content hash::

    <root>/results/<key[:2]>/<key>.json   whole-job AtpgResult payloads
    <root>/cohorts/<key[:2]>/<key>.json   per-cohort partial payloads
    <root>/cssg/<key[:2]>/<key>.json      CSSGs by structural fingerprint

Keys already encode everything the entry depends on (netlist bytes or
cone sub-netlist, options, code version, schema versions — see
:mod:`repro.campaign.plan` and :mod:`repro.campaign.cohort`), so
invalidation is automatic: any change produces a different key, and
stale entries are simply never addressed again.  Writes are atomic
(temp file + ``fsync`` + ``os.replace``) so concurrent campaigns — or
the ``repro-serve`` daemon's parallel workers — sharing a cache
directory can only ever observe complete entries; when several writers
race on the same key the last replace wins and every reader sees one
complete payload or a miss, never a torn file.  Corrupt or foreign
files read as cache misses.

The store is also a maintainable artifact: :meth:`ResultStore.entries`
/ :meth:`~ResultStore.prune` / :meth:`~ResultStore.prune_plan` /
:meth:`~ResultStore.stats` back the ``repro-cache`` CLI (list, age- and
size-bounded pruning with a per-class dry-run, hit statistics), and
``track_stats=True`` appends one ``<class->hit|miss <key>`` line per
lookup to ``<root>/stats.log`` (O_APPEND, crash-safe) so long-lived
services can report hit rates across restarts.  The log is bounded:
past :data:`STATS_LOG_MAX_BYTES` it is compacted into a single
``summary`` line carrying the same tallies (atomic replace; a racing
appender can at worst lose its own line, never corrupt the counts).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs import metrics as _obs

#: Entry classes, in reporting order.
ENTRY_CLASSES = ("results", "cohorts", "cssg")

#: Compact ``stats.log`` once it grows past this many bytes.
STATS_LOG_MAX_BYTES = 256 * 1024

#: (log line prefix, obs counter name) per entry class.
_CLASS_META = {
    "results": ("", "repro_campaign_cache_requests_total"),
    "cohorts": ("cohort-", "repro_campaign_cohort_requests_total"),
    "cssg": ("cssg-", "repro_campaign_cssg_requests_total"),
}


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``$XDG_CACHE_HOME/repro``, or
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultStore:
    """A content-addressed JSON store under one cache directory."""

    def __init__(
        self, root: Union[str, Path, None] = None, track_stats: bool = False
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._results = self.root / "results"
        self._stats_log = self.root / "stats.log" if track_stats else None

    def _class_dir(self, entry_class: str) -> Path:
        return self.root / entry_class

    def path_for(self, key: str, entry_class: str = "results") -> Path:
        return self._class_dir(entry_class) / key[:2] / f"{key}.json"

    # -- lookup statistics ---------------------------------------------

    def _log_lookup(self, outcome: str, key: str, entry_class: str) -> None:
        if self._stats_log is None:
            return
        prefix = _CLASS_META[entry_class][0]
        try:
            self._stats_log.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND: one small write per lookup is atomic on POSIX,
            # so concurrent processes interleave whole lines.
            fd = os.open(
                str(self._stats_log),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, f"{prefix}{outcome} {key}\n".encode("ascii"))
                size = os.fstat(fd).st_size
            finally:
                os.close(fd)
            if size > STATS_LOG_MAX_BYTES:
                self._compact_stats_log()
        except OSError:
            pass  # statistics must never fail a lookup

    def _compact_stats_log(self) -> None:
        """Fold the per-lookup lines into one ``summary`` line.

        Best-effort and lock-free: the tallies are read, summed, and
        atomically replace the log.  A lookup appended between the read
        and the replace loses that one line — an acceptable error for
        monitoring counters, and the file itself can never tear.
        """
        log = self._stats_log
        if log is None:
            return
        counts = self._read_lookup_counts(log)
        parts = []
        for entry_class in ENTRY_CLASSES:
            tag = entry_class if entry_class != "results" else ""
            h, m = counts[entry_class]
            parts.append(f"{tag}{'_' if tag else ''}hits={h}")
            parts.append(f"{tag}{'_' if tag else ''}misses={m}")
        line = "summary " + " ".join(parts) + "\n"
        fd, tmp = tempfile.mkstemp(dir=str(log.parent), prefix=".stats-")
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, log)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_lookup_counts(log: Path) -> Dict[str, List[int]]:
        """Per-class ``[hits, misses]`` from the log, summary lines
        included.  Missing/unreadable log reads as all zeros."""
        counts = {entry_class: [0, 0] for entry_class in ENTRY_CLASSES}
        try:
            with open(log, "r", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("summary "):
                        for token in line.split()[1:]:
                            name, _, value = token.partition("=")
                            try:
                                n = int(value)
                            except ValueError:
                                continue
                            cls, _, kind = name.rpartition("_")
                            cls = cls or "results"
                            if cls in counts and kind in ("hits", "misses"):
                                counts[cls][0 if kind == "hits" else 1] += n
                        continue
                    word = line.split(" ", 1)[0]
                    for entry_class, (prefix, _) in _CLASS_META.items():
                        if word == f"{prefix}hit":
                            counts[entry_class][0] += 1
                        elif word == f"{prefix}miss":
                            counts[entry_class][1] += 1
        except OSError:
            pass
        return counts

    # -- generic class-aware read/write --------------------------------

    def _read(self, key: str, entry_class: str) -> Optional[Dict]:
        path = self.path_for(key, entry_class)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            payload = None
        outcome = "miss" if payload is None else "hit"
        if _obs.enabled():
            # Keys embed the relevant schema versions, so a raw store
            # hit is a semantic cache hit: nothing stale gets a hit.
            _obs.get_registry().counter(
                _CLASS_META[entry_class][1],
                f"{entry_class.capitalize()}-store lookups, by outcome.",
                ("outcome",),
            ).labels(outcome).inc()
        self._log_lookup(outcome, key, entry_class)
        return payload

    def _write(self, key: str, payload: Dict, entry_class: str) -> Path:
        path = self.path_for(key, entry_class)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- whole-job results (the original store surface) ----------------

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (missing or unreadable)."""
        return self._read(key, "results")

    def put(self, key: str, payload: Dict) -> Path:
        """Atomically persist ``payload`` under ``key``.

        The temp file is flushed and fsynced before the ``os.replace``,
        so a rename is only ever published for fully-durable bytes —
        a crash mid-write leaves either the old entry or a stray
        ``.tmp`` (reaped by :meth:`prune`), never a truncated entry.
        Concurrent same-key writers are safe: each writes its own temp
        file and the last replace wins whole.
        """
        return self._write(key, payload, "results")

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    # -- per-cohort partials and cached CSSGs --------------------------

    def get_cohort(self, key: str) -> Optional[Dict]:
        """A cached per-cohort partial payload, or ``None``."""
        return self._read(key, "cohorts")

    def put_cohort(self, key: str, payload: Dict) -> Path:
        return self._write(key, payload, "cohorts")

    def has_cohort(self, key: str) -> bool:
        return self.path_for(key, "cohorts").exists()

    def delete_cohort(self, key: str) -> bool:
        try:
            self.path_for(key, "cohorts").unlink()
            return True
        except OSError:
            return False

    def get_cssg(self, key: str) -> Optional[Dict]:
        """A serialized CSSG by structural fingerprint, or ``None``."""
        return self._read(key, "cssg")

    def put_cssg(self, key: str, payload: Dict) -> Path:
        return self._write(key, payload, "cssg")

    # -- enumeration and maintenance -----------------------------------

    def iter_keys(self) -> Iterator[str]:
        if not self._results.exists():
            return
        for path in sorted(self._results.glob("*/*.json")):
            yield path.stem

    def class_entries(
        self, entry_class: str
    ) -> List[Tuple[str, Path, int, float]]:
        """One class's entries as ``(key, path, size_bytes, mtime)``,
        oldest first — the order :meth:`prune` evicts in."""
        out: List[Tuple[str, Path, int, float]] = []
        base = self._class_dir(entry_class)
        if not base.exists():
            return out
        for path in base.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue  # deleted by a concurrent pruner
            out.append((path.stem, path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: (e[3], e[0]))
        return out

    def entries(self) -> List[Tuple[str, Path, int, float]]:
        """The whole-job result entries (see :meth:`class_entries`)."""
        return self.class_entries("results")

    def _doomed(
        self,
        max_age_seconds: Optional[float],
        max_total_bytes: Optional[int],
        now: float,
    ) -> List[Tuple[str, str, Path, int]]:
        """The ``(class, key, path, size)`` list :meth:`prune` would
        evict: age rule first, then oldest-first across every class
        until the remainder fits the size bound."""
        doomed: List[Tuple[str, str, Path, int]] = []
        keep: List[Tuple[float, str, str, Path, int]] = []
        for entry_class in ENTRY_CLASSES:
            for key, path, size, mtime in self.class_entries(entry_class):
                if (
                    max_age_seconds is not None
                    and now - mtime > max_age_seconds
                ):
                    doomed.append((entry_class, key, path, size))
                else:
                    keep.append((mtime, entry_class, key, path, size))
        if max_total_bytes is not None:
            keep.sort(key=lambda e: (e[0], e[2]))
            total = sum(size for _, _, _, _, size in keep)
            for _mtime, entry_class, key, path, size in keep:
                if total <= max_total_bytes:
                    break
                doomed.append((entry_class, key, path, size))
                total -= size
        return doomed

    def prune(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Evict entries (all classes) older than ``max_age_seconds``,
        then — oldest first across classes — until the store fits
        ``max_total_bytes``.  Also reaps orphaned ``.tmp`` files
        abandoned by crashed writers.  Returns
        ``(n_removed, bytes_freed)``.
        """
        now = time.time() if now is None else now
        n_removed = 0
        bytes_freed = 0
        for entry_class in ENTRY_CLASSES:
            base = self._class_dir(entry_class)
            if not base.exists():
                continue
            for tmp in base.glob("*/.*.tmp"):
                try:
                    st = tmp.stat()
                    if now - st.st_mtime > 3600:  # not an in-flight write
                        tmp.unlink()
                        n_removed += 1
                        bytes_freed += st.st_size
                except OSError:
                    continue
        for _entry_class, _key, path, size in self._doomed(
            max_age_seconds, max_total_bytes, now
        ):
            try:
                path.unlink()
            except OSError:
                continue
            n_removed += 1
            bytes_freed += size
        return n_removed, bytes_freed

    def prune_plan(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict[str, Dict[str, int]]:
        """What :meth:`prune` *would* reclaim, per entry class — the
        ``repro-cache prune --dry-run`` report.  Returns
        ``{class: {"n_entries": n, "bytes": b}}`` plus a ``"total"``
        row; nothing is deleted."""
        now = time.time() if now is None else now
        plan = {
            entry_class: {"n_entries": 0, "bytes": 0}
            for entry_class in ENTRY_CLASSES
        }
        for entry_class, _key, _path, size in self._doomed(
            max_age_seconds, max_total_bytes, now
        ):
            plan[entry_class]["n_entries"] += 1
            plan[entry_class]["bytes"] += size
        plan["total"] = {
            "n_entries": sum(p["n_entries"] for p in plan.values()),
            "bytes": sum(p["bytes"] for p in plan.values()),
        }
        return plan

    def stats(self) -> Dict:
        """Store shape + lifetime hit statistics (from ``stats.log``
        when this store tracks them).

        Top-level ``n_entries`` / ``total_bytes`` / ``lookups`` keep
        their historical whole-job-results meaning; the ``classes``
        block breaks shape and lookups down per entry class.
        """
        per_class: Dict[str, Dict] = {}
        for entry_class in ENTRY_CLASSES:
            entries = self.class_entries(entry_class)
            per_class[entry_class] = {
                "n_entries": len(entries),
                "total_bytes": sum(size for _, _, size, _ in entries),
                "oldest_mtime": entries[0][3] if entries else None,
                "newest_mtime": entries[-1][3] if entries else None,
            }
        results = per_class["results"]
        doc: Dict = {
            "root": str(self.root),
            "n_entries": results["n_entries"],
            "total_bytes": results["total_bytes"],
            "oldest_mtime": results["oldest_mtime"],
            "newest_mtime": results["newest_mtime"],
        }
        log = self._stats_log or (self.root / "stats.log")
        counts = self._read_lookup_counts(log)
        for entry_class in ENTRY_CLASSES:
            hits, misses = counts[entry_class]
            per_class[entry_class]["lookups"] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else None,
            }
        doc["lookups"] = dict(per_class["results"]["lookups"])
        doc["classes"] = per_class
        return doc

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Remove every entry in every class; returns how many."""
        n = 0
        for entry_class in ENTRY_CLASSES:
            for _key, path, _size, _mtime in self.class_entries(entry_class):
                try:
                    path.unlink()
                    n += 1
                except OSError:
                    continue
        return n

    def __repr__(self):
        return f"ResultStore({str(self.root)!r})"
