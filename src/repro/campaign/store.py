"""Content-addressed on-disk result cache.

Each entry is one job's serialized :class:`~repro.core.atpg.AtpgResult`
JSON, filed under its content hash::

    <root>/results/<key[:2]>/<key>.json

The key already encodes the netlist bytes, options, code version, and
result schema version (see :mod:`repro.campaign.plan`), so invalidation
is automatic: any change produces a different key, and stale entries are
simply never addressed again.  Writes are atomic (temp file + ``fsync``
+ ``os.replace``) so concurrent campaigns — or the ``repro-serve``
daemon's parallel workers — sharing a cache directory can only ever
observe complete entries; when several writers race on the same key the
last replace wins and every reader sees one complete payload or a miss,
never a torn file.  Corrupt or foreign files read as cache misses.

The store is also a maintainable artifact: :meth:`ResultStore.entries`
/ :meth:`~ResultStore.prune` / :meth:`~ResultStore.stats` back the
``repro-cache`` CLI (list, age/size-bounded pruning, hit statistics),
and ``track_stats=True`` appends one ``hit|miss <key>`` line per lookup
to ``<root>/stats.log`` (O_APPEND, crash-safe) so long-lived services
can report hit rates across restarts.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs import metrics as _obs


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, or ``$XDG_CACHE_HOME/repro``, or
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultStore:
    """A content-addressed JSON store under one cache directory."""

    def __init__(
        self, root: Union[str, Path, None] = None, track_stats: bool = False
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._results = self.root / "results"
        self._stats_log = self.root / "stats.log" if track_stats else None

    def path_for(self, key: str) -> Path:
        return self._results / key[:2] / f"{key}.json"

    def _log_lookup(self, outcome: str, key: str) -> None:
        if self._stats_log is None:
            return
        try:
            self._stats_log.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND: one small write per lookup is atomic on POSIX,
            # so concurrent processes interleave whole lines.
            fd = os.open(
                str(self._stats_log),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, f"{outcome} {key}\n".encode("ascii"))
            finally:
                os.close(fd)
        except OSError:
            pass  # statistics must never fail a lookup

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (missing or unreadable)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict):
            payload = None
        outcome = "miss" if payload is None else "hit"
        if _obs.enabled():
            # Keys embed the result schema version, so a raw store hit
            # is a semantic cache hit: nothing stale ever gets a hit.
            _obs.get_registry().counter(
                "repro_campaign_cache_requests_total",
                "Result-store lookups, by outcome.",
                ("outcome",),
            ).labels(outcome).inc()
        self._log_lookup(outcome, key)
        return payload

    def put(self, key: str, payload: Dict) -> Path:
        """Atomically persist ``payload`` under ``key``.

        The temp file is flushed and fsynced before the ``os.replace``,
        so a rename is only ever published for fully-durable bytes —
        a crash mid-write leaves either the old entry or a stray
        ``.tmp`` (reaped by :meth:`prune`), never a truncated entry.
        Concurrent same-key writers are safe: each writes its own temp
        file and the last replace wins whole.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def iter_keys(self) -> Iterator[str]:
        if not self._results.exists():
            return
        for path in sorted(self._results.glob("*/*.json")):
            yield path.stem

    def entries(self) -> List[Tuple[str, Path, int, float]]:
        """Every entry as ``(key, path, size_bytes, mtime)``, oldest
        first — the order :meth:`prune` evicts in."""
        out: List[Tuple[str, Path, int, float]] = []
        if not self._results.exists():
            return out
        for path in self._results.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue  # deleted by a concurrent pruner
            out.append((path.stem, path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: (e[3], e[0]))
        return out

    def prune(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Evict entries older than ``max_age_seconds``, then — oldest
        first — until the store fits ``max_total_bytes``.  Also reaps
        orphaned ``.tmp`` files abandoned by crashed writers.  Returns
        ``(n_removed, bytes_freed)``.
        """
        now = time.time() if now is None else now
        n_removed = 0
        bytes_freed = 0
        if self._results.exists():
            for tmp in self._results.glob("*/.*.tmp"):
                try:
                    st = tmp.stat()
                    if now - st.st_mtime > 3600:  # not an in-flight write
                        tmp.unlink()
                        n_removed += 1
                        bytes_freed += st.st_size
                except OSError:
                    continue
        entries = self.entries()
        keep: List[Tuple[str, Path, int, float]] = []
        for key, path, size, mtime in entries:
            if max_age_seconds is not None and now - mtime > max_age_seconds:
                if self.delete(key):
                    n_removed += 1
                    bytes_freed += size
            else:
                keep.append((key, path, size, mtime))
        if max_total_bytes is not None:
            total = sum(size for _, _, size, _ in keep)
            for key, _path, size, _mtime in keep:  # oldest first
                if total <= max_total_bytes:
                    break
                if self.delete(key):
                    n_removed += 1
                    bytes_freed += size
                    total -= size
        return n_removed, bytes_freed

    def stats(self) -> Dict:
        """Store shape + lifetime hit statistics (from ``stats.log``
        when this store tracks them)."""
        entries = self.entries()
        doc: Dict = {
            "root": str(self.root),
            "n_entries": len(entries),
            "total_bytes": sum(size for _, _, size, _ in entries),
            "oldest_mtime": entries[0][3] if entries else None,
            "newest_mtime": entries[-1][3] if entries else None,
        }
        hits = misses = 0
        log = self._stats_log or (self.root / "stats.log")
        try:
            with open(log, "r", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("hit "):
                        hits += 1
                    elif line.startswith("miss "):
                        misses += 1
        except OSError:
            pass
        doc["lookups"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else None,
        }
        return doc

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_keys())

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        n = 0
        for key in list(self.iter_keys()):
            n += self.delete(key)
        return n

    def __repr__(self):
        return f"ResultStore({str(self.root)!r})"
