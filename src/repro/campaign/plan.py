"""Campaign plans: a spec, its expansion into jobs, and content hashes.

A :class:`Job` is one ATPG invocation: a source (bundled benchmark name
or ``.net`` netlist path), a synthesis style, and fully-resolved
:class:`~repro.core.atpg.AtpgOptions`.  Its ``key`` is a SHA-256 over

* the **source bytes** (the ``.g`` STG or ``.net`` netlist file — the
  circuit is a pure function of those plus the style),
* the **options** (canonical JSON, every field — including the flow's
  stage gates ``collapse`` / ``compact`` and ``deadline_seconds``),
* the **stage list** the flow runs (``DEFAULT_STAGE_NAMES`` unless a
  caller passes a custom pipeline), and
* the **code version** (:data:`CODE_VERSION`, bumped when an algorithm
  change alters results) and the result schema version.

Hashing source bytes instead of the synthesized netlist keeps the warm
path cheap: deciding that a job is cached costs one file read, not a
synthesis run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchmarks_data import (
    TABLE1_NAMES,
    TABLE2_NAMES,
    benchmark_path,
)
from repro.core.atpg import RESULT_SCHEMA_VERSION, AtpgOptions
from repro.errors import ReproError
from repro.flow import DEFAULT_STAGE_NAMES

#: Bump on any change to synthesis / CSSG / ATPG that alters results.
#: Part of every job key, so a bump invalidates the whole cache at once.
#: "2": the symbolic-kernel rewrite — ``cssg_method="auto"`` now
#: resolves to "symbolic" (not "ternary") above the exact limit.
#: "3": the fault-model registry — ``fault_model`` now names a
#: registered model (``bridging`` / ``transition`` joined the stuck-at
#: pair), and transition-aware collapsing changed the collapse
#: signature space.
CODE_VERSION = "3"


@dataclass(frozen=True)
class Job:
    """One independent ATPG run of a campaign."""

    name: str  #: display name, e.g. ``"ebergen[complex]/input/s0"``
    source_kind: str  #: ``"benchmark"`` (bundled STG) or ``"netlist"``
    source: str  #: benchmark name, or path to a ``.net`` file
    style: str  #: synthesis back end (benchmarks only)
    seed: int
    k: Optional[int]
    options: AtpgOptions  #: fully resolved (fault_model/seed/k applied)
    key: str  #: content hash; the store address of the result
    group: str  #: jobs sharing a circuit; co-scheduled on one worker
    cost_hint: int  #: source size in bytes; big groups are scheduled first

    @property
    def fault_model(self) -> str:
        return self.options.fault_model


@dataclass
class CampaignSpec:
    """What to run: the cross product of the axes below.

    ``benchmarks`` entries are bundled benchmark names, or paths to
    ``.net`` netlists (recognized by a path separator or a ``.net``
    suffix).  ``options`` is the template every job inherits; each job
    overrides its ``fault_model``, ``seed`` and ``k`` from the axes.

    ``fault_models`` accepts any name registered in
    :mod:`repro.faultmodels` (``input`` / ``output`` / ``bridging`` /
    ``transition``); :func:`expand` validates the names up front, and
    each model lands in the job's content key, so e.g. a bridging run
    and a transition run of the same circuit cache independently.

    >>> spec = CampaignSpec(benchmarks=["dff"], seeds=(0, 1),
    ...                     fault_models=("input", "bridging"))
    >>> len(expand(spec))   # 1 benchmark x 1 style x 2 models x 2 seeds
    4
    """

    benchmarks: Sequence[str] = TABLE1_NAMES
    styles: Sequence[str] = ("complex",)
    fault_models: Sequence[str] = ("output", "input")
    seeds: Sequence[int] = (0,)
    ks: Sequence[Optional[int]] = (None,)
    #: CSSG construction methods to cross (``None`` = inherit the
    #: template's ``options.cssg_method``); a real axis like the others,
    #: so one campaign can compare e.g. hybrid vs symbolic runs.
    cssg_methods: Sequence[Optional[str]] = (None,)
    options: AtpgOptions = field(default_factory=AtpgOptions)

    @staticmethod
    def table1(seeds: Sequence[int] = (0,), **option_overrides) -> "CampaignSpec":
        """The paper's Table 1: every SI benchmark, complex gates.

        ``fault_model`` / ``seed`` / ``k`` are spec axes, not template
        options — pass ``seeds=(...)`` here, not ``seed=...``."""
        return CampaignSpec(
            benchmarks=TABLE1_NAMES,
            styles=("complex",),
            seeds=tuple(seeds),
            options=AtpgOptions(**option_overrides),
        )

    @staticmethod
    def table2(seeds: Sequence[int] = (0,), **option_overrides) -> "CampaignSpec":
        """The paper's Table 2 subset: two-level redundant covers."""
        return CampaignSpec(
            benchmarks=TABLE2_NAMES,
            styles=("two-level",),
            seeds=tuple(seeds),
            options=AtpgOptions(**option_overrides),
        )

    def to_json_dict(self) -> Dict:
        return {
            "benchmarks": list(self.benchmarks),
            "styles": list(self.styles),
            "fault_models": list(self.fault_models),
            "seeds": list(self.seeds),
            "ks": list(self.ks),
            "cssg_methods": list(self.cssg_methods),
            "options": self.options.to_json_dict(),
        }


def _classify_source(entry: str) -> Tuple[str, str]:
    """``(source_kind, source)`` for one ``benchmarks`` entry.

    Bundled names win; otherwise any existing file is a netlist (not
    just ``*.net`` paths); otherwise path-looking entries fail here and
    bare words fall through to the unknown-benchmark error with the
    available list."""
    if entry in TABLE1_NAMES:
        return "benchmark", entry
    if Path(entry).exists():
        return "netlist", entry
    if "/" in entry or entry.endswith(".net"):
        raise ReproError(f"netlist file not found: {entry!r}")
    return "benchmark", entry


def source_fingerprint(source_kind: str, source: str) -> str:
    """SHA-256 of the source file bytes (STG or netlist)."""
    if source_kind == "benchmark":
        path = benchmark_path(source)  # raises ReproError for unknown names
    else:
        path = Path(source)
        if not path.exists():
            raise ReproError(f"netlist file not found: {source!r}")
    return hashlib.sha256(path.read_bytes()).hexdigest()


def job_key(
    fingerprint: str,
    style: str,
    options: AtpgOptions,
    stages: Sequence[str] = DEFAULT_STAGE_NAMES,
) -> str:
    """The content hash a job's result is stored under.

    ``stages`` is the flow's stage-name pipeline; campaigns run
    ``Flow.default()`` so the default is
    :data:`~repro.flow.DEFAULT_STAGE_NAMES`, and any change to the
    default pipeline (or a campaign over a custom one) lands in the key
    and invalidates stale cache entries."""
    doc = {
        "code_version": CODE_VERSION,
        "schema_version": RESULT_SCHEMA_VERSION,
        "source_sha256": fingerprint,
        "style": style,
        "options": options.to_json_dict(),
        "stages": list(stages),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cohort_plan(job: Job) -> List["object"]:
    """Expand one job into its cohort-granular work units.

    Cohorts are the incremental cache's addressing unit: the job's
    fault universe partitioned by structural cone of influence, each
    with a content key over the canonicalized cone sub-netlist (see
    :mod:`repro.campaign.cohort`).  The runner computes the same
    partition internally; this entry point exists so planning tools
    (``repro-campaign plan``, the serve front end) can enumerate and
    display cohort keys without executing anything.

    Imports lazily: plan construction must stay cheap and free of the
    circuit/flow machinery for the common cached-campaign path.
    """
    from repro.campaign import cohort as _cohort
    from repro.campaign.runner import load_job_circuit
    from repro.circuit.faults import fault_universe

    circuit = load_job_circuit(job)
    universe = fault_universe(circuit, job.options.fault_model)
    salt = _cohort.cohort_salt(circuit, job.style, job.options)
    return _cohort.partition(circuit, universe, salt)


def _display_name(
    base: str,
    style: str,
    model: str,
    seed: int,
    k: Optional[int],
    method: Optional[str],
    spec: CampaignSpec,
) -> str:
    name = f"{base}[{style}]/{model}"
    if len(spec.seeds) > 1:
        name += f"/s{seed}"
    if len(spec.ks) > 1 or k is not None:
        name += f"/k{k}"
    if len(spec.cssg_methods) > 1:
        name += f"/{method or spec.options.cssg_method}"
    return name


def expand(spec: CampaignSpec) -> List[Job]:
    """Expand a spec into its independent jobs (stable order).

    Unknown benchmark names and missing netlist files fail here, before
    any worker starts, with a :class:`ReproError` naming the entry.
    """
    from repro.faultmodels import get_model

    for model in spec.fault_models:
        get_model(model)  # unknown names fail here, before any worker
    jobs: List[Job] = []
    seen: Dict[str, Job] = {}
    for entry in spec.benchmarks:
        source_kind, source = _classify_source(entry)
        base = Path(source).stem if source_kind == "netlist" else source
        cost_hint = (
            benchmark_path(source) if source_kind == "benchmark" else Path(source)
        ).stat().st_size
        fingerprint = source_fingerprint(source_kind, source)
        styles = spec.styles if source_kind == "benchmark" else ("complex",)
        for style in styles:
            group = f"{source}|{style}"
            for k in spec.ks:
                for seed in spec.seeds:
                    for method in spec.cssg_methods:
                        for model in spec.fault_models:
                            options = replace(
                                spec.options,
                                fault_model=model,
                                seed=seed,
                                k=k,
                                cssg_method=(
                                    method
                                    if method is not None
                                    else spec.options.cssg_method
                                ),
                            )
                            key = job_key(fingerprint, style, options)
                            if key in seen:
                                continue  # identical axes collapse to one job
                            job = Job(
                                name=_display_name(
                                    base, style, model, seed, k, method, spec
                                ),
                                source_kind=source_kind,
                                source=source,
                                style=style,
                                seed=seed,
                                k=k,
                                options=options,
                                key=key,
                                group=group,
                                cost_hint=cost_hint,
                            )
                            seen[key] = job
                            jobs.append(job)
    return jobs
