"""Campaign execution: cache-aware, sharded across worker processes.

``run_campaign(jobs, workers=N, store=...)`` resolves every job:

1. jobs whose key is already in the store are **cached** — no work;
2. the rest are grouped by source circuit (``job.group``) and the
   groups, biggest first, are fed to ``N`` persistent worker processes
   through a task queue, so all variants of one circuit land on one
   worker and share its synthesis / CSSG memo;
3. each finished job's result JSON flows back to the parent, which
   writes it to the store *as it arrives* — a campaign killed halfway
   resumes from exactly the jobs it had not finished;
4. a worker that dies (crash) or exceeds the per-job timeout is killed
   and replaced; the job in flight is marked ``crashed``/``timeout``,
   the unstarted remainder of its group is re-queued, and the campaign
   carries on;
5. while a job runs, its flow event stream drives a throttled
   **heartbeat** back to the parent, so a slow-but-alive job is
   distinguishable from a hung one: with ``hang_timeout`` set, a busy
   worker that has been *silent* (no heartbeat, no completion) that
   long is killed early with status ``hung``, while a job that keeps
   beating is allowed to run all the way to the hard ``timeout``.

``workers=0`` runs everything in-process (no subprocess, no pickling),
which is what the table benchmarks use so their timings measure ATPG,
not orchestration.  Results are identical either way: every job is an
independent, seeded, deterministic computation.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.plan import Job
from repro.campaign.store import ResultStore
from repro.circuit.netlist import Circuit
from repro.core.atpg import (
    RESULT_SCHEMA_VERSION,
    AtpgResult,
    cssg_for,
    resolve_cssg_method,
)
from repro.errors import ReproError
from repro.flow import Flow, Heartbeat
from repro.obs import metrics as _obs

#: Default per-job wall-clock budget in worker mode.
DEFAULT_JOB_TIMEOUT = 600.0

#: How long a busy worker may be silent (no heartbeat, no completion)
#: before it is presumed hung.  ``None`` disables early hang detection;
#: the hard per-job ``timeout`` still applies either way.
DEFAULT_HANG_TIMEOUT = None

#: Minimum seconds between heartbeats a worker relays to the parent.
HEARTBEAT_INTERVAL = 0.5

#: Test-only hook: set to ``"<source>:<marker path>"`` to make the first
#: worker that picks up a job for ``source`` hard-exit (simulating a
#: native crash) and leave the marker so reruns proceed normally.
CRASH_ONCE_ENV = "REPRO_CAMPAIGN_CRASH_ONCE"

#: Outcome statuses that mean "the result payload is valid".
_OK_STATUSES = ("cached", "ran")


@dataclass
class JobOutcome:
    """How one job was resolved."""

    job: Job
    status: str  #: "cached" | "ran" | "failed" | "crashed" | "timeout" | "hung"
    payload: Optional[Dict] = None  #: the result JSON when ok
    error: str = ""
    seconds: float = 0.0
    live: Optional[AtpgResult] = field(default=None, repr=False)
    #: Cohort reuse accounting when the job ran incrementally (the
    #: :meth:`~repro.campaign.cohort.IncrementalStats.to_json_dict`
    #: shape); ``None`` for plain runs and cache hits.
    incremental: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.status in _OK_STATUSES

    @property
    def executed(self) -> bool:
        """True when ATPG actually ran for this job (not a cache hit)."""
        return self.status == "ran"

    def result(self, circuit: Optional[Circuit] = None) -> AtpgResult:
        """The job's :class:`AtpgResult` — the live object when the job
        ran in-process, otherwise deserialized from the payload."""
        if self.live is not None:
            return self.live
        if self.payload is None:
            raise ReproError(f"job {self.job.name} has no result ({self.status})")
        if circuit is None:
            circuit = load_job_circuit(self.job)
        return AtpgResult.from_json_dict(self.payload, circuit)


@dataclass
class CampaignReport:
    """Everything one ``run_campaign`` call did."""

    jobs: List[Job]
    outcomes: List[JobOutcome]  #: in ``jobs`` order
    wall_seconds: float
    workers: int

    @property
    def by_key(self) -> Dict[str, JobOutcome]:
        return {o.job.key: o for o in self.outcomes}

    @property
    def n_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def n_ran(self) -> int:
        return sum(1 for o in self.outcomes if o.executed)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def all_ok(self) -> bool:
        return self.n_failed == 0

    def summary(self) -> str:
        return (
            f"{len(self.jobs)} jobs: {self.n_ran} ran, {self.n_cached} cached, "
            f"{self.n_failed} failed in {self.wall_seconds:.2f}s "
            f"({self.workers} workers)"
        )


def load_job_circuit(job: Job) -> Circuit:
    """Build the circuit a job runs on (synthesized or parsed)."""
    if job.source_kind == "benchmark":
        from repro.benchmarks_data import load_benchmark

        return load_benchmark(job.source, style=job.style)
    from repro.circuit.parser import load_netlist

    return load_netlist(job.source)


def execute_job(
    job: Job,
    cssg_memo: Optional[Dict] = None,
    listeners=(),
) -> AtpgResult:
    """Run one job through ``Flow.default()``, optionally sharing CSSG
    construction through ``cssg_memo`` (all fault-model / seed variants
    of one circuit use the same graph, exactly like the sequential table
    harness did).  ``listeners`` subscribe to the job's flow event
    stream — the worker loop wires a :class:`~repro.flow.Heartbeat`
    here."""
    if job.source_kind == "fuzz":
        # Scenario-fuzzing chunks (repro-fuzz) ride the same workers,
        # heartbeats and store; their execution lives with the fuzz
        # subsystem.  cssg_memo is meaningless across fuzzed circuits.
        from repro.fuzz.campaign import execute_fuzz_job

        return execute_fuzz_job(job, listeners=listeners)
    circuit = load_job_circuit(job)
    opts = job.options
    cssg = None
    if cssg_memo is not None:
        # Key on the *resolved* method so e.g. "auto" and the method it
        # resolves to for this circuit share one construction.
        memo_key = (
            job.group,
            opts.k,
            opts.max_input_changes,
            resolve_cssg_method(circuit, opts),
        )
        cssg = cssg_memo.get(memo_key)
        if cssg is None:
            # Narrate the memoized construction exactly as Flow.run
            # would narrate its own: listeners (the heartbeat included)
            # see a beat right before the longest silent stretch.
            from repro.circuit.faults import fault_universe
            from repro.flow import StageFinished, StageStarted

            n_faults = len(fault_universe(circuit, opts.fault_model))
            for listener in listeners:
                listener(StageStarted("cssg", n_faults))
            t0 = time.perf_counter()
            cssg = cssg_for(circuit, opts)
            cssg_memo[memo_key] = cssg
            for listener in listeners:
                listener(
                    StageFinished(
                        "cssg",
                        time.perf_counter() - t0,
                        f"{cssg.n_states} states / {cssg.n_edges} edges "
                        f"[{cssg.method}]",
                    )
                )
    return Flow.default().run(circuit, opts, cssg=cssg, listeners=listeners)


def _incremental_cssg(
    circuit: Circuit,
    job: Job,
    store: ResultStore,
    cssg_memo: Optional[Dict],
    listeners,
    stats,
    refresh: bool = False,
):
    """The job's CSSG, by preference: batch memo → structural cache →
    fresh construction (which then populates both).  The cache key is
    the name-free structural fingerprint, so renames and
    logic-preserving rewrites reuse the graph outright."""
    from repro.campaign import cohort as _cohort

    opts = job.options
    method = resolve_cssg_method(circuit, opts)
    memo_key = (job.group, opts.k, opts.max_input_changes, method)
    if cssg_memo is not None:
        cssg = cssg_memo.get(memo_key)
        if cssg is not None:
            return cssg
    fingerprint = _cohort.cssg_fingerprint(
        circuit, opts.k, opts.max_input_changes, method
    )
    cssg = None
    if not refresh:
        cssg = _cohort.cssg_from_doc(circuit, store.get_cssg(fingerprint))
    if cssg is not None:
        stats.cssg_reused = True
    else:
        from repro.circuit.faults import fault_universe
        from repro.flow import StageFinished, StageStarted

        n_faults = len(fault_universe(circuit, opts.fault_model))
        for listener in listeners:
            listener(StageStarted("cssg", n_faults))
        t0 = time.perf_counter()
        cssg = cssg_for(circuit, opts)
        for listener in listeners:
            listener(
                StageFinished(
                    "cssg",
                    time.perf_counter() - t0,
                    f"{cssg.n_states} states / {cssg.n_edges} edges "
                    f"[{cssg.method}]",
                )
            )
        store.put_cssg(fingerprint, _cohort.cssg_to_doc(cssg))
    if cssg_memo is not None:
        cssg_memo[memo_key] = cssg
    return cssg


def execute_job_incremental(
    job: Job,
    store: Optional[ResultStore],
    cssg_memo: Optional[Dict] = None,
    listeners=(),
    refresh: bool = False,
):
    """Resolve one job through the per-cohort incremental cache.

    Returns ``(payload, live_result_or_None, stats_or_None)``:

    * every cohort cached → **pure merge**: the payload is reassembled
      from the partials without building a CSSG or running the flow
      (``live_result`` is None);
    * some cohorts stale → one :class:`~repro.flow.Flow` run over the
      full universe with a leading
      :class:`~repro.flow.stages.ReplayStage` injecting the cached
      verdicts, so the generating stages see only the stale faults;
      fresh partials are then stored for *every* cohort, keeping all of
      a partition's partials on one producing run;
    * no store, or a deadline-bounded job (a budget abort would cache
      partial verdicts as if they were final — the documented
      "cohort hit impossible" case) → plain :func:`execute_job`,
      ``stats`` None.

    ``refresh`` skips all cache *reads* but still repopulates partials
    and the CSSG cache, restoring full-fidelity entries after a chain
    of approximate incremental reruns.
    """
    opts = job.options
    if (
        store is None
        or opts.deadline_seconds is not None
        or job.source_kind == "fuzz"
    ):
        # Fuzz chunks have no fault cohorts to reuse — the whole-result
        # cache (keyed on the chunk's content hash) is their only tier.
        result = execute_job(job, cssg_memo, listeners=listeners)
        return result.to_json_dict(), result, None

    from repro.campaign import cohort as _cohort
    from repro.circuit.faults import fault_universe

    t_start = time.perf_counter()
    circuit = load_job_circuit(job)
    universe = fault_universe(circuit, opts.fault_model)
    salt = _cohort.cohort_salt(circuit, job.style, opts)
    cohorts = _cohort.partition(circuit, universe, salt)
    stats = _cohort.IncrementalStats(cohorts_total=len(cohorts))

    cached: List[Optional[Dict]] = []
    for cohort in cohorts:
        doc = None if refresh else store.get_cohort(cohort.key)
        if doc is not None and not _cohort.validate_partial(
            circuit, cohort, doc
        ):
            doc = None
        cached.append(doc)
    reused = [
        (cohort, doc) for cohort, doc in zip(cohorts, cached) if doc is not None
    ]
    stale = [cohort for cohort, doc in zip(cohorts, cached) if doc is None]
    stats.cohorts_reused = len(reused)
    stats.cohorts_executed = len(stale)
    stats.faults_reused = sum(len(c.faults) for c, _ in reused)
    stats.faults_executed = sum(len(c.faults) for c in stale)

    if not stale:
        # Pure merge: no CSSG, no flow — reassemble the payload.
        payload = _cohort.merge_payload(
            circuit,
            opts,
            universe,
            [cohort for cohort, _ in reused],
            [doc for _, doc in reused],
            cpu_seconds=time.perf_counter() - t_start,
        )
        return payload, None, stats

    cssg = _incremental_cssg(
        circuit, job, store, cssg_memo, listeners, stats, refresh=refresh
    )
    from repro.flow.stages import ReplayStage

    plan = _cohort.build_replay_plan(
        [cohort for cohort, _ in reused], [doc for _, doc in reused]
    )
    flow = Flow([ReplayStage(plan)] + list(Flow.default().stages))
    result = flow.run(
        circuit, opts, faults=list(universe), cssg=cssg, listeners=listeners
    )
    payload = result.to_json_dict()
    canonical = {k: v for k, v in payload.items() if k != "telemetry"}
    # Re-extract *every* cohort from this run's payload, not just the
    # stale ones: reused partials get re-normalized onto this producing
    # run, so all partials of a partition always reference one run and
    # a later merge reassembles this payload position-exactly.
    partials = _cohort.extract_partials(circuit, canonical, cohorts, job.key)
    for cohort in cohorts:
        store.put_cohort(cohort.key, partials[cohort.key])
    return payload, result, stats


def note_incremental_stats(stats) -> None:
    """Fold one incremental execution's cohort accounting into the
    ambient metrics registry (call exactly once per job, parent-side —
    never inside a telemetry-collected worker, which would double-count
    through the snapshot merge).  Accepts an
    :class:`~repro.campaign.cohort.IncrementalStats` or its dict form;
    ``None`` is a no-op."""
    if stats is None or not _obs.enabled():
        return
    doc = stats if isinstance(stats, dict) else stats.to_json_dict()
    counter = _obs.get_registry().counter(
        "repro_incremental_cohorts_total",
        "Fault cohorts planned/reused/executed by incremental re-ATPG.",
        ("outcome",),
    )
    counter.labels("planned").inc(doc.get("cohorts_total", 0))
    counter.labels("reused").inc(doc.get("cohorts_reused", 0))
    counter.labels("executed").inc(doc.get("cohorts_executed", 0))


def _fresh_payload(store: Optional[ResultStore], job: Job) -> Optional[Dict]:
    """The cached payload for ``job``, if present and schema-compatible."""
    if store is None:
        return None
    payload = store.get(job.key)
    if payload is None or payload.get("schema_version") != RESULT_SCHEMA_VERSION:
        return None
    return payload


def _maybe_crash_for_test(job: Job) -> None:
    spec = os.environ.get(CRASH_ONCE_ENV)
    if not spec or ":" not in spec:
        return
    source, marker = spec.split(":", 1)
    if job.source == source and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(job.key)
        os._exit(3)  # simulate a native crash: no exception, no cleanup


def _worker_main(
    wid: int,
    task_q,
    event_q,
    collect_telemetry: bool = False,
    relay_events: bool = False,
    incremental: bool = False,
    cache_root: Optional[str] = None,
    refresh: bool = False,
) -> None:
    """Worker loop: run dispatched job batches until the ``None``
    sentinel.  A batch is one source circuit's group (or the remainder
    of one), processed strictly in order — the parent relies on that
    order to attribute a crash or timeout to the first job it has no
    completion event for.  One CSSG memo spans the batch, so all
    fault-model / seed variants share a single construction.

    With ``collect_telemetry`` the worker arms a **fresh metrics
    registry per job**, ships its snapshot as a fifth heartbeat element
    (the parent's dashboard reads live, in-flight numbers from it), and
    lets the flow attach the final snapshot to the result's
    ``telemetry`` block — which is how per-job metrics reach the
    parent's campaign-wide registry exactly once.

    With ``relay_events`` the worker forwards **every flow event** as a
    ``("event", wid, key, 0.0, event_json)`` message instead of the
    throttled heartbeat — the serving front end streams these live to
    subscribed clients, and any event doubles as a sign of life for the
    parent's hang policing.  (Campaigns keep the cheap heartbeat: a
    23-benchmark batch has no event subscribers, so shipping the full
    stream across the process boundary would be pure overhead.)

    With ``incremental`` (and a ``cache_root``), jobs resolve through
    :func:`execute_job_incremental` against a worker-local
    :class:`ResultStore`; the cohort-reuse stats ride as a sixth
    ``done``-event element so the *parent* folds them into its registry
    exactly once."""
    # track_stats: cohort/cssg lookups are the incremental layer's whole
    # point — their hit/miss ledger (capped stats.log) is what
    # ``repro-cache stats`` and the serve /metrics gauges report.
    inc_store = (
        ResultStore(cache_root, track_stats=True)
        if incremental and cache_root
        else None
    )
    while True:
        item = task_q.get()
        if item is None:
            break
        batch_id, jobs = item
        cssg_memo: Dict = {}
        for job in jobs:
            _maybe_crash_for_test(job)
            t0 = time.perf_counter()
            # Liveness relay: at most one beat per HEARTBEAT_INTERVAL,
            # driven by the job's own flow events.  One beat fires
            # unconditionally at pickup, so the hang clock starts from
            # "job started", not from the first flow event.
            if collect_telemetry:
                reg = _obs.enable(_obs.MetricsRegistry())

                def send(key=job.key, reg=reg):
                    event_q.put(("beat", wid, key, 0.0, reg.snapshot()))

            else:

                def send(key=job.key):
                    event_q.put(("beat", wid, key, 0.0))

            send()
            if relay_events:

                def listener(event, key=job.key):
                    event_q.put(("event", wid, key, 0.0, event.to_json_dict()))

            else:
                listener = Heartbeat(send, min_interval=HEARTBEAT_INTERVAL)
            try:
                if inc_store is not None:
                    payload, _live, inc = execute_job_incremental(
                        job, inc_store, cssg_memo,
                        listeners=(listener,), refresh=refresh,
                    )
                    event_q.put(
                        ("done", wid, job.key, time.perf_counter() - t0,
                         payload,
                         None if inc is None else inc.to_json_dict())
                    )
                else:
                    result = execute_job(job, cssg_memo, listeners=(listener,))
                    event_q.put(
                        ("done", wid, job.key, time.perf_counter() - t0,
                         result.to_json_dict())
                    )
            except Exception as exc:  # report and keep the worker alive
                event_q.put(
                    ("fail", wid, job.key, time.perf_counter() - t0,
                     f"{type(exc).__name__}: {exc}")
                )
        event_q.put(("batch-done", wid, batch_id, 0.0))


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        return multiprocessing.get_context()


class _Pool:
    """Parent-side dispatcher: one job *batch* in flight per worker.

    Each worker has a private task queue and receives whole groups (all
    variants of one source circuit) in one message — jobs are only
    milliseconds each, so per-job round trips would drown the pool in
    dispatch latency.  The parent records every batch it hands out and
    workers process batches strictly in order, so when a worker dies or
    goes silent past the per-job timeout, the first batch job without a
    completion event *is* the culprit: it gets the ``crashed`` /
    ``timeout`` / ``hung`` outcome, the rest of the batch is re-queued
    first in line, and a replacement worker is spawned.  Nothing about
    failure handling depends on event delivery from a crashing process.

    Two clocks govern a busy worker: ``timeout`` measures since the last
    *completion* event (the hard per-job budget), while ``hang_timeout``
    — when set — measures since the last sign of life of any kind
    (completion *or* flow heartbeat).  A job whose flow keeps emitting
    events beats every :data:`HEARTBEAT_INTERVAL` and therefore only
    ever hits the hard budget; a job gone truly silent is culled after
    ``hang_timeout`` instead of occupying a worker for the full
    ``timeout``."""

    def __init__(
        self,
        pending: List[Job],
        workers: int,
        timeout: float,
        hang_timeout: Optional[float] = None,
        collect_telemetry: bool = False,
        relay_events: bool = False,
        incremental: bool = False,
        cache_root: Optional[str] = None,
        refresh: bool = False,
    ):
        self.ctx = _mp_context()
        self.event_q = self.ctx.Queue()
        self.timeout = timeout
        self.collect_telemetry = collect_telemetry
        self.relay_events = relay_events
        self.incremental = incremental
        self.cache_root = cache_root
        self.refresh = refresh
        #: dispatch instant per job key, for queue-wait accounting.
        self.dispatched_at: Dict[str, float] = {}
        self.n_respawns = 0
        # Floor: below a few heartbeat intervals even a perfectly
        # beating job would be culled between relays.
        if hang_timeout is not None:
            hang_timeout = max(hang_timeout, 4 * HEARTBEAT_INTERVAL)
        self.hang_timeout = hang_timeout
        self.job_of = {j.key: j for j in pending}
        self.target_workers = workers
        self.next_wid = 0
        self.next_batch_id = 0
        self.procs: Dict[int, object] = {}
        self.task_qs: Dict[int, object] = {}
        #: jobs of the worker's current batch with no completion event
        #: yet, in the order the worker runs them.
        self.worker_remaining: Dict[int, List[Job]] = {}
        self.worker_last_event: Dict[int, float] = {}
        #: last sign of life of any kind (completion or heartbeat).
        self.worker_last_beat: Dict[int, float] = {}

        groups: Dict[str, List[Job]] = {}
        for job in pending:
            groups.setdefault(job.group, []).append(job)
        # Biggest sources first: the long pole starts immediately.
        self.group_queue: List[List[Job]] = sorted(
            groups.values(),
            key=lambda js: (-sum(j.cost_hint for j in js), js[0].key),
        )

    def add_jobs(self, jobs: Sequence[Job]) -> None:
        """Append more work after construction — the long-lived serving
        front end feeds submissions in as they arrive.  Each job becomes
        its own single-job batch (service jobs arrive one by one; there
        is no whole-campaign group to co-schedule)."""
        for job in jobs:
            self.job_of[job.key] = job
            self.group_queue.append([job])

    def spawn(self) -> None:
        wid = self.next_wid
        self.next_wid += 1
        task_q = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(
                wid, task_q, self.event_q,
                self.collect_telemetry, self.relay_events,
                self.incremental, self.cache_root, self.refresh,
            ),
            daemon=True,
        )
        proc.start()
        self.procs[wid] = proc
        self.task_qs[wid] = task_q
        self.worker_remaining[wid] = []

    def dispatch(self, wid: int) -> None:
        """Hand the worker the next queued group, if it is idle."""
        if self.worker_remaining[wid] or not self.group_queue:
            return
        batch = self.group_queue.pop(0)
        batch_id = self.next_batch_id
        self.next_batch_id += 1
        self.worker_remaining[wid] = list(batch)
        now = time.monotonic()
        self.worker_last_event[wid] = now
        self.worker_last_beat[wid] = now
        for job in batch:
            self.dispatched_at[job.key] = now
        self.task_qs[wid].put((batch_id, batch))

    def dispatch_all(self) -> None:
        for wid in list(self.procs):
            self.dispatch(wid)

    def note_event(self, wid: int, key: Optional[str]) -> None:
        """Record a completion event: the job is no longer in flight."""
        self.worker_last_event[wid] = time.monotonic()
        self.worker_last_beat[wid] = time.monotonic()
        if key is not None:
            self.worker_remaining[wid] = [
                j for j in self.worker_remaining[wid] if j.key != key
            ]

    def note_beat(self, wid: int) -> None:
        """Record a heartbeat: the worker is alive and making progress
        (the per-job completion clock keeps running)."""
        self.worker_last_beat[wid] = time.monotonic()

    def drop_worker(self, wid: int, kill: bool) -> List[Job]:
        """Remove a worker; returns its unfinished batch jobs in order
        (the first is the one that was in flight)."""
        proc = self.procs.pop(wid)
        if kill and proc.is_alive():
            proc.terminate()
        proc.join(timeout=5)
        self.task_qs.pop(wid)
        self.worker_last_event.pop(wid, None)
        self.worker_last_beat.pop(wid, None)
        return self.worker_remaining.pop(wid)

    def requeue_first(self, jobs: List[Job]) -> None:
        if jobs:
            self.group_queue.insert(0, jobs)

    def shutdown(self) -> None:
        for wid, proc in list(self.procs.items()):
            if proc.is_alive():
                self.task_qs[wid].put(None)
        deadline = time.monotonic() + 10
        for proc in self.procs.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for q in [self.event_q] + list(self.task_qs.values()):
            q.cancel_join_thread()
            q.close()


def run_campaign(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    timeout: float = DEFAULT_JOB_TIMEOUT,
    progress: Optional[Callable[[JobOutcome, int, int], None]] = None,
    refresh: bool = False,
    hang_timeout: Optional[float] = DEFAULT_HANG_TIMEOUT,
    collect_telemetry: bool = False,
    dashboard=None,
    incremental: bool = False,
) -> CampaignReport:
    """Resolve every job: from the cache when possible, else by running
    it.  ``workers=0`` executes in-process; ``workers=None`` uses the
    machine's CPU count.  ``store=None`` disables caching entirely;
    ``refresh=True`` bypasses cache reads but still stores fresh
    results (existing entries are only ever overwritten, never deleted,
    so an interrupted refresh loses nothing).  ``hang_timeout`` kills a
    busy worker that has shown no sign of life (heartbeat or
    completion) for that many seconds — shorter than ``timeout``, which
    is the hard budget a *live* job may spend on one result.  Beats are
    driven by flow events, so set ``hang_timeout`` above the longest
    *silent* stretch a healthy job can have: a single CSSG construction
    or one 3-phase product search emits nothing while it runs (a floor
    of a few heartbeat intervals is enforced automatically).

    ``collect_telemetry`` arms metrics collection (the parent's ambient
    registry becomes the campaign-wide aggregate; workers record into
    per-job registries whose snapshots are merged in as results
    arrive).  ``dashboard`` is any object with ``on_beat(wid, key,
    snapshot)`` / ``on_outcome(outcome, done, total)`` hooks — the
    runner drives it, the caller owns (and closes) it.  Neither option
    changes a single payload byte that reaches the store: the cache
    always holds the canonical, telemetry-free result.

    ``incremental`` resolves jobs that miss the whole-result cache
    through :func:`execute_job_incremental`: per-fault-cohort partials
    and a structurally-fingerprinted CSSG cache turn an edit-rerun into
    O(changed logic).  Requires a ``store``; deadline-bounded jobs fall
    back to plain execution (see docs/incremental.md)."""
    jobs = list(jobs)
    if workers is None:
        workers = os.cpu_count() or 1
    if collect_telemetry and not _obs.enabled():
        _obs.enable()
    start = time.perf_counter()
    outcomes: Dict[str, JobOutcome] = {}
    n_total = len(jobs)

    def resolve(outcome: JobOutcome) -> None:
        outcomes[outcome.job.key] = outcome
        if outcome.executed and store is not None and outcome.payload is not None:
            payload = outcome.payload
            if "telemetry" in payload:
                # Never cache telemetry: it is wall-clock data specific
                # to this run, and the store must keep serving the
                # byte-deterministic payload a plain run would produce.
                payload = {
                    k: v for k, v in payload.items() if k != "telemetry"
                }
            store.put(outcome.job.key, payload)
        if _obs.enabled():
            _obs.get_registry().counter(
                "repro_campaign_jobs_total",
                "Campaign jobs resolved, by outcome status.",
                ("status",),
            ).labels(outcome.status).inc()
        if progress is not None:
            progress(outcome, len(outcomes), n_total)
        if dashboard is not None:
            dashboard.on_outcome(outcome, len(outcomes), n_total)

    pending: List[Job] = []
    for job in jobs:
        payload = None if refresh else _fresh_payload(store, job)
        if payload is not None:
            resolve(JobOutcome(job, "cached", payload=payload))
        else:
            pending.append(job)

    if workers == 0:
        cssg_memo: Dict = {}
        last_group: Optional[str] = None
        for job in pending:
            if job.group != last_group:  # bound memory to one circuit
                cssg_memo = {}
                last_group = job.group
            t0 = time.perf_counter()
            try:
                if incremental and store is not None:
                    payload, live, inc = execute_job_incremental(
                        job, store, cssg_memo, refresh=refresh
                    )
                    note_incremental_stats(inc)
                    resolve(
                        JobOutcome(
                            job,
                            "ran",
                            payload=payload,
                            seconds=time.perf_counter() - t0,
                            live=live,
                            incremental=(
                                None if inc is None else inc.to_json_dict()
                            ),
                        )
                    )
                else:
                    result = execute_job(job, cssg_memo)
                    resolve(
                        JobOutcome(
                            job,
                            "ran",
                            payload=result.to_json_dict(),
                            seconds=time.perf_counter() - t0,
                            live=result,
                        )
                    )
            except Exception as exc:
                resolve(
                    JobOutcome(
                        job,
                        "failed",
                        error=f"{type(exc).__name__}: {exc}",
                        seconds=time.perf_counter() - t0,
                    )
                )
    elif pending:
        _run_pool(
            pending, min(workers, len(pending)), timeout, resolve,
            hang_timeout, collect_telemetry, dashboard,
            incremental=incremental and store is not None,
            cache_root=str(store.root) if store is not None else None,
            refresh=refresh,
        )

    return CampaignReport(
        jobs=jobs,
        outcomes=[outcomes[j.key] for j in jobs],
        wall_seconds=time.perf_counter() - start,
        workers=workers,
    )


def _run_pool(
    pending: List[Job],
    workers: int,
    timeout: float,
    resolve: Callable[[JobOutcome], None],
    hang_timeout: Optional[float] = None,
    collect_telemetry: bool = False,
    dashboard=None,
    incremental: bool = False,
    cache_root: Optional[str] = None,
    refresh: bool = False,
) -> None:
    pool = _Pool(
        pending, workers, timeout, hang_timeout, collect_telemetry,
        incremental=incremental, cache_root=cache_root, refresh=refresh,
    )
    unresolved = {j.key for j in pending}
    try:
        for _ in range(workers):
            pool.spawn()
        pool.dispatch_all()
        last_police = time.monotonic()
        while unresolved:
            try:
                event = pool.event_q.get(timeout=0.2)
            except queue_mod.Empty:
                event = None
            # Police on a wall-clock cadence, not only on queue-empty:
            # with many fast jobs the event stream never pauses, which
            # would let a dead or hung worker go unnoticed for the whole
            # campaign.
            if time.monotonic() - last_police >= 0.2:
                _police_workers(pool, unresolved, resolve)
                pool.dispatch_all()
                last_police = time.monotonic()
            if event is None:
                continue
            kind, wid, key, seconds = event[0], event[1], event[2], event[3]
            if kind == "beat":
                if wid in pool.procs:
                    pool.note_beat(wid)
                if dashboard is not None:
                    dashboard.on_beat(
                        wid, key, event[4] if len(event) > 4 else None
                    )
                continue
            if kind == "batch-done":
                if wid in pool.procs:
                    pool.note_event(wid, None)
                    pool.dispatch(wid)
                continue
            if wid in pool.procs:
                pool.note_event(wid, key)
            if key in unresolved:
                unresolved.discard(key)
                job = pool.job_of[key]
                if kind == "done":
                    payload = event[4]
                    inc = event[5] if len(event) > 5 else None
                    note_incremental_stats(inc)
                    _absorb_job_telemetry(pool, key, seconds, payload)
                    resolve(
                        JobOutcome(
                            job, "ran", payload=payload, seconds=seconds,
                            incremental=inc,
                        )
                    )
                else:
                    _absorb_job_telemetry(pool, key, seconds, None)
                    resolve(JobOutcome(job, "failed", error=event[4], seconds=seconds))
    finally:
        pool.shutdown()


def _absorb_job_telemetry(
    pool: _Pool, key: str, seconds: float, payload: Optional[Dict]
) -> None:
    """Fold one finished worker job into the campaign-wide registry:
    merge the per-job metrics snapshot the flow attached to the payload
    (exactly once per job — beats carry in-flight snapshots for the
    dashboard but are never merged), and record the run/queue-wait
    split.  Queue wait is parent-side arithmetic: seconds since the
    job's *batch* was dispatched, minus the run time the worker
    reports."""
    if not _obs.enabled():
        return
    reg = _obs.get_registry()
    telemetry = (payload or {}).get("telemetry") or {}
    snap = telemetry.get("metrics")
    if snap:
        reg.merge_snapshot(snap)
    reg.histogram(
        "repro_campaign_job_seconds", "Per-job ATPG run time (worker-side)."
    ).observe(seconds)
    dispatched = pool.dispatched_at.pop(key, None)
    if dispatched is not None:
        wait = (time.monotonic() - dispatched) - seconds
        reg.histogram(
            "repro_campaign_queue_wait_seconds",
            "Seconds a job spent dispatched but not running "
            "(waiting behind its batch).",
        ).observe(max(0.0, wait))


def _police_workers(pool: _Pool, unresolved, resolve) -> None:
    """Detect dead, over-deadline, and silent (hung) workers; replace
    them.  The hard ``timeout`` clock runs from the last completion
    event; the ``hang_timeout`` clock from the last sign of life of any
    kind, so heartbeat-emitting slow jobs survive until the hard budget
    while truly silent ones are culled early."""
    now = time.monotonic()
    for wid in list(pool.procs):
        proc = pool.procs[wid]
        busy = bool(pool.worker_remaining.get(wid))
        timed_out = (
            busy and now - pool.worker_last_event.get(wid, 0.0) > pool.timeout
        )
        hung = (
            busy
            and pool.hang_timeout is not None
            and now - pool.worker_last_beat.get(wid, 0.0) > pool.hang_timeout
        )
        if proc.is_alive() and not timed_out and not hung:
            continue
        if not proc.is_alive():
            status = "crashed"
        elif timed_out:
            status = "timeout"
        else:
            status = "hung"
        leftovers = pool.drop_worker(wid, kill=True)
        if leftovers:
            # In-order processing: the first job without a completion
            # event is the one that was running when the worker died.
            culprit, rest = leftovers[0], leftovers[1:]
            if culprit.key in unresolved:
                unresolved.discard(culprit.key)
                if status == "timeout":
                    message = f"exceeded per-job timeout ({pool.timeout:.0f}s)"
                elif status == "hung":
                    message = (
                        "no heartbeat for "
                        f"{pool.hang_timeout:.0f}s (presumed hung)"
                    )
                else:
                    message = "worker process died"
                resolve(JobOutcome(culprit, status, error=message))
            pool.requeue_first(rest)
        if unresolved and len(pool.procs) < pool.target_workers:
            pool.spawn()
            pool.n_respawns += 1
            if _obs.enabled():
                _obs.get_registry().counter(
                    "repro_campaign_worker_respawns_total",
                    "Workers replaced after dying, timing out, or hanging.",
                    ("reason",),
                ).labels(status).inc()
