"""Campaign orchestration: corpus-scale ATPG runs, cached and sharded.

The paper's Tables 1 and 2 are *campaigns* — dozens of (circuit, fault
model, options) ATPG runs whose numbers are aggregated into one report.
This package runs such campaigns as first-class objects:

* :mod:`repro.campaign.plan` — expand a :class:`CampaignSpec`
  (benchmarks x fault model x synthesis style x seed x k) into
  independent :class:`Job` s, each with a stable content hash over the
  source netlist bytes, the options, and the code version;
* :mod:`repro.campaign.store` — a content-addressed on-disk cache of
  serialized :class:`~repro.core.atpg.AtpgResult` JSON, so a job whose
  inputs haven't changed is never recomputed and interrupted campaigns
  resume where they stopped;
* :mod:`repro.campaign.cohort` — the incremental layer beneath the
  whole-job cache: fault cohorts keyed by structural cone of influence,
  per-cohort partial payloads, and the merge that reassembles a full
  result so an edit re-runs only the cohorts its cone changes touch;
* :mod:`repro.campaign.runner` — shard jobs across a ``multiprocessing``
  worker pool (per-job timeouts, crash isolation, live progress), or run
  them in-process with ``workers=0`` for honest single-stream timings;
* :mod:`repro.campaign.artifacts` — aggregate job results into the
  paper's table layout plus machine-readable JSON/CSV artifacts.

The ``repro-campaign`` CLI (:func:`repro.cli.campaign_main`) and the
table benchmarks are thin wrappers over these four layers.
"""

from repro.campaign.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    campaign_manifest,
    rows_from_outcomes,
    write_artifacts,
)
from repro.campaign.cohort import (
    Cohort,
    IncrementalStats,
    cohort_key,
    cohort_salt,
    cone_of,
    partition,
)
from repro.campaign.plan import (
    CODE_VERSION,
    CampaignSpec,
    Job,
    cohort_plan,
    expand,
    job_key,
    source_fingerprint,
)
from repro.campaign.runner import (
    CampaignReport,
    JobOutcome,
    execute_job,
    execute_job_incremental,
    load_job_circuit,
    run_campaign,
)
from repro.campaign.store import ResultStore, default_cache_dir

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "CODE_VERSION",
    "CampaignReport",
    "CampaignSpec",
    "Cohort",
    "IncrementalStats",
    "Job",
    "JobOutcome",
    "ResultStore",
    "campaign_manifest",
    "cohort_key",
    "cohort_plan",
    "cohort_salt",
    "cone_of",
    "default_cache_dir",
    "execute_job",
    "execute_job_incremental",
    "expand",
    "job_key",
    "load_job_circuit",
    "partition",
    "rows_from_outcomes",
    "run_campaign",
    "source_fingerprint",
    "write_artifacts",
]
