"""Campaign artifacts: paper-shaped tables and machine-readable files.

``rows_from_outcomes`` pairs each circuit variant's output- and
input-model results into the :class:`~repro.core.report.TableRow` shape
of the paper's Tables 1/2 — straight from the cached JSON payloads, no
:class:`AtpgResult` reconstruction needed.  ``write_artifacts`` renders
one campaign as:

* ``table.txt`` — the human table (:func:`repro.core.report.format_table`);
* ``campaign.csv`` — the same rows via :func:`repro.core.report.to_csv`;
* ``campaign.json`` — the manifest: spec, per-job records (key, status,
  seconds, headline numbers), aggregated rows and totals, versioned by
  :data:`ARTIFACT_SCHEMA_VERSION`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.plan import CODE_VERSION, CampaignSpec
from repro.campaign.runner import CampaignReport, JobOutcome
from repro.core.report import (
    TableRow,
    format_model_counts,
    format_table,
    telemetry_columns,
    to_csv,
    to_json,
)

#: Version of the ``campaign.json`` manifest layout.
ARTIFACT_SCHEMA_VERSION = 1


def _row_name(outcome: JobOutcome) -> str:
    """The table-row label: the job display name minus the fault-model
    segment (both models fold into one row)."""
    job = outcome.job
    return job.name.replace(f"/{job.fault_model}", "", 1)


def row_from_payloads(
    name: str,
    out_payload: Optional[Dict],
    in_payload: Optional[Dict],
    extra_payloads: Optional[Dict[str, Dict]] = None,
) -> TableRow:
    """One table row from the serialized results of a variant's
    fault-model runs (any may be absent).  The two stuck-at runs keep
    their historical dedicated columns; other registered models
    (``extra_payloads``, keyed by model name) fold into the compact
    ``models`` column.  The stored ``n_total`` / ``n_covered`` fields
    are authoritative — the coverage arithmetic lives in
    :class:`AtpgResult`, not here."""
    extras = extra_payloads or {}
    anchor = in_payload or out_payload
    if anchor is None and extras:
        anchor = next(iter(extras.values()))
    cssg = (anchor or {}).get("cssg", {})
    models = format_model_counts(
        {m: (p["n_covered"], p["n_total"]) for m, p in extras.items()}
    )
    return TableRow(
        name=name,
        out_tot=out_payload["n_total"] if out_payload else 0,
        out_cov=out_payload["n_covered"] if out_payload else 0,
        in_tot=in_payload["n_total"] if in_payload else 0,
        in_cov=in_payload["n_covered"] if in_payload else 0,
        rnd=in_payload["n_random"] if in_payload else 0,
        three_ph=in_payload["n_three_phase"] if in_payload else 0,
        sim=in_payload["n_fault_sim"] if in_payload else 0,
        cpu=(out_payload["cpu_seconds"] if out_payload else 0.0)
        + (in_payload["cpu_seconds"] if in_payload else 0.0)
        + sum(p["cpu_seconds"] for p in extras.values()),
        cssg_method=cssg.get("method", ""),
        cssg_states=cssg.get("n_states", 0),
        cssg_edges=cssg.get("n_edges", 0),
        tcsg_states=cssg.get("n_tcsg_states", 0),
        peak_bdd_nodes=cssg.get("peak_bdd_nodes", 0),
        gc_passes=cssg.get("n_gc_passes", 0),
        reorders=cssg.get("n_reorders", 0),
        image_iters=cssg.get("n_image_iterations", 0),
        models=models,
        # Cached payloads never carry telemetry (the store keeps only
        # the canonical deterministic result), so these usually stay at
        # their defaults; fresh --dashboard runs may fill them.
        **telemetry_columns((in_payload or {}).get("telemetry")),
    )


def rows_from_outcomes(outcomes: Sequence[JobOutcome]) -> List[TableRow]:
    """Aggregate job outcomes into table rows, one per circuit variant
    (source x style x seed x k x CSSG method), in first-seen order.
    Jobs that failed contribute nothing; a variant with no successful
    job is dropped."""
    variants: Dict[Tuple, Dict[str, Dict]] = {}
    names: Dict[Tuple, str] = {}
    order: List[Tuple] = []
    for outcome in outcomes:
        if not outcome.ok or outcome.payload is None:
            continue
        job = outcome.job
        variant = (
            job.source, job.style, job.seed, job.k, job.options.cssg_method
        )
        if variant not in variants:
            variants[variant] = {}
            names[variant] = _row_name(outcome)
            order.append(variant)
        variants[variant][job.fault_model] = outcome.payload
    return [
        row_from_payloads(
            names[v],
            variants[v].get("output"),
            variants[v].get("input"),
            {
                m: p
                for m, p in variants[v].items()
                if m not in ("output", "input")
            },
        )
        for v in order
    ]


def campaign_manifest(
    spec: Optional[CampaignSpec], report: CampaignReport, title: str = "Campaign"
) -> Dict:
    """The machine-readable summary of one campaign run."""
    rows = rows_from_outcomes(report.outcomes)
    jobs = []
    for outcome in report.outcomes:
        record = {
            "name": outcome.job.name,
            "key": outcome.job.key,
            "source": outcome.job.source,
            "style": outcome.job.style,
            "fault_model": outcome.job.fault_model,
            "seed": outcome.job.seed,
            "k": outcome.job.k,
            "cssg_method": outcome.job.options.cssg_method,
            "status": outcome.status,
            "seconds": outcome.seconds,
            "error": outcome.error,
        }
        if outcome.payload is not None:
            record.update(
                n_total=outcome.payload["n_total"],
                n_covered=outcome.payload["n_covered"],
                n_undetectable=outcome.payload["n_undetectable"],
                n_aborted=outcome.payload["n_aborted"],
                n_tests=len(outcome.payload["tests"]),
            )
        if outcome.incremental is not None:
            record["incremental"] = dict(outcome.incremental)
        jobs.append(record)
    incremental = [o.incremental for o in report.outcomes if o.incremental]
    cohort_totals = (
        {
            "cohorts_total": sum(d.get("cohorts_total", 0) for d in incremental),
            "cohorts_reused": sum(
                d.get("cohorts_reused", 0) for d in incremental
            ),
            "cohorts_executed": sum(
                d.get("cohorts_executed", 0) for d in incremental
            ),
        }
        if incremental
        else None
    )
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "title": title,
        "spec": spec.to_json_dict() if spec is not None else None,
        "summary": {
            "n_jobs": len(report.jobs),
            "n_ran": report.n_ran,
            "n_cached": report.n_cached,
            "n_failed": report.n_failed,
            "wall_seconds": report.wall_seconds,
            "workers": report.workers,
            #: None unless some job ran incrementally (see
            #: docs/incremental.md); sums cohort reuse across such jobs.
            "incremental": cohort_totals,
        },
        "jobs": jobs,
        "rows": [row.to_dict() for row in rows],
    }


def write_artifacts(
    out_dir: Union[str, Path],
    report: CampaignReport,
    spec: Optional[CampaignSpec] = None,
    title: str = "Campaign",
) -> Dict[str, Path]:
    """Write ``table.txt``, ``campaign.csv`` and ``campaign.json`` under
    ``out_dir``; returns the paths keyed by artifact name."""
    import json

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = rows_from_outcomes(report.outcomes)
    paths = {
        "table": out_dir / "table.txt",
        "csv": out_dir / "campaign.csv",
        "json": out_dir / "campaign.json",
    }
    paths["table"].write_text(format_table(rows, title=title) + "\n")
    paths["csv"].write_text(to_csv(rows))
    manifest = campaign_manifest(spec, report, title=title)
    paths["json"].write_text(json.dumps(manifest, indent=2) + "\n")
    # to_json and the manifest rows share TableRow.to_dict, so the CSV,
    # the manifest and this sidecar can never drift apart.
    (out_dir / "rows.json").write_text(to_json(rows) + "\n")
    paths["rows"] = out_dir / "rows.json"
    return paths
