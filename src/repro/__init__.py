"""repro — synchronous test pattern generation for asynchronous circuits.

A from-scratch implementation of Roig, Cortadella, Peña and Pastor,
"Automatic Generation of Synchronous Test Patterns for Asynchronous
Circuits", DAC 1997.

Public API quick map:

* circuits — :class:`Circuit`, :func:`parse_netlist`, :func:`load_netlist`
* faults — :class:`Fault`, :func:`fault_universe`, and the fault-model
  registry (:class:`FaultModel`, :func:`get_model`, :func:`model_names`,
  :func:`register_model`): ``input`` / ``output`` stuck-at, ``bridging``
  wired-AND/OR shorts, ``transition`` slow-to-rise/fall
* simulation — :mod:`repro.sim` (ternary + parallel fault simulation)
* state graphs — :func:`settle_report`, :func:`build_cssg` (with the
  :class:`CssgBuilder` method registry: exact / ternary / hybrid /
  symbolic), :class:`SymbolicTcsg`
* BDD kernel — :class:`BddManager` (complement edges, unified ITE, GC,
  in-place sifting; :class:`LegacyBddManager` is the seed oracle)
* STGs — :func:`parse_stg`, :func:`load_stg`, :func:`build_state_graph`,
  :func:`synthesize`
* ATPG flow — :class:`Flow` (staged pipeline; ``Flow.default()`` is the
  paper's collapse → random TPG → 3-phase → compaction), :class:`Budget`
  (deadline + per-fault caps), :class:`RunContext`, the typed event
  stream (:class:`EventBus`, :mod:`repro.flow.events`) and its consumers
  (:class:`ProgressLine`, :class:`TraceWriter`, :class:`Heartbeat`);
  options/results — :class:`AtpgOptions`, :class:`AtpgResult`
  (:class:`AtpgEngine` survives as a deprecated facade)
* campaigns — :class:`CampaignSpec`, :func:`expand`, :func:`run_campaign`,
  :class:`ResultStore` (sharded corpus runs with a content-addressed
  cache and per-job flow heartbeats)
* benchmarks — :func:`load_benchmark`, :func:`benchmark_names`,
  :data:`TABLE1_NAMES`, :data:`TABLE2_NAMES`
"""

from repro.circuit import (
    Circuit,
    Expr,
    Fault,
    fault_universe,
    input_fault_universe,
    load_netlist,
    netlist_to_text,
    output_fault_universe,
    parse_expr,
    parse_netlist,
)
from repro.faultmodels import (
    FaultModel,
    get_model,
    model_for_kind,
    model_names,
    register_model,
)
from repro.core import (
    AtpgEngine,
    AtpgOptions,
    AtpgResult,
    Test,
    TestSet,
    format_table,
    result_row,
)
from repro.campaign import (
    CampaignReport,
    CampaignSpec,
    Job,
    JobOutcome,
    ResultStore,
    expand,
    run_campaign,
    write_artifacts,
)
from repro.flow import (
    Budget,
    EventBus,
    Flow,
    Heartbeat,
    ProgressLine,
    RunContext,
    Stage,
    TraceWriter,
)
from repro.bdd import BddManager, LegacyBddManager
from repro.sgraph import (
    CSSG_METHODS,
    Cssg,
    CssgBuilder,
    SettleReport,
    build_cssg,
    settle_report,
)
from repro.sgraph.symbolic import SymbolicTcsg
from repro.stg import (
    Stg,
    StateGraph,
    build_state_graph,
    check_csc,
    load_stg,
    parse_stg,
    synthesize,
)
from repro.benchmarks_data import (
    FIGURE_NETS,
    TABLE1_NAMES,
    TABLE2_NAMES,
    benchmark_names,
    load_benchmark,
    load_benchmark_stg,
    load_figure_circuit,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Expr",
    "Fault",
    "FaultModel",
    "fault_universe",
    "get_model",
    "model_for_kind",
    "model_names",
    "register_model",
    "input_fault_universe",
    "output_fault_universe",
    "parse_expr",
    "parse_netlist",
    "load_netlist",
    "netlist_to_text",
    "AtpgEngine",
    "AtpgOptions",
    "AtpgResult",
    "Budget",
    "EventBus",
    "Flow",
    "Heartbeat",
    "ProgressLine",
    "RunContext",
    "Stage",
    "TraceWriter",
    "Test",
    "TestSet",
    "format_table",
    "result_row",
    "CampaignReport",
    "CampaignSpec",
    "Job",
    "JobOutcome",
    "ResultStore",
    "expand",
    "run_campaign",
    "write_artifacts",
    "BddManager",
    "LegacyBddManager",
    "CSSG_METHODS",
    "Cssg",
    "CssgBuilder",
    "SettleReport",
    "build_cssg",
    "settle_report",
    "SymbolicTcsg",
    "Stg",
    "StateGraph",
    "build_state_graph",
    "check_csc",
    "parse_stg",
    "load_stg",
    "synthesize",
    "TABLE1_NAMES",
    "TABLE2_NAMES",
    "FIGURE_NETS",
    "benchmark_names",
    "load_benchmark",
    "load_benchmark_stg",
    "load_figure_circuit",
    "ReproError",
    "__version__",
]
