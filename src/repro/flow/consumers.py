"""Event-stream consumers: progress line, JSONL trace, heartbeats.

Three ready-made listeners for the flow's :class:`EventBus`, all fed by
the same typed stream:

* :class:`ProgressLine` — a live single-line status on a TTY-ish stream
  (``repro-atpg --progress``);
* :class:`TraceWriter` — one JSON object per event, appended to a
  ``.jsonl`` file (``repro-atpg --trace out.jsonl``); replayable by any
  tool that reads JSON lines;
* :class:`Heartbeat` — a throttled liveness callback; the campaign
  runner's workers use it to tell the parent "slow but alive", so a
  silent worker can be distinguished from a busy one.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, IO, Optional, Union

from repro.flow.events import (
    BudgetExhausted,
    FaultClassified,
    FlowEvent,
    ProgressTick,
    StageFinished,
    StageStarted,
    TestAdded,
)

__all__ = ["ProgressLine", "TraceWriter", "Heartbeat"]


class ProgressLine:
    """Rewrites one status line per event batch: stage, progress,
    running totals.  Call :meth:`close` (or use as a context manager)
    to terminate the line with a newline."""

    def __init__(self, stream: Optional[IO] = None):
        self.stream = stream if stream is not None else sys.stderr
        self.stage = ""
        self.done = 0
        self.total = 0
        self.covered = 0
        self.tests = 0
        self.aborted = 0
        self._dirty = False

    def __call__(self, event: FlowEvent) -> None:
        if isinstance(event, StageStarted):
            self.stage = event.stage
            self.done = self.total = 0
        elif isinstance(event, ProgressTick):
            self.stage = event.stage
            self.done, self.total = event.done, event.total
        elif isinstance(event, FaultClassified):
            if event.status == "detected":
                self.covered += 1
            elif event.status == "aborted":
                self.aborted += 1
        elif isinstance(event, TestAdded):
            self.tests = event.index + 1
        elif isinstance(event, BudgetExhausted):
            self.stage = f"{event.stage} (budget!)"
        elif isinstance(event, StageFinished):
            self.done = self.total
        self._render()

    def _render(self) -> None:
        progress = f" {self.done}/{self.total}" if self.total else ""
        line = (
            f"\r[{self.stage or 'setup'}]{progress} "
            f"covered={self.covered} tests={self.tests} aborted={self.aborted}"
        )
        self.stream.write(line.ljust(66))
        self.stream.flush()
        self._dirty = True

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False

    def __enter__(self) -> "ProgressLine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceWriter:
    """Writes every event as one JSON line: ``{"seq": N, "t": secs,
    "event": "FaultClassified", ...}``.  A path target is truncated on
    open; pass an open handle to control the file mode.  ``t`` is
    seconds since the writer was created (wall clock — strip it when
    diffing traces)."""

    def __init__(self, target: Union[str, IO]):
        if isinstance(target, str):
            self._handle: IO = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._handle = target
            self._owns = False
        self._seq = 0
        self._t0 = time.perf_counter()

    def __call__(self, event: FlowEvent) -> None:
        doc = {"seq": self._seq, "t": round(time.perf_counter() - self._t0, 6)}
        doc.update(event.to_json_dict())
        self._handle.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._seq += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Heartbeat:
    """Throttled liveness relay: forwards at most one beat per
    ``min_interval`` seconds to ``send``, no matter how dense the event
    stream is.  The campaign worker wires ``send`` to its event queue so
    the parent can tell a slow-but-alive job from a hung one."""

    def __init__(self, send: Callable[[], None], min_interval: float = 0.5):
        self.send = send
        self.min_interval = min_interval
        # -inf, not 0.0: time.monotonic() counts from an arbitrary epoch
        # (often boot), so on a freshly booted host ``now - 0.0`` can be
        # smaller than min_interval and even the first beat would be
        # swallowed.  The first event must always get through.
        self._last = float("-inf")

    def __call__(self, event: FlowEvent) -> None:
        now = time.monotonic()
        if now - self._last >= self.min_interval:
            self._last = now
            self.send()
