"""Event-stream consumers: progress line, JSONL trace, heartbeats.

Three ready-made listeners for the flow's :class:`EventBus`, all fed by
the same typed stream:

* :class:`ProgressLine` — a live single-line status on a TTY-ish stream
  (``repro-atpg --progress``);
* :class:`TraceWriter` — one JSON object per event, appended to a
  ``.jsonl`` file (``repro-atpg --trace out.jsonl``); replayable by any
  tool that reads JSON lines;
* :class:`Heartbeat` — a throttled liveness callback; the campaign
  runner's workers use it to tell the parent "slow but alive", so a
  silent worker can be distinguished from a busy one.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Callable, IO, Optional, Union

from repro.flow.events import (
    BudgetExhausted,
    FaultClassified,
    FlowEvent,
    ProgressTick,
    StageFinished,
    StageStarted,
    TestAdded,
)

__all__ = ["ProgressLine", "TraceWriter", "Heartbeat"]


class ProgressLine:
    """A live status line: stage, progress, running totals.

    On a TTY the line is rewritten in place (``\\r``) on every event.
    When the stream is *not* a terminal (piped output, CI logs) the
    carriage-return dance would pollute the log with one mangled
    mega-line, so the consumer switches to periodic plain lines
    instead: one line per stage boundary plus at most one line per
    ``plain_interval`` seconds in between, each newline-terminated.
    Call :meth:`close` (or use as a context manager) to terminate the
    output with a final status line / newline."""

    def __init__(self, stream: Optional[IO] = None, plain_interval: float = 2.0):
        self.stream = stream if stream is not None else sys.stderr
        self.plain_interval = plain_interval
        self.stage = ""
        self.done = 0
        self.total = 0
        self.covered = 0
        self.tests = 0
        self.aborted = 0
        self._dirty = False
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_plain = float("-inf")

    def __call__(self, event: FlowEvent) -> None:
        boundary = False
        if isinstance(event, StageStarted):
            self.stage = event.stage
            self.done = self.total = 0
            boundary = True
        elif isinstance(event, ProgressTick):
            self.stage = event.stage
            self.done, self.total = event.done, event.total
        elif isinstance(event, FaultClassified):
            if event.status == "detected":
                self.covered += 1
            elif event.status == "aborted":
                self.aborted += 1
        elif isinstance(event, TestAdded):
            self.tests = event.index + 1
        elif isinstance(event, BudgetExhausted):
            self.stage = f"{event.stage} (budget!)"
            boundary = True
        elif isinstance(event, StageFinished):
            self.done = self.total
            boundary = True
        self._render(boundary)

    def _line(self) -> str:
        progress = f" {self.done}/{self.total}" if self.total else ""
        return (
            f"[{self.stage or 'setup'}]{progress} "
            f"covered={self.covered} tests={self.tests} aborted={self.aborted}"
        )

    def _render(self, boundary: bool = False) -> None:
        if self._tty:
            self.stream.write(("\r" + self._line()).ljust(66))
            self.stream.flush()
            self._dirty = True
            return
        now = time.monotonic()
        if not boundary and now - self._last_plain < self.plain_interval:
            return
        self._last_plain = now
        self.stream.write(self._line() + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self._tty:
            if self._dirty:
                self.stream.write("\n")
                self.stream.flush()
                self._dirty = False
        else:
            # Final state line, so a piped consumer always sees the
            # closing totals even if the last periodic line was stale.
            self.stream.write(self._line() + "\n")
            self.stream.flush()

    def __enter__(self) -> "ProgressLine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceWriter:
    """Writes every event as one JSON line: ``{"seq": N, "t": secs,
    "event": "FaultClassified", ...}``.  ``t`` is seconds since the
    writer was created (wall clock — strip it when diffing traces).

    A *path* target gets the same atomic-write discipline as the
    campaign result store: records accumulate in a same-directory temp
    file (binary mode, so byte offsets are exact), a watermark tracks
    the end of the last *complete* record, and :meth:`close` truncates
    to the watermark before ``os.replace``-ing the temp file into
    place.  A crash mid-run leaves no file at the target path; an
    exception mid-record (disk full, encoding error) can never publish
    a truncated JSON line — the half-record is cut at close.  The file
    is flushed at every ``StageFinished``, so the temp file on disk is
    near-current during long runs.

    Pass an open *handle* to keep full control of the file: records are
    written through directly (non-atomic), and :meth:`close` flushes
    without closing or replacing anything."""

    def __init__(self, target: Union[str, IO]):
        if isinstance(target, str):
            directory = os.path.dirname(os.path.abspath(target))
            fd, self._tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".trace-", suffix=".tmp"
            )
            self._handle: IO = os.fdopen(fd, "wb")
            self._final_path: Optional[str] = target
            self._owns = True
        else:
            self._handle = target
            self._tmp_path = None
            self._final_path = None
            self._owns = False
        self._seq = 0
        self._t0 = time.perf_counter()
        self._complete = 0  # byte watermark after the last full record
        self._closed = False

    def __call__(self, event: FlowEvent) -> None:
        doc = {"seq": self._seq, "t": round(time.perf_counter() - self._t0, 6)}
        doc.update(event.to_json_dict())
        line = json.dumps(doc, separators=(",", ":")) + "\n"
        if self._owns:
            self._handle.write(line.encode("utf-8"))
            self._complete = self._handle.tell()
        else:
            self._handle.write(line)
        self._seq += 1
        if isinstance(event, StageFinished):
            self._handle.flush()

    def close(self) -> None:
        """Publish the trace.  Safe to call after an error and more
        than once; the published file always ends on a record
        boundary."""
        if self._closed:
            return
        self._closed = True
        if not self._owns:
            self._handle.flush()
            return
        try:
            self._handle.flush()
            self._handle.truncate(self._complete)
            self._handle.close()
            os.replace(self._tmp_path, self._final_path)
        except BaseException:
            try:
                if not self._handle.closed:
                    self._handle.close()
                os.unlink(self._tmp_path)
            except OSError:
                pass
            raise

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Heartbeat:
    """Throttled liveness relay: forwards at most one beat per
    ``min_interval`` seconds to ``send``, no matter how dense the event
    stream is.  The campaign worker wires ``send`` to its event queue so
    the parent can tell a slow-but-alive job from a hung one."""

    def __init__(self, send: Callable[[], None], min_interval: float = 0.5):
        self.send = send
        self.min_interval = min_interval
        # -inf, not 0.0: time.monotonic() counts from an arbitrary epoch
        # (often boot), so on a freshly booted host ``now - 0.0`` can be
        # smaller than min_interval and even the first beat would be
        # swallowed.  The first event must always get through.
        self._last = float("-inf")

    def __call__(self, event: FlowEvent) -> None:
        now = time.monotonic()
        if now - self._last >= self.min_interval:
            self._last = now
            self.send()
