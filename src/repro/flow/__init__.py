"""The staged ATPG pipeline API.

The paper's flow (§2, §5) as a composable pipeline instead of a
monolith:

* :mod:`repro.flow.flow` — :class:`Flow`: an ordered stage list;
  ``Flow.default()`` is collapse → random TPG → 3-phase (+ interleaved
  fault-sim credit) → compaction;
* :mod:`repro.flow.stages` — the :class:`Stage` protocol and the
  built-in stages; write your own by implementing ``name`` /
  ``enabled(ctx)`` / ``run(ctx)``;
* :mod:`repro.flow.context` — :class:`RunContext`: the circuit, CSSG,
  fault ledger, test set, seeded RNG and budget every stage shares;
* :mod:`repro.flow.budget` — :class:`Budget`: wall-clock deadline plus
  per-fault effort caps, honored cooperatively (a bounded run yields a
  valid partial result, remainder ``aborted``/``"budget"``);
* :mod:`repro.flow.events` — the typed event stream
  (``StageStarted`` … ``BudgetExhausted``) and :class:`EventBus`;
* :mod:`repro.flow.consumers` — ready-made listeners:
  :class:`ProgressLine`, :class:`TraceWriter`, :class:`Heartbeat`.
"""

from repro.flow.budget import (
    Budget,
    clamp_deadline,
    REASON_ACTIVATION,
    REASON_BUDGET,
    REASON_PRODUCT_STATES,
)
from repro.flow.consumers import Heartbeat, ProgressLine, TraceWriter
from repro.flow.context import REASON_UNPROCESSED, RunContext
from repro.flow.events import (
    BudgetExhausted,
    EventBus,
    FaultClassified,
    FlowEvent,
    ProgressTick,
    StageFinished,
    StageStarted,
    TestAdded,
)
from repro.flow.flow import DEFAULT_STAGE_NAMES, Flow
from repro.flow.stages import (
    CollapseStage,
    CompactionStage,
    RandomTpgStage,
    Stage,
    ThreePhaseStage,
    fault_simulate,
)

__all__ = [
    "Budget",
    "clamp_deadline",
    "REASON_ACTIVATION",
    "REASON_BUDGET",
    "REASON_PRODUCT_STATES",
    "REASON_UNPROCESSED",
    "Heartbeat",
    "ProgressLine",
    "TraceWriter",
    "RunContext",
    "BudgetExhausted",
    "EventBus",
    "FaultClassified",
    "FlowEvent",
    "ProgressTick",
    "StageFinished",
    "StageStarted",
    "TestAdded",
    "DEFAULT_STAGE_NAMES",
    "Flow",
    "CollapseStage",
    "CompactionStage",
    "RandomTpgStage",
    "Stage",
    "ThreePhaseStage",
    "fault_simulate",
]
