"""Run budgets: wall-clock deadline plus per-fault effort caps.

A :class:`Budget` travels with the :class:`~repro.flow.context.RunContext`
and is honored *cooperatively*: stages poll :meth:`Budget.expired` at
their natural work boundaries (between random walks, between 3-phase
faults) and wind down cleanly when the deadline passes, so a bounded run
always yields a valid partial :class:`~repro.core.atpg.AtpgResult` with
the untried remainder classified ``aborted`` / reason ``"budget"``.

The per-fault caps (``max_product_states``, ``max_activation_tries``)
bound the deterministic generator's effort on any single fault; the
deadline bounds the whole run.  ``clock`` is injectable so tests can
drive expiry deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "Budget",
    "clamp_deadline",
    "REASON_BUDGET",
    "REASON_PRODUCT_STATES",
    "REASON_ACTIVATION",
]

#: Abort reasons recorded in :attr:`repro.core.atpg.FaultStatus.reason`.
REASON_BUDGET = "budget"  #: the run's wall-clock deadline expired
REASON_PRODUCT_STATES = "product-states"  #: per-fault product-state cap hit
REASON_ACTIVATION = "activation-tries"  #: activation-target cap hit


def clamp_deadline(
    requested: Optional[float], ceiling: Optional[float]
) -> Optional[float]:
    """The wall-clock deadline a request may actually have.

    ``None`` means unbounded on either side: no ceiling passes the
    request through, no request inherits the ceiling.  This is how a
    multi-tenant front end (``repro-serve``) turns the cooperative run
    budget into a per-request QoS limit — the clamped value goes into
    :attr:`~repro.core.atpg.AtpgOptions.deadline_seconds` and from
    there into the ordinary :class:`Budget`.

    >>> clamp_deadline(None, None) is None
    True
    >>> clamp_deadline(5.0, None)
    5.0
    >>> clamp_deadline(None, 30.0)
    30.0
    >>> clamp_deadline(120.0, 30.0)
    30.0
    """
    if ceiling is None:
        return requested
    if requested is None:
        return ceiling
    return min(requested, ceiling)


@dataclass
class Budget:
    """Cooperative limits for one flow run.

    ``deadline_seconds=None`` means unbounded wall-clock.  The clock
    starts at :meth:`start` (called by ``Flow.run`` before any work,
    CSSG construction included).
    """

    deadline_seconds: Optional[float] = None
    max_product_states: int = 200_000
    max_activation_tries: int = 8
    clock: Callable[[], float] = field(
        default=time.perf_counter, repr=False, compare=False
    )
    _t0: Optional[float] = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_options(options) -> "Budget":
        """The budget an :class:`~repro.core.atpg.AtpgOptions` implies."""
        return Budget(
            deadline_seconds=options.deadline_seconds,
            max_product_states=options.max_product_states,
            max_activation_tries=options.max_activation_tries,
        )

    def start(self) -> "Budget":
        self._t0 = self.clock()
        return self

    def elapsed(self) -> float:
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when there is no deadline."""
        if self.deadline_seconds is None:
            return None
        return max(0.0, self.deadline_seconds - self.elapsed())

    def expired(self) -> bool:
        return (
            self.deadline_seconds is not None
            and self.elapsed() >= self.deadline_seconds
        )
