"""The staged ATPG pipeline: the public entry point of the flow API.

``Flow.default().run(circuit, options)`` is the paper's complete flow;
``Flow([...])`` composes any stage list over the same
:class:`~repro.flow.context.RunContext`.  ``run`` brackets every enabled
stage with ``StageStarted`` / ``StageFinished`` events (CSSG
construction included, as the pseudo-stage ``"cssg"``), starts the run
:class:`~repro.flow.budget.Budget` before any work, and finishes by
freezing the context into an :class:`~repro.core.atpg.AtpgResult`.

Listeners subscribe per run::

    result = Flow.default().run(
        circuit, options,
        listeners=[ProgressLine(), TraceWriter("out.jsonl")],
    )
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence

from repro.circuit.faults import Fault, fault_universe
from repro.circuit.netlist import Circuit
from repro.core.atpg import AtpgOptions, AtpgResult, cssg_for
from repro.flow.budget import Budget
from repro.flow.context import RunContext
from repro.flow.events import EventBus, Listener, StageFinished, StageStarted
from repro.flow.stages import (
    CollapseStage,
    CompactionStage,
    RandomTpgStage,
    Stage,
    ThreePhaseStage,
)
from repro.sgraph.cssg import Cssg

__all__ = ["Flow", "DEFAULT_STAGE_NAMES"]

#: Stage order of :meth:`Flow.default`, in pipeline position.  Campaign
#: job keys embed this (see :func:`repro.campaign.plan.job_key`) so a
#: change to the default pipeline invalidates cached results.
DEFAULT_STAGE_NAMES = ("collapse", "random-tpg", "three-phase", "compaction")


class Flow:
    """An ordered list of stages run over one shared context.

    ``Flow.default()`` is the paper's complete pipeline; ``Flow([...])``
    composes any objects implementing the :class:`Stage` protocol
    (``name`` / ``enabled(ctx)`` / ``run(ctx)``) over the same
    :class:`~repro.flow.context.RunContext`.  A partial flow still
    yields a complete result — unclassified faults come back
    ``aborted`` with reason ``"unprocessed"``.

    >>> from repro import AtpgOptions, Flow, load_benchmark
    >>> flow = Flow.default()
    >>> flow.stage_names
    ['collapse', 'random-tpg', 'three-phase', 'compaction']
    >>> result = flow.run(load_benchmark("dff"), AtpgOptions(seed=0))
    >>> result.coverage
    1.0

    The run accepts any registered fault model
    (``AtpgOptions(fault_model="bridging")``; see
    :mod:`repro.faultmodels`), an optional pre-built CSSG to share one
    construction across runs, per-run event listeners, and a budget
    override — see :meth:`run`.
    """

    def __init__(self, stages: Sequence[Stage]):
        self.stages: List[Stage] = list(stages)

    @staticmethod
    def default() -> "Flow":
        """The paper's pipeline; stages gate themselves on the options
        (``collapse`` / ``use_random_tpg`` / ``compact``), so one flow
        object serves every option combination."""
        return Flow(
            [
                CollapseStage(),
                RandomTpgStage(),
                ThreePhaseStage(),
                CompactionStage(),
            ]
        )

    @property
    def stage_names(self) -> List[str]:
        return [stage.name for stage in self.stages]

    def run(
        self,
        circuit: Circuit,
        options: Optional[AtpgOptions] = None,
        faults: Optional[Sequence[Fault]] = None,
        cssg: Optional[Cssg] = None,
        listeners: Iterable[Listener] = (),
        budget: Optional[Budget] = None,
    ) -> AtpgResult:
        """Run the pipeline on ``circuit`` and return the result.

        ``faults`` defaults to the full universe of
        ``options.fault_model``; ``cssg`` may be passed in to share one
        construction across runs (the campaign runner does).  ``budget``
        overrides the one ``options`` implies (deadline + per-fault
        caps) — mainly for tests that inject a fake clock.
        """
        from repro.obs import metrics as obs_metrics
        from repro.obs.trace import active as tracing_active, get_tracer

        opts = options if options is not None else AtpgOptions()
        bus = EventBus()
        for listener in listeners:
            bus.subscribe(listener)
        # Observability is ambient, never part of the call contract:
        # with metrics enabled the run also feeds a MetricsConsumer, and
        # every stage runs under a tracer span.  Both are observational
        # only — the event stream and the default serialized payload are
        # byte-identical with or without them; the opt-in `telemetry`
        # block below is the single exception.
        observing = obs_metrics.enabled() or tracing_active()
        if obs_metrics.enabled():
            from repro.obs.metrics import MetricsConsumer

            bus.subscribe(MetricsConsumer())
        tracer = get_tracer()
        stage_seconds: "dict" = {}
        start = time.perf_counter()
        run_budget = budget if budget is not None else Budget.from_options(opts)
        run_budget.start()
        if faults is None:
            faults = fault_universe(circuit, opts.fault_model)
        with tracer.span(
            "flow.run", circuit=circuit.name, fault_model=opts.fault_model
        ):
            if cssg is None:
                bus.emit(StageStarted("cssg", len(faults)))
                t0 = time.perf_counter()
                with tracer.span("stage.cssg"):
                    cssg = cssg_for(circuit, opts)
                stage_seconds["cssg"] = time.perf_counter() - t0
                bus.emit(
                    StageFinished(
                        "cssg",
                        time.perf_counter() - t0,
                        f"{cssg.n_states} states / {cssg.n_edges} edges "
                        f"[{cssg.method}]",
                    )
                )
            ctx = RunContext(
                circuit, opts, cssg, list(faults), bus=bus, budget=run_budget
            )
            for stage in self.stages:
                if not stage.enabled(ctx):
                    continue
                ctx.stage = stage.name
                bus.emit(StageStarted(stage.name, len(ctx.remaining())))
                t0 = time.perf_counter()
                with tracer.span(f"stage.{stage.name}"):
                    stage.run(ctx)
                stage_seconds[stage.name] = time.perf_counter() - t0
                detail = ""
                stats = ctx.stage_stats.get(stage.name)
                if stats:
                    detail = " ".join(
                        f"{key}={value}" for key, value in sorted(stats.items())
                    )
                bus.emit(
                    StageFinished(stage.name, time.perf_counter() - t0, detail)
                )
            ctx.stage = ""
            result = ctx.finish(time.perf_counter() - start)
        if observing:
            result.telemetry = self._telemetry_block(
                cssg, stage_seconds, obs_metrics
            )
        return result

    @staticmethod
    def _telemetry_block(cssg, stage_seconds, obs_metrics) -> dict:
        """The opt-in ``telemetry`` payload block: per-stage wall times,
        symbolic-kernel cache counters, and — with metrics armed — the
        run's registry snapshot.  Only attached when observability is
        active, so default runs keep their historical byte-exact
        payloads (and cache digests)."""
        block: "dict" = {
            "stage_seconds": {
                name: round(dt, 6) for name, dt in stage_seconds.items()
            }
        }
        stats = getattr(cssg, "stats", None)
        if stats is not None:
            block["bdd"] = {
                "cache_hits": getattr(stats, "n_cache_hits", 0),
                "cache_lookups": getattr(stats, "n_cache_lookups", 0),
                "peak_nodes": stats.peak_bdd_nodes,
                "gc_passes": stats.n_gc_passes,
            }
        if obs_metrics.enabled():
            block["metrics"] = obs_metrics.get_registry().snapshot()
        return block
