"""Typed flow events and the bus that carries them.

Every stage of a :class:`~repro.flow.flow.Flow` run narrates itself by
emitting events on the run's :class:`EventBus`:

* :class:`StageStarted` / :class:`StageFinished` — one pair per enabled
  stage, bracketing its work;
* :class:`FaultClassified` — a fault received its final verdict
  (detected / undetectable / aborted), with the phase and abort reason;
* :class:`TestAdded` — a test sequence entered the test set;
* :class:`ProgressTick` — periodic done/total progress inside a stage
  (per random walk, per 3-phase fault);
* :class:`BudgetExhausted` — the run budget ran out mid-stage; the
  remainder is classified ``aborted`` with reason ``"budget"``.

Events are frozen dataclasses with a stable :meth:`to_json_dict` form,
so the same stream feeds the ``repro-atpg --progress`` live line, the
``--trace out.jsonl`` structured trace, and the campaign runner's
per-job heartbeats.  The stream is **deterministic** for a fixed
(circuit, options, seed) — only the wall-clock fields
(:attr:`StageFinished.seconds`) vary between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List

from repro.circuit.faults import Fault

__all__ = [
    "FlowEvent",
    "StageStarted",
    "StageFinished",
    "FaultClassified",
    "TestAdded",
    "ProgressTick",
    "BudgetExhausted",
    "EventBus",
]


@dataclass(frozen=True)
class FlowEvent:
    """Base class: every event names the stage that emitted it."""

    stage: str

    def to_json_dict(self) -> Dict:
        """``{"event": <class name>, <field>: <json value>, ...}``."""
        doc: Dict = {"event": type(self).__name__}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Fault):
                value = value.to_json()
            doc[f.name] = value
        return doc


@dataclass(frozen=True)
class StageStarted(FlowEvent):
    """A stage began; ``n_remaining`` faults still lack a verdict."""

    n_remaining: int


@dataclass(frozen=True)
class StageFinished(FlowEvent):
    """A stage completed.  ``seconds`` is wall-clock (the one
    non-deterministic event field); ``detail`` is a short free-form
    stage summary (e.g. compaction stats)."""

    seconds: float
    detail: str = ""


@dataclass(frozen=True)
class FaultClassified(FlowEvent):
    """A fault received its final verdict."""

    fault: Fault
    status: str  #: "detected" / "undetectable" / "aborted"
    phase: str  #: "rnd" / "3-ph" / "sim" when detected
    reason: str  #: abort reason ("budget" / "product-states" / ...)


@dataclass(frozen=True)
class TestAdded(FlowEvent):
    """A test sequence was appended to the run's test set."""

    __test__ = False  # not a pytest class, despite the name

    index: int
    source: str  #: "random" / "3-phase"
    n_patterns: int
    n_faults: int


@dataclass(frozen=True)
class ProgressTick(FlowEvent):
    """Periodic progress inside a stage: ``done`` of ``total`` work
    units, ``covered`` faults detected so far across the whole run."""

    done: int
    total: int
    covered: int


@dataclass(frozen=True)
class BudgetExhausted(FlowEvent):
    """The run budget expired mid-stage; ``n_remaining`` faults will be
    classified ``aborted`` with reason ``"budget"``."""

    reason: str  #: what ran out ("deadline")
    n_remaining: int


Listener = Callable[[FlowEvent], None]


class EventBus:
    """Synchronous fan-out of flow events to subscribed listeners.

    Listeners are plain callables invoked in subscription order, on the
    thread that runs the flow.  Listeners are *isolated*: one that
    raises is unsubscribed after its first error and the exception is
    surfaced once as a :class:`RuntimeWarning` — the run completes and
    every other listener keeps receiving the full stream.  (Consumers
    doing fallible I/O still get exactly one warning naming them, so a
    broken trace file is visible without killing hours of ATPG.)

    Mid-run attach/detach is supported: :meth:`subscribe` and
    :meth:`unsubscribe` may be called while the flow is emitting — from
    inside a listener or from another thread (a serving front end
    detaching a disconnected client).  Each :meth:`emit` fans out to a
    snapshot of the subscription list, so a subscription added mid-emit
    takes effect from the *next* event and a detach never perturbs the
    other listeners' delivery.  :meth:`unsubscribe` is idempotent — a
    listener that already unsubscribed itself (or was dropped after
    raising) is a no-op to remove again.
    """

    def __init__(self) -> None:
        self._listeners: List[Listener] = []
        self.n_emitted = 0
        self.n_listener_errors = 0

    def subscribe(self, listener: Listener) -> Listener:
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Listener) -> bool:
        """Detach ``listener``; ``False`` if it was not subscribed."""
        try:
            self._listeners.remove(listener)
            return True
        except ValueError:
            return False

    def emit(self, event: FlowEvent) -> None:
        self.n_emitted += 1
        broken = None
        # Snapshot: listeners may (un)subscribe — themselves or others —
        # while this event fans out, without skipping anyone else.
        for listener in tuple(self._listeners):
            if listener not in self._listeners:
                continue  # detached earlier in this same emit
            try:
                listener(event)
            except Exception as exc:
                if broken is None:
                    broken = []
                broken.append((listener, exc))
        if broken is not None:
            import warnings

            for listener, exc in broken:
                self.n_listener_errors += 1
                self.unsubscribe(listener)
                warnings.warn(
                    f"event listener {listener!r} raised "
                    f"{type(exc).__name__}: {exc} on "
                    f"{type(event).__name__}; unsubscribed",
                    RuntimeWarning,
                    stacklevel=2,
                )
