"""The mutable state one flow run threads through its stages.

A :class:`RunContext` owns everything a stage may read or write: the
circuit, the CSSG, the full fault universe and the (possibly collapsed)
work list, the mutable fault ledger, the growing test set, the seeded
RNG, the run :class:`~repro.flow.budget.Budget`, and the
:class:`~repro.flow.events.EventBus`.  Stages communicate *only* through
the context — that is what makes them recomposable.

:meth:`RunContext.finish` freezes the ledger into an
:class:`~repro.core.atpg.AtpgResult`: collapsed equivalence classes are
expanded (members inherit their representative's verdict and test),
any fault no stage classified is marked ``aborted``/``"unprocessed"``
(so a partial or custom flow still yields a complete, valid result),
and the per-phase counters are tallied from the ledger.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.core.atpg import AtpgOptions, AtpgResult, FaultStatus
from repro.core.sequences import Test, TestSet
from repro.core.three_phase import ABORTED, DETECTED, UNDETECTABLE
from repro.flow.budget import Budget
from repro.flow.events import EventBus, FaultClassified, TestAdded
from repro.sgraph.cssg import Cssg

__all__ = ["RunContext", "REASON_UNPROCESSED"]

#: Reason for faults left unclassified by a custom (partial) stage list.
REASON_UNPROCESSED = "unprocessed"


class RunContext:
    """Shared state of one flow run; see the module docstring."""

    def __init__(
        self,
        circuit: Circuit,
        options: AtpgOptions,
        cssg: Cssg,
        faults: List[Fault],
        bus: Optional[EventBus] = None,
        budget: Optional[Budget] = None,
    ):
        self.circuit = circuit
        self.options = options
        self.cssg = cssg
        #: The full fault universe the result reports over.
        self.faults = list(faults)
        #: Faults the stages actually process (collapse may shrink it).
        #: A copy, so a stage mutating it in place cannot corrupt the
        #: reported universe.
        self.work_list: List[Fault] = list(self.faults)
        #: Maps every fault to its equivalence-class representative.
        self.representative_of: Dict[Fault, Fault] = {f: f for f in self.faults}
        #: The fault ledger: final verdicts, filled in as stages run.
        self.statuses: Dict[Fault, FaultStatus] = {}
        self.tests = TestSet(circuit)
        #: Seeded once per run; stages share the stream in stage order.
        self.rng = random.Random(options.seed)
        self.bus = bus if bus is not None else EventBus()
        self.budget = budget if budget is not None else Budget.from_options(options)
        #: Name of the stage currently running (set by ``Flow.run``).
        self.stage = ""
        #: Free-form per-stage statistics (e.g. compaction counts).
        self.stage_stats: Dict[str, Dict] = {}

    # -- ledger operations (each emits its event) ------------------------

    def classify(
        self,
        fault: Fault,
        status: str,
        phase: str = "",
        test_index: Optional[int] = None,
        reason: str = "",
    ) -> FaultStatus:
        """Record a fault's final verdict and emit ``FaultClassified``."""
        record = FaultStatus(fault, status, phase, test_index, reason)
        self.statuses[fault] = record
        self.bus.emit(FaultClassified(self.stage, fault, status, phase, reason))
        return record

    def add_test(self, test: Test) -> int:
        """Append a test, emit ``TestAdded``, return its index."""
        index = len(self.tests.tests)
        self.tests.add(test)
        self.bus.emit(
            TestAdded(
                self.stage, index, test.source, len(test.patterns), len(test.faults)
            )
        )
        return index

    def remaining(self) -> List[Fault]:
        """Work-list faults with no verdict yet, in work-list order."""
        return [f for f in self.work_list if f not in self.statuses]

    @property
    def n_covered(self) -> int:
        return sum(1 for s in self.statuses.values() if s.status == DETECTED)

    # -- result assembly -------------------------------------------------

    def finish(self, cpu_seconds: float) -> AtpgResult:
        """Freeze the ledger into a complete :class:`AtpgResult`."""
        # Expand collapsed equivalence classes: members inherit their
        # representative's verdict and test (identical faulty circuits).
        for fault in self.faults:
            if fault in self.statuses:
                continue
            rep = self.representative_of[fault]
            rep_status = self.statuses.get(rep)
            if rep_status is None:
                continue  # representative itself unclassified; see below
            self.statuses[fault] = FaultStatus(
                fault,
                rep_status.status,
                rep_status.phase,
                rep_status.test_index,
                rep_status.reason,
            )
            if rep_status.status == DETECTED and rep_status.test_index is not None:
                self.tests.tests[rep_status.test_index].faults.append(fault)
        # A custom flow may omit the classifying stages entirely; the
        # result must still cover the whole universe.
        for fault in self.faults:
            if fault not in self.statuses:
                self.statuses[fault] = FaultStatus(
                    fault, ABORTED, reason=REASON_UNPROCESSED
                )
        statuses = self.statuses
        return AtpgResult(
            circuit=self.circuit,
            options=self.options,
            cssg=self.cssg,
            faults=self.faults,
            statuses=statuses,
            tests=self.tests,
            cpu_seconds=cpu_seconds,
            n_random=sum(1 for s in statuses.values() if s.phase == "rnd"),
            n_three_phase=sum(1 for s in statuses.values() if s.phase == "3-ph"),
            n_fault_sim=sum(1 for s in statuses.values() if s.phase == "sim"),
            n_undetectable=sum(
                1 for s in statuses.values() if s.status == UNDETECTABLE
            ),
            n_aborted=sum(1 for s in statuses.values() if s.status == ABORTED),
        )
