"""Built-in flow stages: the paper's pipeline as composable parts.

Each stage implements the :class:`Stage` protocol — a ``name``, an
``enabled(ctx)`` gate (driven by :class:`~repro.core.atpg.AtpgOptions`),
and ``run(ctx)`` which reads and mutates the shared
:class:`~repro.flow.context.RunContext`.  The default pipeline is

    CollapseStage  →  RandomTpgStage  →  ThreePhaseStage  →  CompactionStage

matching the paper's flow (§2, §5) with the two classic ATPG
bracketing steps (structural collapsing before, static compaction
after).  Stages honor the run :class:`~repro.flow.budget.Budget`
cooperatively: :class:`RandomTpgStage` stops at a walk boundary,
:class:`ThreePhaseStage` classifies every untried fault
``aborted``/``"budget"`` once the deadline passes, and
:class:`CompactionStage` skips (it only shrinks an already-valid test
set).  A bounded run therefore always produces a complete, valid
partial result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.circuit.faults import Fault
from repro.core.random_tpg import random_tpg
from repro.core.sequences import Test
from repro.core.three_phase import (
    ABORTED,
    DETECTED,
    UNDETECTABLE,
    ThreePhaseGenerator,
)
from repro.flow.budget import REASON_BUDGET
from repro.flow.context import RunContext
from repro.flow.events import BudgetExhausted, ProgressTick
from repro.sgraph.cssg import Cssg
from repro.sim.batch import FaultBatch

__all__ = [
    "Stage",
    "CollapseStage",
    "RandomTpgStage",
    "ThreePhaseStage",
    "CompactionStage",
    "ReplayPlan",
    "ReplayStage",
    "ReplayTest",
    "ReplayedStatus",
    "fault_simulate",
]


@runtime_checkable
class Stage(Protocol):
    """One step of a flow: reads/mutates the shared run context."""

    name: str

    def enabled(self, ctx: RunContext) -> bool:
        """Whether the stage participates in this run (option gates)."""
        ...

    def run(self, ctx: RunContext) -> None:
        ...


class CollapseStage:
    """Structural fault collapsing (classic ATPG front end).

    Shrinks the work list to one representative per same-gate
    equivalence class; :meth:`RunContext.finish` expands the classes
    back, so coverage over the full universe is unchanged.
    """

    name = "collapse"

    def enabled(self, ctx: RunContext) -> bool:
        return bool(ctx.options.collapse and ctx.work_list)

    def run(self, ctx: RunContext) -> None:
        from repro.core.collapse import collapse_faults

        ctx.work_list, ctx.representative_of = collapse_faults(
            ctx.circuit, ctx.faults
        )
        ctx.stage_stats[self.name] = {
            "n_faults": len(ctx.faults),
            "n_representatives": len(ctx.work_list),
        }


@dataclass(frozen=True)
class ReplayTest:
    """One cached test to re-inject: its pattern sequence plus the
    faults it detected, as ``(position-in-original-test, fault)`` pairs
    sorted by position (positions keep member order stable when several
    cohorts contribute slices of the same original test)."""

    patterns: Tuple[int, ...]
    source: str
    members: Tuple[Tuple[int, Fault], ...]


@dataclass(frozen=True)
class ReplayedStatus:
    """One cached fault verdict; ``test_ref`` indexes
    :attr:`ReplayPlan.tests` (not a final test index — the stage remaps
    through whatever indices :meth:`RunContext.add_test` assigns)."""

    fault: Fault
    status: str
    phase: str
    reason: str
    test_ref: Optional[int]


@dataclass(frozen=True)
class ReplayPlan:
    """Everything a previous run already decided that this run keeps."""

    tests: Tuple[ReplayTest, ...] = ()
    statuses: Tuple[ReplayedStatus, ...] = ()


class ReplayStage:
    """Re-inject cached classifications ahead of the generating stages.

    The incremental runner (:mod:`repro.campaign.cohort`) replays the
    verdicts and tests of fault cohorts whose cones of influence are
    untouched by an edit; the downstream stages then see only the stale
    faults in :meth:`RunContext.remaining` and generate for those.  With
    an empty plan the stage is disabled and the flow is byte-identical
    to a monolithic run.
    """

    name = "replay"

    def __init__(self, plan: ReplayPlan):
        self.plan = plan

    def enabled(self, ctx: RunContext) -> bool:
        return bool(self.plan.tests or self.plan.statuses)

    def run(self, ctx: RunContext) -> None:
        index_of: List[int] = []
        for replay in self.plan.tests:
            test = Test(
                tuple(replay.patterns),
                [fault for _, fault in replay.members],
                source=replay.source,
            )
            index_of.append(ctx.add_test(test))
        for verdict in self.plan.statuses:
            ctx.classify(
                verdict.fault,
                verdict.status,
                verdict.phase,
                None if verdict.test_ref is None else index_of[verdict.test_ref],
                verdict.reason,
            )
        ctx.stage_stats[self.name] = {
            "n_tests": len(self.plan.tests),
            "n_faults": len(self.plan.statuses),
        }


class RandomTpgStage:
    """Random walks on the CSSG with parallel fault simulation (§5.4)."""

    name = "random-tpg"

    def enabled(self, ctx: RunContext) -> bool:
        return bool(ctx.options.use_random_tpg and ctx.work_list)

    def run(self, ctx: RunContext) -> None:
        opts = ctx.options

        def on_walk(walk_index: int, n_detected: int) -> None:
            ctx.bus.emit(
                ProgressTick(
                    self.name, walk_index + 1, opts.random_walks, n_detected
                )
            )

        detected_by, random_tests = random_tpg(
            ctx.cssg,
            ctx.remaining(),
            n_walks=opts.random_walks,
            walk_len=opts.walk_len,
            rng=ctx.rng,
            should_stop=ctx.budget.expired,
            on_walk=on_walk,
        )
        for test in random_tests:
            test_index = ctx.add_test(test)
            for fault in test.faults:
                ctx.classify(fault, DETECTED, "rnd", test_index)
        ctx.stage_stats[self.name] = {"n_detected": len(detected_by)}


class ThreePhaseStage:
    """Per-fault 3-phase generation (§5.1–5.3) with interleaved
    fault-simulation credit (§5.4): every deterministic test is graded
    against the still-undetected faults immediately, so later faults it
    covers never reach the expensive generator."""

    name = "three-phase"

    def enabled(self, ctx: RunContext) -> bool:
        return True  # the classifier of last resort always runs

    def run(self, ctx: RunContext) -> None:
        opts = ctx.options
        budget = ctx.budget
        generator = ThreePhaseGenerator(
            ctx.cssg,
            budget.max_product_states,
            faulty_semantics=opts.faulty_semantics,
        )
        remaining = ctx.remaining()
        total = len(remaining)
        budget_announced = False
        for done, fault in enumerate(remaining, start=1):
            if fault in ctx.statuses:  # picked up by a previous fault's test
                continue
            if budget.expired():
                if not budget_announced:
                    budget_announced = True
                    n_left = sum(1 for f in remaining if f not in ctx.statuses)
                    ctx.bus.emit(
                        BudgetExhausted(self.name, "deadline", n_left)
                    )
                ctx.classify(fault, ABORTED, reason=REASON_BUDGET)
                continue
            outcome = generator.generate(fault, budget.max_activation_tries)
            if outcome.status == DETECTED:
                test = Test(outcome.patterns, [fault], source="3-phase")
                extras: List[Fault] = []
                if opts.use_fault_sim:
                    others = [
                        f
                        for f in remaining
                        if f not in ctx.statuses and f is not fault
                    ]
                    extras = fault_simulate(ctx.cssg, others, outcome.patterns)
                    test.faults.extend(extras)
                # Credit computed first so TestAdded.n_faults is final.
                test_index = ctx.add_test(test)
                ctx.classify(fault, DETECTED, "3-ph", test_index)
                for extra in extras:
                    ctx.classify(extra, DETECTED, "sim", test_index)
            elif outcome.status == UNDETECTABLE:
                ctx.classify(fault, UNDETECTABLE)
            else:
                ctx.classify(fault, ABORTED, reason=outcome.reason)
            ctx.bus.emit(ProgressTick(self.name, done, total, ctx.n_covered))


class CompactionStage:
    """Static test-set compaction (wraps
    :func:`repro.core.compact.compact_test_set`): re-grade every test,
    keep essential ones, greedily cover the rest, and remap the fault
    ledger's ``test_index`` references onto the compacted set."""

    name = "compaction"

    def enabled(self, ctx: RunContext) -> bool:
        return bool(ctx.options.compact and ctx.tests.tests)

    def run(self, ctx: RunContext) -> None:
        from repro.core.compact import compact_test_set

        if ctx.budget.expired():
            return  # compaction only shrinks a valid set; honor the deadline
        old_tests = ctx.tests.tests
        compacted, stats = compact_test_set(ctx.cssg, old_tests, ctx.faults)
        new_index_of = {
            old: new for new, old in enumerate(stats["kept_indices"])
        }
        grading = [set(t.faults) for t in compacted.tests]
        for fault, status in ctx.statuses.items():
            if status.status != DETECTED or status.test_index is None:
                continue
            new_index = new_index_of.get(status.test_index)
            if new_index is None:
                # The fault's dedicated test was dropped, which the
                # compactor only does when a kept test provably covers
                # the fault — point the ledger at the first such test.
                new_index = next(
                    i for i, hits in enumerate(grading) if fault in hits
                )
            status.test_index = new_index
        ctx.tests = compacted
        ctx.stage_stats[self.name] = dict(stats)


def fault_simulate(
    cssg: Cssg, faults: Sequence[Fault], patterns: Sequence[int]
) -> List[Fault]:
    """Parallel-ternary simulation of one test over many faults (§5.4).

    Returns the subset of ``faults`` the sequence definitely detects.
    The conservativeness of ternary simulation may miss detections; the
    paper accepts this because missed faults still get their own 3-phase
    run later (§5.4, last paragraph).
    """
    if not faults:
        return []
    walk = FaultBatch(cssg.circuit, faults).walk(cssg.reset)
    good = cssg.reset
    detected = walk.observe(good)
    for pattern in patterns:
        nxt = cssg.successor(good, pattern)
        if nxt is None:
            break
        good = nxt
        detected |= walk.step(pattern, good)
    return [f for j, f in enumerate(faults) if (detected >> j) & 1]
