"""A small stdlib client for the ``repro-serve`` API.

``urllib``-based, blocking, dependency-free — the same client drives
the tier-1 end-to-end test, ``benchmarks/bench_serve.py``, and the CI
serve-smoke job, so the API is exercised exactly the way a user's
script would.  Event streaming reads the NDJSON endpoint line by line
as events arrive (the server sends each event unframed and flushes).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx API answer, with the status and decoded body."""

    def __init__(self, status: int, body: Dict):
        self.status = status
        self.body = body
        super().__init__(f"HTTP {status}: {body.get('error', body)}")


class ServeClient:
    """Blocking client bound to one server base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", "replace")
            try:
                doc = json.loads(raw)
            except ValueError:
                doc = {"error": raw}
            raise ServeError(exc.code, doc) from None

    # -- API ----------------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def submit(self, **body) -> Dict:
        """``POST /jobs``; returns the job record (or, for campaign
        submissions, the whole ``{"jobs": [...]}`` answer)."""
        doc = self._request("POST", "/jobs", body)
        return doc["job"] if "job" in doc else doc

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self, **query) -> List[Dict]:
        qs = "&".join(f"{k}={v}" for k, v in query.items())
        return self._request("GET", "/jobs" + (f"?{qs}" if qs else ""))["jobs"]

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def result(self, key: str) -> Dict:
        return self._request("GET", f"/results/{key}")

    def metrics_text(self) -> str:
        req = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")

    def events(
        self, job_id: str, start: int = 0, timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        """Stream the job's events (replay from ``start``, then live)
        until the stream closes; the last event is ``JobResolved``."""
        req = urllib.request.Request(
            self.base_url + f"/jobs/{job_id}/events?from={start}"
        )
        with urllib.request.urlopen(
            req, timeout=timeout if timeout is not None else self.timeout
        ) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, timeout: float = 120.0) -> Dict:
        """Poll until the job leaves the active states; returns the
        final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] not in ("queued", "running"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(0.05)
