"""Service job model: submissions, records, and buffered event logs.

A submission body (``POST /jobs``) names a circuit — a bundled
benchmark, a server-side netlist path, or inline netlist text (spooled
to the state directory so it gets a real file the campaign planner can
fingerprint) — plus any :class:`~repro.core.atpg.AtpgOptions` fields.
:func:`parse_submission` turns it into the *same*
:class:`~repro.campaign.plan.Job` a campaign would plan, so the job's
content key addresses the same shared warm cache: a submission another
client already paid for costs zero compute.

Each accepted submission becomes a :class:`JobRecord` whose
:class:`EventLog` buffers the run's flow events for replay — a client
may connect to ``GET /jobs/{id}/events`` before, during, or after the
run and always sees the full stream from event 0 (subject to the
buffer cap), live-tailed until the job resolves.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.campaign.plan import CampaignSpec, Job, expand
from repro.core.atpg import AtpgOptions
from repro.errors import ReproError
from repro.serve.protocol import HttpError

__all__ = [
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "EventLog",
    "JobRecord",
    "parse_submission",
    "parse_campaign_submission",
]

#: States a record moves through.  ``queued``/``running`` are active;
#: everything else is terminal.  ``cached`` = answered from the warm
#: store at submit time; ``coalesced`` = rode an identical in-flight
#: submission; the failure states mirror the campaign runner's
#: :class:`~repro.campaign.runner.JobOutcome` statuses.
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = (
    "done", "cached", "coalesced", "failed", "cancelled",
    "timeout", "hung", "crashed",
)

#: Submission keys that are service-level, not AtpgOptions fields.
_META_KEYS = {
    "benchmark", "netlist", "netlist_path", "style", "options",
    "client", "refresh",
}


class EventLog:
    """An append-only event buffer with async live tailing.

    Producers (executor threads) append JSON-ready event docs via
    :meth:`append_threadsafe`; consumers iterate :meth:`stream`, which
    replays history from any index and then waits for new events until
    the log is closed.  The buffer is capped: when more than
    ``max_events`` accumulate the oldest half is dropped and late
    readers get one synthetic ``EventsDropped`` doc instead.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, max_events: int = 100_000):
        self._loop = loop
        self._events: List[Dict] = []
        self._base = 0  # seq of _events[0]
        self._max = max_events
        self._closed = False
        self._waiters: List[asyncio.Future] = []

    @property
    def next_seq(self) -> int:
        return self._base + len(self._events)

    @property
    def closed(self) -> bool:
        return self._closed

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)

    def append(self, doc: Dict) -> None:
        """Append one event doc (event-loop thread only)."""
        if self._closed:
            return
        self._events.append(doc)
        if len(self._events) > self._max:
            dropped = len(self._events) // 2
            self._base += dropped
            del self._events[:dropped]
        self._wake()

    def append_threadsafe(self, doc: Dict) -> None:
        self._loop.call_soon_threadsafe(self.append, doc)

    def close(self) -> None:
        """No more events will arrive; release every tailing reader."""
        self._closed = True
        self._wake()

    def close_threadsafe(self) -> None:
        self._loop.call_soon_threadsafe(self.close)

    async def stream(self, start: int = 0):
        """Yield ``(seq, doc)`` from ``start``; live until closed."""
        cursor = start
        while True:
            if cursor < self._base:
                yield cursor, {
                    "event": "EventsDropped",
                    "stage": "",
                    "n_dropped": self._base - cursor,
                }
                cursor = self._base
            while cursor < self.next_seq:
                yield cursor, self._events[cursor - self._base]
                cursor += 1
            if self._closed:
                return
            fut = self._loop.create_future()
            self._waiters.append(fut)
            await fut


_record_ids = itertools.count(1)


@dataclass
class JobRecord:
    """One accepted submission and its lifecycle."""

    id: str
    job: Job
    submission: Dict  #: canonical body (restart persistence re-submits it)
    client: str
    events: EventLog
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    seconds: float = 0.0  #: execution wall time (0 for cache answers)
    error: str = ""
    payload: Optional[Dict] = field(default=None, repr=False)
    primary_id: Optional[str] = None  #: set on coalesced followers

    @staticmethod
    def new_id() -> str:
        return f"j{next(_record_ids):06d}"

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    @property
    def ok(self) -> bool:
        return self.state in ("done", "cached", "coalesced")

    def to_json_dict(self, verbose: bool = False) -> Dict:
        doc = {
            "id": self.id,
            "name": self.job.name,
            "key": self.job.key,
            "state": self.state,
            "client": self.client,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "n_events": self.events.next_seq,
            "events_url": f"/jobs/{self.id}/events",
            "result_url": f"/results/{self.job.key}" if self.ok else None,
        }
        if self.primary_id:
            doc["primary_id"] = self.primary_id
        if verbose:
            doc["options"] = self.job.options.to_json_dict()
            doc["source"] = {
                "kind": self.job.source_kind,
                "source": self.job.source,
                "style": self.job.style,
            }
        return doc


def _options_from_body(body: Dict) -> AtpgOptions:
    """The fully-resolved options a submission implies.

    ``options`` is the explicit dict; any bare AtpgOptions field name
    at the top level (``seed``, ``fault_model``, ``deadline_seconds``,
    ...) is accepted as a convenience and merged in.
    """
    options = dict(body.get("options") or {})
    known = {f for f in AtpgOptions.__dataclass_fields__}
    for key, value in body.items():
        if key in known and key not in options:
            options[key] = value
        elif key not in known and key not in _META_KEYS:
            raise HttpError(400, f"unknown submission field {key!r}")
    try:
        return AtpgOptions.from_json_dict(options)
    except (ReproError, TypeError) as exc:
        raise HttpError(400, f"bad options: {exc}")


def spool_netlist(text: str, spool_dir: Path) -> Path:
    """Persist inline netlist text under its content hash.

    The planner fingerprints source *files*; spooling gives an inline
    submission a stable file whose bytes hash identically on every
    resubmission, so inline and path submissions of the same netlist
    share one cache entry."""
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]
    spool_dir.mkdir(parents=True, exist_ok=True)
    path = spool_dir / f"{digest}.net"
    if not path.exists():
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)
    return path


def _single_job(source: str, style: str, options: AtpgOptions) -> Job:
    """Plan exactly one job through the campaign expander, so the name,
    group, and — critically — the content ``key`` match what a campaign
    over the same axes would produce."""
    spec = CampaignSpec(
        benchmarks=[source],
        styles=(style,),
        fault_models=(options.fault_model,),
        seeds=(options.seed,),
        ks=(options.k,),
        cssg_methods=(None,),  # inherit options.cssg_method
        options=options,
    )
    jobs = expand(spec)
    assert len(jobs) == 1
    return jobs[0]


def parse_submission(
    body: Dict, spool_dir: Path, clamp_deadline=None
) -> Tuple[Job, Dict]:
    """``POST /jobs`` body -> ``(planned job, canonical submission)``.

    Exactly one of ``benchmark`` / ``netlist`` (inline text) /
    ``netlist_path`` must name the circuit.  ``clamp_deadline`` is the
    server's QoS hook: it receives the requested ``deadline_seconds``
    (or ``None``) and returns the effective one.  The canonical
    submission is what the restart queue persists — inline netlists are
    already spooled, so it always round-trips.
    """
    sources = [k for k in ("benchmark", "netlist", "netlist_path") if body.get(k)]
    if len(sources) != 1:
        raise HttpError(
            400, "submit exactly one of benchmark / netlist / netlist_path"
        )
    options = _options_from_body(body)
    if clamp_deadline is not None:
        options = replace(
            options, deadline_seconds=clamp_deadline(options.deadline_seconds)
        )
    style = body.get("style", "complex")
    if style not in ("complex", "two-level"):
        raise HttpError(400, f"unknown style {style!r}")
    kind = sources[0]
    if kind == "benchmark":
        source = str(body["benchmark"])
    elif kind == "netlist_path":
        source = str(body["netlist_path"])
        if not Path(source).exists():
            raise HttpError(400, f"netlist file not found: {source!r}")
    else:
        source = str(spool_netlist(str(body["netlist"]), spool_dir))
    try:
        job = _single_job(source, style, options)
    except ReproError as exc:
        raise HttpError(400, str(exc))
    canonical = {
        ("netlist_path" if kind == "netlist" else kind): source,
        "style": style,
        "options": options.to_json_dict(),
    }
    return job, canonical


def parse_campaign_submission(
    body: Dict, clamp_deadline=None
) -> Tuple[List[Job], List[Dict]]:
    """A ``campaign`` submission -> the expanded jobs, one canonical
    single-job submission per job (each is admitted, coalesced, and
    persisted independently — a campaign is just a batch of jobs)."""
    spec_doc = body.get("campaign")
    if not isinstance(spec_doc, dict):
        raise HttpError(400, "campaign must be an object of spec axes")
    unknown = sorted(
        set(spec_doc)
        - {"benchmarks", "styles", "fault_models", "seeds", "ks",
           "cssg_methods", "options"}
    )
    if unknown:
        raise HttpError(400, f"unknown campaign fields: {unknown}")
    try:
        options = AtpgOptions.from_json_dict(dict(spec_doc.get("options") or {}))
    except (ReproError, TypeError) as exc:
        raise HttpError(400, f"bad campaign options: {exc}")
    if clamp_deadline is not None:
        options = replace(
            options, deadline_seconds=clamp_deadline(options.deadline_seconds)
        )
    spec = CampaignSpec(
        benchmarks=list(spec_doc.get("benchmarks") or []),
        styles=tuple(spec_doc.get("styles") or ("complex",)),
        fault_models=tuple(spec_doc.get("fault_models") or ("output", "input")),
        seeds=tuple(spec_doc.get("seeds") or (0,)),
        ks=tuple(spec_doc.get("ks") or (None,)),
        cssg_methods=tuple(spec_doc.get("cssg_methods") or (None,)),
        options=options,
    )
    if not spec.benchmarks:
        raise HttpError(400, "campaign.benchmarks must be non-empty")
    try:
        jobs = expand(spec)
    except ReproError as exc:
        raise HttpError(400, str(exc))
    submissions = [
        {
            ("benchmark" if job.source_kind == "benchmark" else "netlist_path"):
                job.source,
            "style": job.style,
            "options": job.options.to_json_dict(),
        }
        for job in jobs
    ]
    return jobs, submissions
