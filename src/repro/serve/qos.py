"""Per-request QoS: the flow's budgets turned into service limits.

A single-user run bounds itself with a :class:`~repro.flow.budget.Budget`
(wall-clock deadline + per-fault effort caps).  A multi-tenant server
needs the same levers *per request*, plus admission control so one
client cannot starve the rest:

* **deadline ceiling** — every submitted job runs under
  ``min(requested, max_deadline_seconds)`` (see
  :func:`repro.flow.budget.clamp_deadline`); a request with no deadline
  gets ``default_deadline_seconds``.  The clamped value lands in the
  job's options *before* content hashing, so a clamped submission is
  cached under exactly the budget it actually ran with.
* **bounded queue** — at most ``max_queue`` jobs may be active
  (queued + running); excess submissions are rejected with 429 and a
  ``Retry-After`` hint rather than queued into unbounded memory.
* **per-client concurrency** — at most ``per_client`` active jobs per
  client id (the ``client`` submission field / ``X-Repro-Client``
  header); the 430th identical free-rider gets 429, everyone else's
  latency is protected.

Cache answers and coalesced followers bypass admission — they cost no
compute, which is the entire point of the shared warm cache.

>>> policy = QosPolicy(max_queue=2, per_client=1, max_deadline_seconds=60)
>>> policy.effective_deadline(None)
60
>>> policy.effective_deadline(10.0)
10.0
>>> policy.effective_deadline(3600.0)
60
>>> policy.admit(n_active=2, n_client_active=0) is None
False
>>> policy.admit(n_active=1, n_client_active=1) is None
False
>>> policy.admit(n_active=1, n_client_active=0) is None
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flow.budget import clamp_deadline

__all__ = ["QosPolicy"]


@dataclass(frozen=True)
class QosPolicy:
    """Admission and budget limits for one server."""

    #: Active (queued + running) jobs the server will hold; above it,
    #: submissions get 429.  ``0`` disables submission entirely.
    max_queue: int = 64
    #: Active jobs any single client id may have in flight.
    per_client: int = 16
    #: Ceiling on a job's ``deadline_seconds`` (None = no ceiling).
    max_deadline_seconds: Optional[float] = None
    #: Deadline applied when the request asks for none (None = inherit
    #: the ceiling; jobs then always run bounded when a ceiling exists).
    default_deadline_seconds: Optional[float] = None
    #: Largest accepted request body (inline netlists included).
    max_body_bytes: int = 8 * 1024 * 1024
    #: ``Retry-After`` seconds suggested on 429 responses.
    retry_after_seconds: int = 2

    def effective_deadline(self, requested: Optional[float]) -> Optional[float]:
        """The deadline a submission actually runs under."""
        if requested is None:
            requested = self.default_deadline_seconds
        return clamp_deadline(requested, self.max_deadline_seconds)

    def admit(self, n_active: int, n_client_active: int) -> Optional[str]:
        """``None`` to accept, else the 429 rejection reason."""
        if n_active >= self.max_queue:
            return (
                f"queue full ({n_active} active jobs, limit {self.max_queue})"
            )
        if n_client_active >= self.per_client:
            return (
                f"client concurrency limit reached "
                f"({n_client_active} active, limit {self.per_client})"
            )
        return None
