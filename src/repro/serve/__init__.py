"""ATPG-as-a-service: the ``repro-serve`` daemon and its pieces.

A long-lived asyncio process that accepts netlist / campaign
submissions over HTTP/JSON, executes them on the campaign runner's
persistent fork workers, streams each run's flow events live to any
number of subscribers, and answers repeated submissions from the shared
content-addressed warm cache with zero compute.  Stdlib only — pure
``asyncio.start_server``, no web framework.

* :mod:`repro.serve.protocol` — minimal HTTP/1.1 on asyncio streams
  (router, streaming responses, request limits);
* :mod:`repro.serve.jobs` — submission parsing (shared planning with
  campaigns, so cache keys match exactly), the per-job
  :class:`~repro.serve.jobs.EventLog`, and the job table record;
* :mod:`repro.serve.qos` — admission control: bounded queue, per-client
  caps, deadline clamping;
* :mod:`repro.serve.executor` — inline-thread and fork-worker back ends;
* :mod:`repro.serve.server` — :class:`~repro.serve.server.ReproServer`
  and the ``repro-serve`` CLI;
* :mod:`repro.serve.client` — a stdlib ``urllib`` client used by the
  tests, the benchmark, and CI smoke.

See ``docs/serving.md`` for the full API surface and a worked session.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import EventLog, JobRecord
from repro.serve.qos import QosPolicy
from repro.serve.server import ReproServer, serve_main

__all__ = [
    "EventLog",
    "JobRecord",
    "QosPolicy",
    "ReproServer",
    "ServeClient",
    "serve_main",
]
