"""Job execution back ends for the server: inline threads or the
campaign runner's persistent fork workers.

Both back ends speak the same callback protocol — every callback may be
invoked from a non-event-loop thread; the server marshals back onto the
loop:

* ``on_start(key)`` — the job left the queue and is running;
* ``on_event(key, doc)`` — one flow event (JSON-ready dict), live;
* ``on_done(key, status, payload, error, seconds)`` — terminal, with
  the campaign runner's outcome vocabulary (``done`` | ``failed`` |
  ``crashed`` | ``timeout`` | ``hung``).

:class:`ForkedExecutor` is the production back end: it reuses the
campaign runner's :class:`~repro.campaign.runner._Pool` — persistent
fork workers, strict in-order batch accounting, crash isolation, and
the heartbeat/hang-timeout policing — with the worker-side
``relay_events`` switch turned on so the full flow event stream crosses
the process boundary for live client streaming.  A worker that dies,
hangs, or blows its per-job budget is killed and replaced exactly as in
a campaign, and the affected job resolves with that status instead of
wedging the server.

:class:`InlineExecutor` runs jobs on daemon threads in the server
process (``--workers 0``): no fork, no pickling, events delivered by
direct listener call.  The wall-clock QoS deadline is still honored
(cooperatively, by the flow's own budget), but a pathological job
cannot be killed — it is the honest-timing/debug mode, matching
``repro-campaign --workers 0``.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from typing import Callable, Dict, Optional

from repro.campaign.plan import Job
from repro.campaign.runner import (
    JobOutcome,
    _police_workers,
    _Pool,
    execute_job,
    execute_job_incremental,
    note_incremental_stats,
)
from repro.campaign.store import ResultStore

__all__ = ["InlineExecutor", "ForkedExecutor"]

OnStart = Callable[[str], None]
OnEvent = Callable[[str, Dict], None]
OnDone = Callable[[str, str, Optional[Dict], str, float], None]

#: Parent-side policing / queue-poll cadence, as in the campaign runner.
_POLL_SECONDS = 0.2


def _clean_payload(result) -> Dict:
    """The canonical result JSON: never ship the opt-in telemetry block
    (the server's ambient metrics registry must not leak into payloads —
    cache entries and client results stay byte-identical to a plain
    ``repro-atpg`` run)."""
    payload = result.to_json_dict()
    payload.pop("telemetry", None)
    return payload


class InlineExecutor:
    """Run jobs on ``n_threads`` daemon threads in-process.

    With ``incremental`` (and a ``store``), jobs resolve through
    :func:`~repro.campaign.runner.execute_job_incremental`; the cohort
    accounting folds straight into the server's ambient registry (no
    process boundary, so no snapshot round trip)."""

    def __init__(
        self,
        n_threads: int,
        on_start: OnStart,
        on_event: OnEvent,
        on_done: OnDone,
        store: Optional[ResultStore] = None,
        incremental: bool = False,
    ):
        self.on_start = on_start
        self.on_event = on_event
        self.on_done = on_done
        self.store = store if incremental else None
        self._tasks: "queue_mod.Queue[Optional[Job]]" = queue_mod.Queue()
        self._threads = [
            threading.Thread(target=self._worker, daemon=True, name=f"serve-inline-{i}")
            for i in range(max(1, n_threads))
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, job: Job) -> None:
        self._tasks.put(job)

    def _worker(self) -> None:
        while True:
            job = self._tasks.get()
            if job is None:
                return
            self.on_start(job.key)
            t0 = time.perf_counter()
            listeners = (
                lambda ev, key=job.key: self.on_event(key, ev.to_json_dict()),
            )
            try:
                if self.store is not None:
                    payload, _live, inc = execute_job_incremental(
                        job, self.store, listeners=listeners
                    )
                    note_incremental_stats(inc)
                    payload = {
                        k: v for k, v in payload.items() if k != "telemetry"
                    }
                    self.on_done(
                        job.key, "done", payload, "",
                        time.perf_counter() - t0,
                    )
                else:
                    result = execute_job(job, listeners=listeners)
                    self.on_done(
                        job.key, "done", _clean_payload(result), "",
                        time.perf_counter() - t0,
                    )
            except Exception as exc:
                self.on_done(
                    job.key, "failed", None, f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - t0,
                )

    def shutdown(self, timeout: float = 10.0) -> None:
        for _ in self._threads:
            self._tasks.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))


class ForkedExecutor:
    """Persistent fork workers with full event relay and policing."""

    def __init__(
        self,
        workers: int,
        on_start: OnStart,
        on_event: OnEvent,
        on_done: OnDone,
        timeout: float = 600.0,
        hang_timeout: Optional[float] = None,
        incremental: bool = False,
        cache_root: Optional[str] = None,
    ):
        self.on_start = on_start
        self.on_event = on_event
        self.on_done = on_done
        self._pool = _Pool(
            [], workers, timeout, hang_timeout, relay_events=True,
            incremental=incremental and cache_root is not None,
            cache_root=cache_root,
        )
        self._incoming: "queue_mod.Queue[Job]" = queue_mod.Queue()
        self._unresolved: set = set()
        self._started: set = set()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="serve-pool"
        )
        for _ in range(workers):
            self._pool.spawn()
        self._thread.start()

    @property
    def n_unresolved(self) -> int:
        return len(self._unresolved) + self._incoming.qsize()

    def submit(self, job: Job) -> None:
        self._incoming.put(job)

    def _resolve(self, outcome: JobOutcome) -> None:
        """Terminal-state adapter shared by the event loop (``done`` /
        ``fail`` messages) and ``_police_workers`` (``crashed`` /
        ``timeout`` / ``hung`` verdicts)."""
        key = outcome.job.key
        self._unresolved.discard(key)
        self._started.discard(key)
        status = "done" if outcome.status == "ran" else outcome.status
        payload = outcome.payload
        if payload is not None and "telemetry" in payload:
            payload = {k: v for k, v in payload.items() if k != "telemetry"}
        self.on_done(key, status, payload, outcome.error, outcome.seconds)

    def _mark_started(self, key: str) -> None:
        if key in self._unresolved and key not in self._started:
            self._started.add(key)
            self.on_start(key)

    def _loop(self) -> None:
        pool = self._pool
        last_police = time.monotonic()
        while not self._stop.is_set():
            moved = False
            while True:
                try:
                    job = self._incoming.get_nowait()
                except queue_mod.Empty:
                    break
                pool.add_jobs([job])
                self._unresolved.add(job.key)
                moved = True
            if moved:
                while (
                    self._unresolved
                    and len(pool.procs) < pool.target_workers
                ):
                    pool.spawn()  # replace workers that died while idle
                pool.dispatch_all()
            try:
                event = pool.event_q.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                event = None
            if time.monotonic() - last_police >= _POLL_SECONDS:
                _police_workers(pool, self._unresolved, self._resolve)
                pool.dispatch_all()
                last_police = time.monotonic()
            if event is None:
                continue
            kind, wid, key, seconds = event[0], event[1], event[2], event[3]
            if kind == "beat":
                if wid in pool.procs:
                    pool.note_beat(wid)
                self._mark_started(key)
                continue
            if kind == "event":
                if wid in pool.procs:
                    pool.note_beat(wid)
                self._mark_started(key)
                self.on_event(key, event[4])
                continue
            if kind == "batch-done":
                if wid in pool.procs:
                    pool.note_event(wid, None)
                    pool.dispatch(wid)
                continue
            if wid in pool.procs:
                pool.note_event(wid, key)
            if key in self._unresolved:
                job = pool.job_of[key]
                if kind == "done":
                    inc = event[5] if len(event) > 5 else None
                    note_incremental_stats(inc)
                    self._resolve(
                        JobOutcome(
                            job, "ran", payload=event[4], seconds=seconds,
                            incremental=inc,
                        )
                    )
                else:
                    self._resolve(
                        JobOutcome(job, "failed", error=event[4], seconds=seconds)
                    )

    def shutdown(self, timeout: float = 10.0) -> None:
        self._stop.set()
        self._thread.join(timeout=timeout)
        self._pool.shutdown()
