"""Minimal asyncio HTTP/1.1 layer for the ``repro-serve`` daemon.

Stdlib-only by design (the whole service is ``asyncio.start_server`` +
hand-rolled request parsing — no ``http.server`` thread pool, no web
framework): a :class:`Router` maps ``(method, path pattern)`` pairs to
async handlers, and :func:`serve_connection` speaks just enough
HTTP/1.1 for the service's API: request line + headers, a
``Content-Length`` body, keep-alive for plain responses, and unframed
``Connection: close`` bodies for live event streams (the universally
compatible way to stream NDJSON/SSE without chunked framing).

Handlers receive a :class:`Request` and return a :class:`Response`;
raising :class:`HttpError` anywhere inside a handler produces the
matching JSON error response.  A client that disconnects mid-stream
only cancels its own response generator — the generator's ``finally``
runs, so subscriptions are always released.
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

__all__ = ["HttpError", "Request", "Response", "Router", "serve_connection"]

#: Upper bounds keeping one bad client from exhausting the process.
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
HEADER_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str, headers: Optional[Dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  #: keys lowercased
    body: bytes
    params: Dict[str, str] = field(default_factory=dict)  #: route captures

    def json(self) -> Dict:
        """The body as a JSON object (:class:`HttpError` 400 otherwise)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}")
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc


class Response:
    """A plain (buffered) or streaming HTTP response.

    ``body`` may be ``bytes``, ``str``, or any JSON-serializable object
    (rendered with ``application/json``).  ``stream`` — an async
    iterator of ``bytes``/``str`` chunks — takes precedence and is sent
    unframed with ``Connection: close``.
    """

    def __init__(
        self,
        body: Union[bytes, str, Dict, List, None] = None,
        status: int = 200,
        content_type: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
        stream: Optional[AsyncIterator[Union[bytes, str]]] = None,
    ):
        self.status = status
        self.headers = dict(headers or {})
        self.stream = stream
        if stream is not None:
            self.body = b""
            self.content_type = content_type or "application/x-ndjson"
        elif isinstance(body, bytes):
            self.body = body
            self.content_type = content_type or "application/octet-stream"
        elif isinstance(body, str):
            self.body = body.encode("utf-8")
            self.content_type = content_type or "text/plain; charset=utf-8"
        elif body is None:
            self.body = b""
            self.content_type = content_type or "text/plain; charset=utf-8"
        else:
            self.body = (json.dumps(body, indent=2) + "\n").encode("utf-8")
            self.content_type = content_type or "application/json"

    @staticmethod
    def error(status: int, message: str, headers: Optional[Dict] = None) -> "Response":
        return Response({"error": message, "status": status}, status=status,
                        headers=headers)


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """``(method, "/jobs/{id}/events")`` -> handler dispatch table.

    ``{name}`` segments capture one path segment into
    ``request.params[name]``.  A path that matches with the wrong
    method yields 405 (with ``Allow``), an unknown path 404.
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, "re.Pattern[str]", Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    def resolve(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        allowed = set()
        for route_method, regex, handler in self._routes:
            match = regex.match(path)
            if match is None:
                continue
            if route_method == method.upper():
                return handler, match.groupdict()
            allowed.add(route_method)
        if allowed:
            raise HttpError(
                405, f"method {method} not allowed",
                headers={"Allow": ", ".join(sorted(allowed))},
            )
        raise HttpError(404, f"no route for {path}")


def _parse_query(raw: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    for part in raw.split("&"):
        if not part:
            continue
        key, _, value = part.partition("=")
        query[key] = value
    return query


async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=HEADER_TIMEOUT
        )
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large")
    except asyncio.TimeoutError:
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0], parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    path, _, raw_query = target.partition("?")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(400, "bad Content-Length")
    if length > max_body_bytes:
        raise HttpError(413, f"body exceeds {max_body_bytes} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(method, path, _parse_query(raw_query), headers, body)


def _head_bytes(response: Response, close: bool, streaming: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("Content-Type", response.content_type)
    if streaming:
        headers["Connection"] = "close"
        headers.setdefault("Cache-Control", "no-store")
    else:
        headers["Content-Length"] = str(len(response.body))
        headers["Connection"] = "close" if close else "keep-alive"
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    router: Router,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    observe: Optional[Callable[[Request, int], None]] = None,
) -> None:
    """Speak HTTP/1.1 on one connection until close.

    ``observe(request, status)`` fires once per completed exchange (the
    server's request metrics hook).  Handler exceptions produce a 500
    without killing the server; client disconnects are silent.
    """
    try:
        while True:
            request: Optional[Request] = None
            try:
                request = await _read_request(reader, max_body_bytes)
                if request is None:
                    return
                handler, params = router.resolve(request.method, request.path)
                request.params = params
                response = await handler(request)
            except HttpError as exc:
                response = Response.error(exc.status, exc.message, exc.headers)
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # handler bug: report, keep serving
                response = Response.error(500, f"{type(exc).__name__}: {exc}")
            if observe is not None and request is not None:
                observe(request, response.status)
            close = (
                request is None
                or request.headers.get("connection", "").lower() == "close"
            )
            if response.stream is not None:
                writer.write(_head_bytes(response, True, streaming=True))
                await writer.drain()
                async for chunk in response.stream:
                    if isinstance(chunk, str):
                        chunk = chunk.encode("utf-8")
                    writer.write(chunk)
                    await writer.drain()
                return
            writer.write(_head_bytes(response, close, streaming=False))
            writer.write(response.body)
            await writer.drain()
            if close:
                return
    except (ConnectionError, asyncio.IncompleteReadError, asyncio.CancelledError):
        pass  # client went away; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
