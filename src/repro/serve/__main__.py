"""``python -m repro.serve`` — run the service daemon."""

import sys

from repro.serve.server import serve_main

if __name__ == "__main__":
    sys.exit(serve_main())
