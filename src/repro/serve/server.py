"""``repro-serve``: the long-lived ATPG-as-a-service daemon.

One asyncio process owns the HTTP API, the job table, the shared
content-addressed result store, and an execution back end (persistent
fork workers by default, in-process threads with ``--workers 0``).  The
API surface (see ``docs/serving.md`` for the worked session):

* ``POST /jobs`` — submit a netlist / benchmark (or a whole campaign
  spec); answers ``200`` from the warm cache, ``202`` when queued,
  ``429`` under QoS pressure, ``503`` while draining;
* ``GET /jobs`` / ``GET /jobs/{id}`` — job table / one record;
* ``GET /jobs/{id}/events`` — the run's flow events, replayed from any
  offset and live-tailed (NDJSON; ``?sse=1`` for Server-Sent Events);
* ``POST /jobs/{id}/cancel`` — cancel a still-queued job;
* ``GET /results/{key}`` — the content-addressed result payload;
* ``GET /metrics`` — Prometheus text exposition of the server registry;
* ``GET /healthz`` — liveness + job-table summary.

Identical submissions cost zero twice over: a key already in the store
is answered immediately (``cached``), and a key currently in flight is
*coalesced* — the follower record shares the primary's event log and
resolves with it.  Graceful shutdown stops admissions, drains running
jobs, and persists the still-queued remainder to
``<state_dir>/queue.json``; the next start re-submits it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.campaign.plan import Job
from repro.campaign.runner import _fresh_payload
from repro.campaign.store import ResultStore
from repro.errors import ReproError
from repro.obs import metrics as _obs
from repro.obs.export import atomic_write_text, to_prometheus_text
from repro.serve.executor import ForkedExecutor, InlineExecutor
from repro.serve.jobs import (
    EventLog,
    JobRecord,
    parse_campaign_submission,
    parse_submission,
)
from repro.serve.protocol import (
    HttpError,
    Request,
    Response,
    Router,
    serve_connection,
)
from repro.serve.qos import QosPolicy

__all__ = ["ReproServer", "serve_main"]


class ReproServer:
    """The service: job table + queue + executor + HTTP front end."""

    def __init__(
        self,
        state_dir,
        store: Optional[ResultStore] = None,
        workers: int = 2,
        qos: Optional[QosPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        job_timeout: float = 600.0,
        hang_timeout: Optional[float] = None,
        incremental: bool = False,
    ):
        self.state_dir = Path(state_dir)
        self.store = store
        self.workers = workers
        #: resolve cache misses through the per-cohort incremental
        #: layer (requires a store; see docs/incremental.md).
        self.incremental = incremental and store is not None
        self.qos = qos if qos is not None else QosPolicy()
        self.host = host
        self.port = port
        self.job_timeout = job_timeout
        self.hang_timeout = hang_timeout

        self._spool_dir = self.state_dir / "netlists"
        self._queue_file = self.state_dir / "queue.json"
        self._records: Dict[str, JobRecord] = {}
        self._active_by_key: Dict[str, str] = {}  #: key -> primary record id
        self._followers: Dict[str, List[str]] = {}  #: primary id -> follower ids
        self._ready: Deque[JobRecord] = deque()  #: queued, not yet dispatched
        self._n_dispatched = 0
        self._n_executed = 0  #: jobs that actually ran (not cached/coalesced)
        self._next_id = 1
        self._paused = False
        self._draining = False
        self._started_at = time.time()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = None
        self._router = self._build_router()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, restore the persisted queue, and begin serving.
        Returns the bound ``(host, port)`` (port 0 resolves here)."""
        self._loop = asyncio.get_running_loop()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if not _obs.enabled():
            _obs.enable(_obs.MetricsRegistry())
        if self.workers == 0:
            self._executor = InlineExecutor(
                1, self._cb_start, self._cb_event, self._cb_done,
                store=self.store, incremental=self.incremental,
            )
        else:
            self._executor = ForkedExecutor(
                self.workers,
                self._cb_start,
                self._cb_event,
                self._cb_done,
                timeout=self.job_timeout,
                hang_timeout=self.hang_timeout,
                incremental=self.incremental,
                cache_root=(
                    str(self.store.root) if self.store is not None else None
                ),
            )
        self._restore_queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    def begin_drain(self) -> None:
        """Phase one of shutdown: refuse new submissions (503) while
        status, event streams, and results stay served."""
        self._draining = True

    async def shutdown(self, drain: bool = True, drain_timeout: float = 30.0) -> None:
        """Stop admissions, optionally drain running jobs, persist the
        queued remainder, and release everything.  The listener stays
        open through the drain so clients can follow their jobs to
        resolution; it closes before the queue is persisted."""
        self.begin_drain()
        self._paused = True
        if drain:
            deadline = self._loop.time() + drain_timeout
            while self._n_dispatched > 0 and self._loop.time() < deadline:
                await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._persist_queue()
        for record in self._records.values():
            if not record.events.closed:
                record.events.close()
        if self._executor is not None:
            await self._loop.run_in_executor(None, self._executor.shutdown)
            self._executor = None
        _obs.disable()

    def pause(self) -> None:
        """Hold queued jobs (dispatch nothing) until :meth:`resume` —
        used by graceful shutdown and by tests that need a determinate
        queue."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._pump()

    # -- queue persistence --------------------------------------------

    def _persist_queue(self) -> None:
        entries = [
            {"id": r.id, "client": r.client, "submission": r.submission}
            for r in self._records.values()
            if r.active
        ]
        doc = {"version": 1, "jobs": entries}
        atomic_write_text(str(self._queue_file), json.dumps(doc, indent=2) + "\n")

    def _restore_queue(self) -> None:
        try:
            doc = json.loads(self._queue_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        for entry in doc.get("jobs", ()):
            try:
                job, canonical = parse_submission(
                    dict(entry.get("submission") or {}),
                    self._spool_dir,
                    self.qos.effective_deadline,
                )
                self._admit(
                    job, canonical, str(entry.get("client", "")),
                    refresh=False, enforce_qos=False,
                    record_id=entry.get("id"),
                )
            except (HttpError, ReproError):
                continue  # a stale entry must not block startup
        try:
            self._queue_file.unlink()
        except OSError:
            pass

    # -- submission / resolution --------------------------------------

    def _new_record_id(self, wanted: Optional[str] = None) -> str:
        if wanted and wanted not in self._records:
            return str(wanted)
        while True:
            rid = f"j{self._next_id:06d}"
            self._next_id += 1
            if rid not in self._records:
                return rid

    def _register(self, record: JobRecord) -> None:
        self._records[record.id] = record

    def _n_active(self) -> int:
        return sum(
            1 for r in self._records.values() if r.active and r.primary_id is None
        )

    def _n_client_active(self, client: str) -> int:
        return sum(
            1
            for r in self._records.values()
            if r.active and r.primary_id is None and r.client == client
        )

    def _count_job(self, mode: str) -> None:
        if _obs.enabled():
            _obs.get_registry().counter(
                "repro_serve_jobs_total",
                "Service jobs resolved, by mode.",
                ("mode",),
            ).labels(mode).inc()

    def _admit(
        self,
        job: Job,
        canonical: Dict,
        client: str,
        refresh: bool,
        enforce_qos: bool = True,
        record_id: Optional[str] = None,
    ) -> Tuple[JobRecord, int]:
        """One planned job -> a record: warm-cache answer, coalesced
        follower, or queued work (in that order of preference)."""
        if not refresh:
            payload = _fresh_payload(self.store, job)
            if payload is not None:
                record = JobRecord(
                    id=self._new_record_id(record_id),
                    job=job,
                    submission=canonical,
                    client=client,
                    events=EventLog(self._loop),
                    state="cached",
                    finished_at=time.time(),
                    payload=payload,
                )
                record.events.append(self._resolved_doc(record))
                record.events.close()
                self._register(record)
                self._count_job("cached")
                return record, 200
        primary_id = self._active_by_key.get(job.key)
        if primary_id is not None:
            primary = self._records[primary_id]
            record = JobRecord(
                id=self._new_record_id(record_id),
                job=job,
                submission=canonical,
                client=client,
                events=primary.events,  # live stream is shared
                primary_id=primary_id,
            )
            self._register(record)
            self._followers.setdefault(primary_id, []).append(record.id)
            return record, 202
        if enforce_qos:
            reason = self.qos.admit(self._n_active(), self._n_client_active(client))
            if reason is not None:
                self._count_job("rejected")
                raise HttpError(
                    429, reason,
                    {"Retry-After": str(self.qos.retry_after_seconds)},
                )
        record = JobRecord(
            id=self._new_record_id(record_id),
            job=job,
            submission=canonical,
            client=client,
            events=EventLog(self._loop),
        )
        self._register(record)
        self._active_by_key[job.key] = record.id
        self._ready.append(record)
        self._pump()
        return record, 202

    def _pump(self) -> None:
        """Feed the executor while it has worker capacity.  Dispatch is
        gated server-side so ``queued`` records stay cancellable and
        graceful shutdown can hold the queue back."""
        capacity = max(1, self.workers)
        while (
            self._ready
            and not self._paused
            and self._n_dispatched < capacity
        ):
            record = self._ready.popleft()
            if record.state != "queued":
                continue  # cancelled while waiting
            self._n_dispatched += 1
            self._executor.submit(record.job)

    # executor callbacks (worker threads) -> loop-marshalled handlers

    def _cb_start(self, key: str) -> None:
        self._loop.call_soon_threadsafe(self._on_start, key)

    def _cb_event(self, key: str, doc: Dict) -> None:
        self._loop.call_soon_threadsafe(self._on_event, key, doc)

    def _cb_done(
        self, key: str, status: str, payload: Optional[Dict],
        error: str, seconds: float,
    ) -> None:
        self._loop.call_soon_threadsafe(
            self._on_done, key, status, payload, error, seconds
        )

    def _primary_record(self, key: str) -> Optional[JobRecord]:
        rid = self._active_by_key.get(key)
        return self._records.get(rid) if rid is not None else None

    def _on_start(self, key: str) -> None:
        record = self._primary_record(key)
        if record is not None and record.state == "queued":
            record.state = "running"
            record.started_at = time.time()

    def _on_event(self, key: str, doc: Dict) -> None:
        record = self._primary_record(key)
        if record is not None:
            record.events.append(doc)

    def _resolved_doc(self, record: JobRecord) -> Dict:
        """The synthetic terminal event every stream ends with."""
        return {
            "event": "JobResolved",
            "stage": "",
            "job_id": record.id,
            "state": record.state,
            "key": record.job.key,
            "seconds": round(record.seconds, 6),
            "error": record.error,
        }

    def _on_done(
        self, key: str, status: str, payload: Optional[Dict],
        error: str, seconds: float,
    ) -> None:
        record = self._primary_record(key)
        self._active_by_key.pop(key, None)
        self._n_dispatched = max(0, self._n_dispatched - 1)
        if record is not None:
            record.state = status
            record.error = error
            record.seconds = seconds
            record.finished_at = time.time()
            if record.started_at is None:
                record.started_at = record.finished_at
            if status == "done":
                record.payload = payload
                self._n_executed += 1
                if self.store is not None and payload is not None:
                    self.store.put(key, payload)
            self._count_job("ran" if status == "done" else status)
            if _obs.enabled():
                _obs.get_registry().histogram(
                    "repro_serve_job_seconds",
                    "Wall seconds per executed service job.",
                ).observe(seconds)
            record.events.append(self._resolved_doc(record))
            record.events.close()
            for fid in self._followers.pop(record.id, ()):
                follower = self._records.get(fid)
                if follower is None:
                    continue
                follower.state = "coalesced" if status == "done" else status
                follower.error = error
                follower.finished_at = record.finished_at
                self._count_job(
                    "coalesced" if status == "done" else status
                )
        self._pump()

    # -- HTTP ----------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self._handle_healthz)
        router.add("GET", "/metrics", self._handle_metrics)
        router.add("POST", "/jobs", self._handle_submit)
        router.add("GET", "/jobs", self._handle_list)
        router.add("GET", "/jobs/{id}", self._handle_job)
        router.add("POST", "/jobs/{id}/cancel", self._handle_cancel)
        router.add("GET", "/jobs/{id}/events", self._handle_events)
        router.add("GET", "/results/{key}", self._handle_result)
        return router

    async def _handle_connection(self, reader, writer) -> None:
        await serve_connection(
            reader, writer, self._router,
            max_body_bytes=self.qos.max_body_bytes,
            observe=self._observe_request,
        )

    def _observe_request(self, request: Request, status: int) -> None:
        if not _obs.enabled():
            return
        route = "/" + (request.path.strip("/").split("/", 1)[0] or "")
        _obs.get_registry().counter(
            "repro_serve_requests_total",
            "HTTP requests served, by top-level route and status code.",
            ("route", "code"),
        ).labels(route, str(status)).inc()

    def _record_or_404(self, record_id: str) -> JobRecord:
        record = self._records.get(record_id)
        if record is None:
            raise HttpError(404, f"no such job: {record_id!r}")
        return record

    async def _handle_healthz(self, request: Request) -> Response:
        states: Dict[str, int] = {}
        for record in self._records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return Response({
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "workers": self.workers,
            "jobs": states,
            "queued": len(self._ready),
            "dispatched": self._n_dispatched,
            "executed_total": self._n_executed,
            "paused": self._paused,
        })

    async def _handle_metrics(self, request: Request) -> Response:
        if not _obs.enabled():
            raise HttpError(503, "metrics registry is not armed")
        self._scrape_store_stats()
        return Response(
            to_prometheus_text(_obs.get_registry()),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _scrape_store_stats(self) -> None:
        """Refresh the store-lifetime cache gauges from ``stats.log`` at
        scrape time.  Gauges, not counters: the log outlives this
        process (and is shared with CLI campaigns), so the exposition
        mirrors the store's cumulative ledger instead of re-counting."""
        if self.store is None or not _obs.enabled():
            return
        try:
            stats = self.store.stats()
        except OSError:
            return
        reg = _obs.get_registry()
        lookups = reg.gauge(
            "repro_cache_lookups",
            "Store-lifetime cache lookups from stats.log, by entry "
            "class and outcome.",
            ("entry_class", "outcome"),
        )
        ratio = reg.gauge(
            "repro_cache_hit_ratio",
            "Store-lifetime cache hit ratio per entry class "
            "(absent lookups read as 0).",
            ("entry_class",),
        )
        for entry_class, shape in stats["classes"].items():
            counts = shape["lookups"]
            lookups.labels(entry_class, "hit").set(counts["hits"])
            lookups.labels(entry_class, "miss").set(counts["misses"])
            ratio.labels(entry_class).set(counts["hit_rate"] or 0.0)

    async def _handle_submit(self, request: Request) -> Response:
        if self._draining:
            raise HttpError(503, "server is draining; resubmit elsewhere")
        body = request.json()
        client = str(
            body.get("client")
            or request.headers.get("x-repro-client", "")
            or "anonymous"
        )
        refresh = bool(body.get("refresh", False))
        if "campaign" in body:
            jobs, submissions = parse_campaign_submission(
                body, self.qos.effective_deadline
            )
            records = []
            code = 200
            for job, canonical in zip(jobs, submissions):
                record, one_code = self._admit(job, canonical, client, refresh)
                records.append(record.to_json_dict())
                code = max(code, one_code)
            return Response({"jobs": records}, status=code)
        job, canonical = parse_submission(
            body, self._spool_dir, self.qos.effective_deadline
        )
        record, code = self._admit(job, canonical, client, refresh)
        return Response({"job": record.to_json_dict()}, status=code)

    async def _handle_list(self, request: Request) -> Response:
        state = request.query.get("state")
        client = request.query.get("client")
        records = [
            r.to_json_dict()
            for r in self._records.values()
            if (state is None or r.state == state)
            and (client is None or r.client == client)
        ]
        return Response({"jobs": records, "n": len(records)})

    async def _handle_job(self, request: Request) -> Response:
        record = self._record_or_404(request.params["id"])
        return Response({"job": record.to_json_dict(verbose=True)})

    async def _handle_cancel(self, request: Request) -> Response:
        record = self._record_or_404(request.params["id"])
        if (
            record.state != "queued"
            or record.primary_id is not None
            or record not in self._ready
        ):
            raise HttpError(
                409, f"job {record.id} is {record.state}; only jobs still "
                "queued server-side can be cancelled"
            )
        record.state = "cancelled"
        record.finished_at = time.time()
        self._active_by_key.pop(record.job.key, None)
        record.events.append(self._resolved_doc(record))
        record.events.close()
        self._count_job("cancelled")
        return Response({"job": record.to_json_dict()})

    async def _handle_events(self, request: Request) -> Response:
        record = self._record_or_404(request.params["id"])
        try:
            start = int(request.query.get("from", "0") or 0)
        except ValueError:
            raise HttpError(400, "from must be an integer event index")
        sse = (
            request.query.get("sse") == "1"
            or "text/event-stream" in request.headers.get("accept", "")
        )

        async def generate():
            async for seq, doc in record.events.stream(start):
                line = json.dumps(
                    {"seq": seq, **doc}, separators=(",", ":")
                )
                yield f"data: {line}\n\n" if sse else line + "\n"

        return Response(
            stream=generate(),
            content_type=(
                "text/event-stream" if sse else "application/x-ndjson"
            ),
        )

    async def _handle_result(self, request: Request) -> Response:
        key = request.params["key"]
        payload = self.store.get(key) if self.store is not None else None
        if payload is None:
            for record in self._records.values():
                if record.job.key == key and record.payload is not None:
                    payload = record.payload
                    break
        if payload is None:
            raise HttpError(404, f"no result stored under {key!r}")
        return Response(payload)


# ---------------------------------------------------------------------------
# repro-serve CLI
# ---------------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Long-lived ATPG service: HTTP/JSON job submission, live "
            "event streaming, and a shared warm result cache."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 = pick a free one and print it)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="persistent fork workers (0 = in-process threads)",
    )
    parser.add_argument(
        "--state-dir", default=None,
        help=(
            "queue persistence + netlist spool directory "
            "(default: <cache dir>/serve)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared result cache (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the shared warm cache",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help=(
            "resolve cache misses through the per-cohort incremental "
            "layer: unchanged fault cohorts replay from cached partials "
            "and only stale ones re-run (needs the cache; "
            "see docs/incremental.md)"
        ),
    )
    parser.add_argument(
        "--max-queue", type=int, default=64,
        help="active-job ceiling before submissions get 429",
    )
    parser.add_argument(
        "--per-client", type=int, default=16,
        help="active-job ceiling per client id",
    )
    parser.add_argument(
        "--max-deadline", type=float, default=None, metavar="SECONDS",
        help="clamp every job's deadline_seconds to this ceiling",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline applied to jobs that request none",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="hard per-job budget enforced on fork workers",
    )
    parser.add_argument(
        "--hang-timeout", type=float, default=None,
        help="kill a fork worker silent this long (presumed hung)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for running jobs at shutdown",
    )
    return parser


async def _amain(args) -> int:
    from repro.campaign.store import default_cache_dir

    state_dir = Path(
        args.state_dir
        if args.state_dir is not None
        else default_cache_dir() / "serve"
    )
    if args.incremental and args.no_cache:
        print(
            "repro-serve: --incremental needs the cache; "
            "drop --no-cache or --incremental",
            file=sys.stderr,
        )
        return 2
    store = None if args.no_cache else ResultStore(
        args.cache_dir, track_stats=True
    )
    server = ReproServer(
        state_dir=state_dir,
        store=store,
        workers=args.workers,
        qos=QosPolicy(
            max_queue=args.max_queue,
            per_client=args.per_client,
            max_deadline_seconds=args.max_deadline,
            default_deadline_seconds=args.default_deadline,
        ),
        host=args.host,
        port=args.port,
        job_timeout=args.timeout,
        hang_timeout=args.hang_timeout,
        incremental=args.incremental,
    )
    host, port = await server.start()
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without signal support in the loop
    await stop.wait()
    print("repro-serve: draining and persisting queue...", flush=True)
    await server.shutdown(drain=True, drain_timeout=args.drain_timeout)
    print("repro-serve: bye", flush=True)
    return 0


def serve_main(argv=None) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(serve_main())
