"""The k-Confluent Stable State Graph (paper §4).

The CSSG is the synchronous abstraction of the asynchronous circuit: its
nodes are reachable stable states, and an edge ``s --x--> t`` exists when
driving the inputs to pattern ``x`` from stable state ``s`` makes *every*
gate-transition interleaving settle in the same stable state ``t`` within
at most ``k`` transitions.  Vectors causing non-confluence, oscillation or
over-long settling are pruned; what is left behaves like a deterministic
synchronous FSM, so standard sequential ATPG applies (paper §5).

Construction is a breadth-first traversal from the reset state: for each
stable state, every input pattern (optionally limited to a maximum number
of simultaneously changing pins) is analysed with
:func:`repro.sgraph.explore.settle_report`.  Reports are memoized on the
post-R_I state, since distinct (state, pattern) pairs can coincide there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from repro._bits import hamming
from repro.circuit.netlist import Circuit
from repro.errors import StateGraphError
from repro.sgraph.explore import settle_report


@dataclass
class CssgStats:
    """Construction accounting: vector-validity counters, plus — for the
    symbolic builder — the paper-table state counts and kernel metrics
    (peak BDD nodes, GC passes, reorders, image iterations)."""

    n_vectors_tried: int = 0
    n_valid: int = 0
    n_nonconfluent: int = 0
    n_oscillating: int = 0
    n_too_slow: int = 0
    n_phi: int = 0  # ternary method: rejected with uncertain outcome
    max_settle_path: int = 0
    #: The validity analysis that actually ran ("exact" / "ternary" /
    #: "hybrid" / "symbolic"; "auto" is resolved before construction).
    method: str = ""
    #: TCSG reachable-state count (symbolic builder only; 0 = unknown).
    n_tcsg_states: int = 0
    # Symbolic-kernel metrics (zero for the explicit builders):
    peak_bdd_nodes: int = 0
    n_gc_passes: int = 0
    n_reorders: int = 0
    n_image_iterations: int = 0
    # ITE-cache effectiveness of the symbolic kernel.  In-memory /
    # telemetry only: deliberately NOT part of the serialized ``cssg``
    # block (they are performance facts, not result facts) — the
    # telemetry block in :class:`repro.core.atpg.AtpgResult` carries
    # them for observed runs.
    n_cache_hits: int = 0
    n_cache_lookups: int = 0


@dataclass
class Cssg:
    """The synchronous finite-state abstraction of an async circuit."""

    circuit: Circuit
    k: int
    reset: int
    states: Set[int] = field(default_factory=set)
    edges: Dict[int, Dict[int, int]] = field(default_factory=dict)
    stats: CssgStats = field(default_factory=CssgStats)

    @property
    def n_states(self) -> int:
        return len(self.states)

    @property
    def n_edges(self) -> int:
        return sum(len(e) for e in self.edges.values())

    # The facts below mirror :class:`repro.core.atpg.CssgSummary` so a
    # live graph and a deserialized summary are duck-interchangeable for
    # reports.

    @property
    def method(self) -> str:
        """The validity analysis that built this graph (see stats)."""
        return self.stats.method

    @property
    def n_tcsg_states(self) -> int:
        return self.stats.n_tcsg_states

    @property
    def peak_bdd_nodes(self) -> int:
        return self.stats.peak_bdd_nodes

    @property
    def n_gc_passes(self) -> int:
        return self.stats.n_gc_passes

    @property
    def n_reorders(self) -> int:
        return self.stats.n_reorders

    @property
    def n_image_iterations(self) -> int:
        return self.stats.n_image_iterations

    def valid_patterns(self, state: int) -> Dict[int, int]:
        """Map {input pattern: successor stable state} for ``state``."""
        return self.edges.get(state, {})

    def successor(self, state: int, pattern: int) -> Optional[int]:
        return self.edges.get(state, {}).get(pattern)

    # -- justification support (paper §5.2) -----------------------------

    def bfs_tree(self) -> Tuple[Dict[int, int], Dict[int, Tuple[int, int]]]:
        """Shortest-path tree from the reset state.

        Returns ``(dist, parent)`` where ``parent[t] = (s, pattern)`` is
        the tree edge reaching ``t``.  Deterministic: patterns are tried
        in increasing numeric order.
        """
        dist = {self.reset: 0}
        parent: Dict[int, Tuple[int, int]] = {}
        frontier = [self.reset]
        while frontier:
            nxt: List[int] = []
            for s in frontier:
                for pattern in sorted(self.edges.get(s, {})):
                    t = self.edges[s][pattern]
                    if t not in dist:
                        dist[t] = dist[s] + 1
                        parent[t] = (s, pattern)
                        nxt.append(t)
            frontier = nxt
        return dist, parent

    def justify(self, targets: Iterable[int]) -> Optional[Tuple[List[int], int]]:
        """Shortest input sequence driving reset to any state in ``targets``.

        Returns ``(patterns, reached_state)`` or None when unreachable.
        An empty pattern list means the reset state itself qualifies.
        """
        targets = set(targets)
        if not targets:
            return None
        dist, parent = self.bfs_tree()
        best = None
        for t in targets:
            if t in dist and (best is None or dist[t] < dist[best]):
                best = t
        if best is None:
            return None
        patterns: List[int] = []
        node = best
        while node != self.reset:
            prev, pattern = parent[node]
            patterns.append(pattern)
            node = prev
        patterns.reverse()
        return patterns, best

    def random_walk(self, rng: random.Random, length: int) -> List[int]:
        """A random valid input sequence from reset (for random TPG)."""
        seq: List[int] = []
        state = self.reset
        for _ in range(length):
            choices = sorted(self.edges.get(state, {}))
            if not choices:
                break
            pattern = rng.choice(choices)
            seq.append(pattern)
            state = self.edges[state][pattern]
        return seq

    def run(self, patterns: Iterable[int]) -> List[int]:
        """Replay a pattern sequence; returns the visited stable states
        (excluding reset).  Raises if a pattern is not a valid edge."""
        state = self.reset
        visited = []
        for pattern in patterns:
            nxt = self.successor(state, pattern)
            if nxt is None:
                raise StateGraphError(
                    f"pattern {pattern:0{self.circuit.n_inputs}b} is not valid "
                    f"in state {self.circuit.state_bits(state)}"
                )
            state = nxt
            visited.append(state)
        return visited


def frontier_traverse(
    cssg: Cssg,
    analyse,
    max_input_changes: Optional[int],
    cap_states: int,
) -> Cssg:
    """The construction loop every builder shares: breadth-first over
    reachable stable states, trying every input pattern (optionally
    Hamming-limited), with results memoized on the post-R_I state.

    ``analyse(started) -> Optional[successor]`` is the method-specific
    validity analysis — the only thing the builders differ in.  Raises
    :class:`StateGraphError` past ``cap_states`` stable states.
    """
    from repro.obs.trace import get_tracer

    with get_tracer().span("cssg.traverse", circuit=cssg.circuit.name):
        _frontier_loop(cssg, analyse, max_input_changes, cap_states)
    return cssg


def _frontier_loop(cssg, analyse, max_input_changes, cap_states) -> None:
    circuit = cssg.circuit
    stats = cssg.stats
    all_patterns = list(range(1 << circuit.n_inputs))
    memo: Dict[int, Optional[int]] = {}  # post-R_I state -> succ or None
    frontier = [cssg.reset]
    cssg.states.add(cssg.reset)
    while frontier:
        next_frontier: List[int] = []
        for s in frontier:
            cur = circuit.input_pattern(s)
            out_edges: Dict[int, int] = {}
            for pattern in all_patterns:
                if pattern == cur:
                    continue
                if (
                    max_input_changes is not None
                    and hamming(pattern, cur) > max_input_changes
                ):
                    continue
                stats.n_vectors_tried += 1
                started = circuit.apply_input_pattern(s, pattern)
                if started in memo:
                    t = memo[started]
                else:
                    t = analyse(started)
                    memo[started] = t
                if t is None:
                    continue
                stats.n_valid += 1
                out_edges[pattern] = t
                if t not in cssg.states:
                    if len(cssg.states) >= cap_states:
                        raise StateGraphError(
                            f"CSSG exceeded {cap_states} stable states"
                        )
                    cssg.states.add(t)
                    next_frontier.append(t)
            cssg.edges[s] = out_edges
        frontier = next_frontier


@runtime_checkable
class CssgBuilder(Protocol):
    """Strategy protocol every CSSG construction method implements.

    A builder is registered under its ``method`` name (see
    :data:`CSSG_METHODS`) and produces a :class:`Cssg` that downstream
    consumers treat identically regardless of how it was built — the
    symbolic builder's output is structurally indistinguishable from the
    explicit exact builder's.
    """

    method: str

    def build(
        self,
        circuit: Circuit,
        k: Optional[int] = None,
        reset: Optional[int] = None,
        max_input_changes: Optional[int] = None,
        cap_states: int = 100_000,
        cap_settle: int = 200_000,
    ) -> Cssg:
        ...  # pragma: no cover


class ExplicitCssgBuilder:
    """Enumerative construction: forward traversal of reachable stable
    states with a per-vector validity analysis.

    ``method`` selects the analysis:

    * ``"exact"`` — exhaustive interleaving exploration implementing the
      paper's formal TCR_k/CSSG_k definition (§4.2): the settling graph
      must be acyclic with a single stable terminal reached within ``k``
      transitions.  Exponential in the worst case; fine for small
      circuits.
    * ``"ternary"`` — Eichelberger ternary simulation (§5.4): a vector is
      valid iff Algorithms A+B settle every signal to a definite value.
      This is the GMW race model of [6] — polynomial, conservative about
      races, and *more permissive* about transient cycles: a cyclic
      settling graph whose escape is delay-forced still gets a definite
      verdict.  The ``k`` bound is not checked (GMW has no step count).
    * ``"hybrid"`` — the union of the two acceptances: take the exact
      verdict when the settling graph is acyclic; when only a transient
      cycle blocks it, accept a definite ternary outcome.  Both criteria
      are sound for the unbounded gate-delay model, and each covers the
      other's blind spot (exact: interlocked feedback that ternary
      dissolves into Φ; ternary: transient cycles whose escape is
      delay-forced).
    """

    def __init__(self, method: str):
        self.method = method

    def build(
        self,
        circuit: Circuit,
        k: Optional[int] = None,
        reset: Optional[int] = None,
        max_input_changes: Optional[int] = None,
        cap_states: int = 100_000,
        cap_settle: int = 200_000,
    ) -> Cssg:
        method = self.method
        if reset is None:
            reset = circuit.require_reset()
        if k is None:
            k = circuit.k
        if not circuit.is_stable(reset):
            report = settle_report(circuit, reset, cap_settle)
            if report.valid(k):
                reset = report.unique_stable
            else:
                raise StateGraphError(
                    f"reset state {circuit.state_bits(reset)} is unstable and "
                    "does not settle confluently; provide a stable .reset"
                )

        cssg = Cssg(circuit=circuit, k=k, reset=reset)
        stats = cssg.stats
        stats.method = method

        def ternary_outcome(started: int) -> Optional[int]:
            from repro.sim import ternary as tsim

            result = tsim.settle(
                circuit, tsim.from_binary(started, circuit.n_signals)
            )
            if not tsim.is_definite(result):
                stats.n_phi += 1
                return None
            return tsim.to_binary(result)

        def analyse(started: int) -> Optional[int]:
            """Unique stable successor of the post-R_I state, or None."""
            if method == "ternary":
                return ternary_outcome(started)
            report = settle_report(circuit, started, cap_settle)
            if report.nonconfluent:
                stats.n_nonconfluent += 1
                return None
            if report.oscillating or report.truncated:
                if method == "hybrid":
                    # A transient cycle: a definite ternary verdict proves
                    # a delay-forced escape to one stable state.
                    return ternary_outcome(started)
                stats.n_oscillating += 1
                return None
            assert report.longest_path is not None
            if report.longest_path > k:
                stats.n_too_slow += 1
                return None
            stats.max_settle_path = max(
                stats.max_settle_path, report.longest_path
            )
            return report.unique_stable

        return frontier_traverse(cssg, analyse, max_input_changes, cap_states)


class SymbolicCssgBuilder:
    """BDD-based construction (paper §3.1/§4.2): the exact TCR_k
    semantics computed by symbolic image iteration instead of explicit
    interleaving enumeration — the production path for large state
    spaces.  See :class:`repro.sgraph.symbolic.SymbolicTcsg`."""

    method = "symbolic"

    def build(
        self,
        circuit: Circuit,
        k: Optional[int] = None,
        reset: Optional[int] = None,
        max_input_changes: Optional[int] = None,
        cap_states: int = 100_000,
        cap_settle: int = 200_000,
    ) -> Cssg:
        # cap_states bounds the stable-state enumeration here too;
        # cap_settle governs explicit settling only (symbolic settling
        # is bounded by k and the manager's housekeeping instead).
        from repro.sgraph.symbolic import SymbolicTcsg

        return SymbolicTcsg(circuit).build_cssg(
            k=k,
            reset=reset,
            max_input_changes=max_input_changes,
            cap_states=cap_states,
        )


#: Registry of CSSG construction methods; ``build_cssg`` dispatches on
#: it and :func:`repro.core.atpg.cssg_for` resolves ``"auto"`` against
#: its keys.  Extend by registering another :class:`CssgBuilder`.
CSSG_METHODS: Dict[str, CssgBuilder] = {
    "exact": ExplicitCssgBuilder("exact"),
    "ternary": ExplicitCssgBuilder("ternary"),
    "hybrid": ExplicitCssgBuilder("hybrid"),
    "symbolic": SymbolicCssgBuilder(),
}


def build_cssg(
    circuit: Circuit,
    k: Optional[int] = None,
    reset: Optional[int] = None,
    max_input_changes: Optional[int] = None,
    method: str = "exact",
    cap_states: int = 100_000,
    cap_settle: int = 200_000,
) -> Cssg:
    """Compute the CSSG_k by forward traversal from the reset state.

    ``method`` names a registered :class:`CssgBuilder` — ``"exact"`` /
    ``"ternary"`` / ``"hybrid"`` (enumerative; see
    :class:`ExplicitCssgBuilder`) or ``"symbolic"`` (BDD image
    computation with exact TCR_k semantics; see
    :class:`SymbolicCssgBuilder`).  ``max_input_changes`` restricts how
    many input pins may switch in one test cycle (None = any subset,
    the paper's default).  ``cap_states`` bounds the explicit
    stable-state traversal, ``cap_settle`` each explicit settling
    exploration.
    """
    builder = CSSG_METHODS.get(method)
    if builder is None:
        raise StateGraphError(
            f"unknown CSSG method {method!r} "
            f"(available: {', '.join(sorted(CSSG_METHODS))})"
        )
    return builder.build(
        circuit,
        k=k,
        reset=reset,
        max_input_changes=max_input_changes,
        cap_states=cap_states,
        cap_settle=cap_settle,
    )
