"""Symbolic (BDD-based) construction of the test-mode state graphs.

This is the paper's §3.1/§4.2 machinery — and, since the symbolic-kernel
rewrite, the production construction path for circuits whose state space
is too large to enumerate: encode the circuit state as one BDD variable
per signal, and compute

* the TCSG reachable set by a frontier-based least fixpoint of images
  under the two test-mode relations (gate switches and input rewrites),
* the CSSG edges by iterating the gate-switch image exactly ``k`` times
  from each (stable state, input pattern) pair: the pair is a CSSG edge
  iff the k-step image is one singleton stable state (TCR_k uniqueness,
  §4.2).

**Partitioned transition relations.**  The monolithic relation
``R_delta = ∨_g (excited_g ∧ flip_g ∧ others_hold) ∨ stable-loop`` of
the seed implementation is replaced by its per-gate partition: each gate
contributes the conjunct ``excited_g ∧ (g' = ¬g) ∧ frame_g`` where the
frame holds every other signal.  Because the interleaved model switches
exactly one signal per step, the relational product against partition
``g`` quantifies *early* down to a single variable and the next-state
encoding disappears entirely:

    image_g(S)  =  (S ∧ excited_g)[g ← ¬g]

one conjunction and one cofactor swap (:meth:`BddManager.flip_var`),
with no next-state variables, no renaming, and no frame conjuncts.  The
input relation ``R_I`` partitions the same way: from stable states the
inputs are rewritten arbitrarily, so its image is
``∃ inputs . (S ∧ stable)``.  The manager therefore only carries
``n_signals`` variables instead of the seed's interleaved ``2n``.

**Memory discipline.**  Persistent functions (gate functions, excitation
conditions, the stable set) are registered as GC roots; the traversal
loops call :meth:`BddManager.checkpoint` with their live frontier
protected, so growth past the configured thresholds triggers
mark-and-sweep collection and, past the reorder threshold, in-place
sifting — peak live nodes stay bounded by the working set, not by the
history of the computation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.reorder import static_order
from repro.circuit.expr import OP_AND, OP_NOT, OP_OR, OP_VAR, OP_XOR
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import StateGraphError
from repro.sgraph.cssg import Cssg

#: Default housekeeping thresholds for the traversal manager: cheap
#: mark-and-sweep collects from the first threshold on, escalating to a
#: full in-place sift only when the *live* set keeps growing past the
#: second (collection alone raises its own next trigger, so a working
#: set that stays small after GC never pays for sifting).  Both sit
#: above anything the bundled corpus allocates (peak ~13k nodes) —
#: these exist for the circuits the explicit builder cannot touch,
#: where declaration order is rarely the right order.
DEFAULT_AUTO_GC_NODES = 20_000
DEFAULT_AUTO_REORDER_NODES = 100_000


class SymbolicTcsg:
    """BDD encoding of one circuit's test-mode behaviour.

    Signal *i* is BDD variable *i*; a set of states is a function over
    those variables.  ``auto_gc_nodes`` / ``auto_reorder_nodes`` arm the
    manager's checkpoint housekeeping (``None`` disables either).
    """

    def __init__(
        self,
        circuit: Circuit,
        auto_gc_nodes: Optional[int] = DEFAULT_AUTO_GC_NODES,
        auto_reorder_nodes: Optional[int] = DEFAULT_AUTO_REORDER_NODES,
    ):
        self.circuit = circuit
        self.n = circuit.n_signals
        self.mgr = BddManager(
            self.n,
            auto_gc_nodes=auto_gc_nodes,
            auto_reorder_nodes=auto_reorder_nodes,
        )
        mgr = self.mgr
        # Connectivity-driven initial order: declaration order places
        # related signals arbitrarily far apart (inputs first, their
        # consumers much later), which is exactly the pattern that makes
        # intermediate images exponential.  Starting from the netlist
        # DFS order means dynamic reordering corrects residual badness
        # instead of digging out of a structural one.
        mgr.set_order(static_order(circuit))
        #: Gate functions over the state variables.
        self.gate_fn: Dict[int, int] = {
            g.index: self.compile_program(g.program) for g in circuit.gates
        }
        #: Per-gate partition of R_delta: the excitation condition of
        #: each gate (the image under partition g is
        #: ``flip_var(S ∧ excited[g], g)``).
        self.excited: Dict[int, int] = {
            g.index: mgr.apply_xor(mgr.var(g.index), self.gate_fn[g.index])
            for g in circuit.gates
        }
        self.stable = mgr.and_all(
            self.excited[g.index] ^ 1 for g in circuit.gates
        )
        self._input_vars = list(range(circuit.n_inputs))
        #: Image-computation step counter (reachability + settling).
        self.n_image_iterations = 0
        for ref in self.gate_fn.values():
            mgr.add_root(ref)
        for ref in self.excited.values():
            mgr.add_root(ref)
        mgr.add_root(self.stable)

    # -- encoding helpers -------------------------------------------------

    def compile_program(
        self, program, stuck: Optional[Dict[int, int]] = None
    ) -> int:
        """Compile a gate program to a BDD; ``stuck`` optionally forces
        source signals to constants (the input stuck-at fault model)."""
        mgr = self.mgr
        stack: List[int] = []
        for op, arg in program:
            if op == OP_VAR:
                if stuck is not None and arg in stuck:
                    stack.append(TRUE if stuck[arg] else FALSE)
                else:
                    stack.append(mgr.var(arg))
            elif op == OP_NOT:
                stack.append(stack.pop() ^ 1)
            elif op == OP_AND:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_and(a, b))
            elif op == OP_OR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_or(a, b))
            elif op == OP_XOR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_xor(a, b))
            else:  # OP_CONST
                stack.append(TRUE if arg else FALSE)
        return stack[0]

    def faulty_gate_fn(self, fault: Fault) -> int:
        """The faulted gate's function under a *stuck-at* ``fault``
        (same variables).  Other fault kinds build their symbolic
        predicates from :attr:`gate_fn` directly — see the
        ``never_excited_symbolic`` hooks in :mod:`repro.faultmodels`."""
        if fault.kind == "output":
            return TRUE if fault.value else FALSE
        if fault.kind != "input":
            raise StateGraphError(
                f"faulty_gate_fn supports stuck-at kinds only, not {fault.kind!r}"
            )
        gate = next(g for g in self.circuit.gates if g.index == fault.gate)
        return self.compile_program(gate.program, stuck={fault.site: fault.value})

    def state_bdd(self, state: int) -> int:
        """Characteristic function of one concrete state."""
        return self.mgr.cube(
            {i: (state >> i) & 1 for i in range(self.n)}
        )

    # -- images ------------------------------------------------------------

    def delta_image(self, states: int) -> int:
        """Successors under one gate switch (partitioned image: one
        conjunction + one cofactor flip per gate, merged as a balanced
        OR tree — pairwise unions keep intermediate results small)."""
        mgr = self.mgr
        self.n_image_iterations += 1
        images = []
        for g, excited in self.excited.items():
            moving = mgr.apply_and(states, excited)
            if moving != FALSE:
                images.append(mgr.flip_var(moving, g))
        while len(images) > 1:
            merged = [
                mgr.apply_or(images[i], images[i + 1])
                for i in range(0, len(images) - 1, 2)
            ]
            if len(images) & 1:
                merged.append(images[-1])
            images = merged
        return images[0] if images else FALSE

    def input_image(self, states: int) -> int:
        """States reachable by rewriting the inputs of a stable state
        (the early-quantified image of R_I)."""
        self.n_image_iterations += 1
        return self.mgr.and_exists(states, self.stable, self._input_vars)

    def settle_step(self, states: int) -> int:
        """One R_delta step with the stable self-loop: gate switches plus
        stable states holding — the k-step settling iterator."""
        mgr = self.mgr
        return mgr.apply_or(
            self.delta_image(states), mgr.apply_and(states, self.stable)
        )

    def _checkpoint(self, *live: int) -> None:
        """Housekeeping safe point with the loop's live sets protected."""
        mgr = self.mgr
        for ref in live:
            mgr.add_root(ref)
        mgr.checkpoint()
        for ref in live:
            mgr.remove_root(ref)

    # -- traversal ---------------------------------------------------------

    def reachable(
        self, from_states: Optional[int] = None, max_iters: int = 100_000
    ) -> int:
        """Least fixpoint of the TCSG relation R_I ∪ R_delta from reset,
        frontier-based: each iteration computes the image of the newly
        reached states only."""
        from repro.obs.trace import get_tracer

        mgr = self.mgr
        tracer = get_tracer()
        if from_states is None:
            from_states = self.state_bdd(self.circuit.require_reset())
        reached = from_states
        frontier = from_states
        with tracer.span("cssg.reach"):
            for iteration in range(max_iters):
                # One span per frontier *iteration*, not per image call —
                # iterations are the natural unit and stay rare enough
                # that tracing cannot perturb the kernel.
                with tracer.span("cssg.image", iteration=iteration):
                    img = mgr.apply_or(
                        self.delta_image(frontier), self.input_image(frontier)
                    )
                    new = mgr.apply_and(img, reached ^ 1)
                    if new == FALSE:
                        return reached
                    reached = mgr.apply_or(reached, new)
                    frontier = new
                    self._checkpoint(reached, frontier)
        raise StateGraphError("symbolic reachability did not converge")

    def stable_reachable(self, from_states: Optional[int] = None) -> int:
        """The reachable *stable* states — the node universe of the CSSG
        before the validity pruning."""
        return self.mgr.apply_and(self.reachable(from_states), self.stable)

    def enumerate_states(self, bdd: int) -> Iterator[int]:
        """Decode a state-set BDD into packed state ints."""
        for assignment in self.mgr.sat_iter(bdd, list(range(self.n))):
            state = 0
            for i in range(self.n):
                if assignment[i]:
                    state |= 1 << i
            yield state

    def count_states(self, bdd: int) -> int:
        return self.mgr.sat_count(bdd, list(range(self.n)))

    # -- symbolic CSSG -------------------------------------------------------

    def k_step_outcome(self, state: int, pattern: int, k: int) -> Tuple[bool, Optional[int]]:
        """TCR_k uniqueness test for one (stable state, input pattern).

        Iterates the R_delta image exactly ``k`` times (stable
        self-loops pad shorter paths) from the post-R_I state.  Returns
        ``(valid, successor)``: valid iff the k-step set is a single
        stable state — the paper's CSSG_k membership condition.
        """
        started = self.circuit.apply_input_pattern(state, pattern)
        return self._settle_outcome(started, k)

    def _settle_outcome(self, started: int, k: int) -> Tuple[bool, Optional[int]]:
        mgr = self.mgr
        current = self.state_bdd(started)
        for _ in range(k):
            nxt = self.settle_step(current)
            if nxt == current:
                # Fixpoint: the set at every later step equals this one.
                break
            current = nxt
            self._checkpoint(current)
        # The k-step set must be one state, and that state stable: the
        # subset test is a single conjunction, no decoding needed.
        if mgr.apply_and(current, self.stable) != current:
            return False, None
        if self.count_states(current) != 1:
            return False, None
        only = next(self.enumerate_states(current))
        return True, only

    def build_cssg(
        self,
        k: Optional[int] = None,
        reset: Optional[int] = None,
        max_input_changes: Optional[int] = None,
        cap_states: int = 100_000,
    ) -> Cssg:
        """CSSG via symbolic traversal; result-identical (states, edges,
        reset) to :func:`repro.sgraph.cssg.build_cssg` with
        ``method="exact"``.  The traversal loop is the shared
        :func:`repro.sgraph.cssg.frontier_traverse`; only the per-vector
        analysis (symbolic k-step settling) is this builder's own.
        ``cap_states`` bounds the stable-state enumeration exactly as it
        does for the explicit builders."""
        from repro.sgraph.cssg import frontier_traverse

        circuit = self.circuit
        if k is None:
            k = circuit.k
        if reset is None:
            reset = circuit.require_reset()
        if not circuit.is_stable(reset):
            valid, settled = self._settle_outcome(reset, k)
            if not valid:
                raise StateGraphError(
                    f"reset state {circuit.state_bits(reset)} is unstable and "
                    "does not settle confluently; provide a stable .reset"
                )
            assert settled is not None
            reset = settled
        cssg = Cssg(circuit=circuit, k=k, reset=reset)
        stats = cssg.stats
        stats.method = "symbolic"

        def analyse(started: int) -> Optional[int]:
            valid, succ = self._settle_outcome(started, k)
            return succ if valid else None

        frontier_traverse(cssg, analyse, max_input_changes, cap_states)
        if max_input_changes is None:
            # The paper's Table metric: total TCSG reachable states.
            stats.n_tcsg_states = self.count_states(self.reachable(
                self.state_bdd(reset)
            ))
        self._record_kernel_stats(stats)
        return cssg

    def _record_kernel_stats(self, stats) -> None:
        mstats = self.mgr.stats
        stats.peak_bdd_nodes = mstats.peak_nodes
        stats.n_gc_passes = mstats.n_gc_passes
        stats.n_reorders = mstats.n_reorders
        stats.n_image_iterations = self.n_image_iterations
        stats.n_cache_hits = mstats.cache_hits
        stats.n_cache_lookups = mstats.cache_lookups
        # Small builds may never cross a GC/sift boundary — flush the
        # kernel counters so armed runs always see repro_bdd_* series.
        self.mgr.publish_metrics()
