"""Symbolic (BDD-based) traversal of the test-mode circuit state graph.

This is the paper's §3.1/§4.2 machinery: encode the circuit state as BDD
variables, build the transition relations

* ``R_delta`` — one excited gate switches (stable states self-loop), and
* ``R_I`` — a stable state has its input bits rewritten arbitrarily,

then compute the TCSG reachable set by a least-fixpoint of images, and
the CSSG edges by iterating the R_delta image exactly ``k`` times from
each (stable state, input pattern) pair: the pair is a CSSG edge iff the
k-step image is one singleton stable state (TCR_k uniqueness, §4.2).

Variable order interleaves current/next: signal *i* gets current level
``2i`` and next level ``2i+1``, the classic ordering for relations.

The module exists both as the faithful "symbolic techniques" of the paper
and as an independent oracle: tests assert that explicit and symbolic
reachability/CSSG agree exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.circuit.expr import OP_AND, OP_CONST, OP_NOT, OP_OR, OP_VAR, OP_XOR
from repro.circuit.netlist import Circuit
from repro.errors import StateGraphError
from repro.sgraph.cssg import Cssg


class SymbolicTcsg:
    """BDD encoding of one circuit's test-mode behaviour."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        n = circuit.n_signals
        self.mgr = BddManager(2 * n)
        self.n = n
        # Gate functions over current-state variables.
        self.gate_fn: Dict[int, int] = {
            g.index: self._compile(g.program) for g in circuit.gates
        }
        self.stable = self._stable_set()
        self.r_delta = self._build_r_delta()
        self.r_input = self._build_r_input()

    # -- encoding helpers -------------------------------------------------

    def cur(self, i: int) -> int:
        """Current-state variable level of signal i."""
        return 2 * i

    def nxt(self, i: int) -> int:
        """Next-state variable level of signal i."""
        return 2 * i + 1

    def _compile(self, program) -> int:
        mgr = self.mgr
        stack: List[int] = []
        for op, arg in program:
            if op == OP_VAR:
                stack.append(mgr.var(self.cur(arg)))
            elif op == OP_NOT:
                stack.append(mgr.apply_not(stack.pop()))
            elif op == OP_AND:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_and(a, b))
            elif op == OP_OR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_or(a, b))
            elif op == OP_XOR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_xor(a, b))
            else:  # OP_CONST
                stack.append(TRUE if arg else FALSE)
        return stack[0]

    def state_bdd(self, state: int) -> int:
        """Characteristic function of one concrete state (current vars)."""
        mgr = self.mgr
        lits = []
        for i in range(self.n):
            level = self.cur(i)
            lits.append(mgr.var(level) if (state >> i) & 1 else mgr.nvar(level))
        return mgr.and_all(lits)

    def _stable_set(self) -> int:
        """BDD of all stable states: every gate equals its function."""
        mgr = self.mgr
        conjuncts = []
        for g in self.circuit.gates:
            out = mgr.var(self.cur(g.index))
            conjuncts.append(mgr.apply_iff(out, self.gate_fn[g.index]))
        return mgr.and_all(conjuncts)

    def _same(self, indices) -> int:
        """BDD asserting next == current for the given signals."""
        mgr = self.mgr
        conjuncts = [
            mgr.apply_iff(mgr.var(self.nxt(i)), mgr.var(self.cur(i)))
            for i in indices
        ]
        return mgr.and_all(conjuncts)

    def _build_r_delta(self) -> int:
        """R_delta: switch one excited gate, or self-loop when stable."""
        mgr = self.mgr
        n_inputs = self.circuit.n_inputs
        inputs_hold = self._same(range(n_inputs))
        disjuncts = []
        all_gates = [g.index for g in self.circuit.gates]
        for g in self.circuit.gates:
            excited = mgr.apply_xor(mgr.var(self.cur(g.index)), self.gate_fn[g.index])
            flip = mgr.apply_xor(
                mgr.var(self.nxt(g.index)), mgr.var(self.cur(g.index))
            )
            others_hold = self._same(i for i in all_gates if i != g.index)
            disjuncts.append(
                mgr.and_all([excited, flip, others_hold])
            )
        stable_loop = mgr.apply_and(self.stable, self._same(all_gates))
        moves = mgr.or_all(disjuncts)
        return mgr.apply_and(inputs_hold, mgr.apply_or(moves, stable_loop))

    def _build_r_input(self) -> int:
        """R_I: from a stable state, inputs change freely, gates hold."""
        mgr = self.mgr
        gates_hold = self._same(g.index for g in self.circuit.gates)
        differs = mgr.apply_not(self._same(range(self.circuit.n_inputs)))
        return mgr.and_all([self.stable, gates_hold, differs])

    # -- traversal ---------------------------------------------------------

    def _next_to_cur(self) -> Dict[int, int]:
        return {self.nxt(i): self.cur(i) for i in range(self.n)}

    def image(self, states: int, relation: int) -> int:
        """Forward image: rename(exists cur: relation AND states)."""
        mgr = self.mgr
        cur_vars = [self.cur(i) for i in range(self.n)]
        img_next = mgr.and_exists(relation, states, cur_vars)
        return mgr.rename(img_next, self._next_to_cur())

    def reachable(self, from_states: Optional[int] = None, max_iters: int = 100_000) -> int:
        """Least fixpoint of the TCSG relation R_I ∪ R_delta from reset."""
        mgr = self.mgr
        if from_states is None:
            from_states = self.state_bdd(self.circuit.require_reset())
        relation = mgr.apply_or(self.r_delta, self.r_input)
        reached = from_states
        frontier = from_states
        for _ in range(max_iters):
            img = self.image(frontier, relation)
            new = mgr.apply_and(img, mgr.apply_not(reached))
            if new == FALSE:
                return reached
            reached = mgr.apply_or(reached, new)
            frontier = new
        raise StateGraphError("symbolic reachability did not converge")

    def stable_reachable(self, from_states: Optional[int] = None) -> int:
        return self.mgr.apply_and(self.reachable(from_states), self.stable)

    def enumerate_states(self, bdd: int) -> Iterator[int]:
        """Decode a current-variable BDD into packed state ints."""
        cur_vars = [self.cur(i) for i in range(self.n)]
        for assignment in self.mgr.sat_iter(bdd, cur_vars):
            state = 0
            for i in range(self.n):
                if assignment[self.cur(i)]:
                    state |= 1 << i
            yield state

    def count_states(self, bdd: int) -> int:
        return self.mgr.sat_count(bdd, [self.cur(i) for i in range(self.n)])

    # -- symbolic CSSG -------------------------------------------------------

    def k_step_outcome(self, state: int, pattern: int, k: int) -> Tuple[bool, Optional[int]]:
        """TCR_k uniqueness test for one (stable state, input pattern).

        Iterates the R_delta image exactly ``k`` times (stable self-loops
        pad shorter paths) from the post-R_I state.  Returns
        ``(valid, successor)``: valid iff the k-step set is a single
        stable state — the paper's CSSG_k membership condition.
        """
        mgr = self.mgr
        started = self.circuit.apply_input_pattern(state, pattern)
        current = self.state_bdd(started)
        seen_at = [current]
        for step in range(k):
            nxt = self.image(current, self.r_delta)
            if nxt == current:
                # Fixpoint: the set at every later step equals this one.
                break
            current = nxt
            seen_at.append(current)
        singleton = self.count_states(current) == 1
        if not singleton:
            return False, None
        only = next(self.enumerate_states(current))
        if not self.circuit.is_stable(only):
            return False, None
        # The set must have *converged* to the singleton within k steps —
        # if the loop above broke early it converged; if it ran k times,
        # current is exactly the k-step set, which is what CSSG_k demands.
        return True, only

    def build_cssg(self, k: Optional[int] = None) -> Cssg:
        """CSSG via symbolic traversal; mirrors
        :func:`repro.sgraph.cssg.build_cssg` and must agree with it."""
        circuit = self.circuit
        if k is None:
            k = circuit.k
        reset = circuit.require_reset()
        if not circuit.is_stable(reset):
            raise StateGraphError("symbolic CSSG needs a stable reset state")
        cssg = Cssg(circuit=circuit, k=k, reset=reset)
        cssg.states.add(reset)
        frontier = [reset]
        n_inputs = circuit.n_inputs
        while frontier:
            next_frontier = []
            for s in frontier:
                out_edges: Dict[int, int] = {}
                cur_pattern = circuit.input_pattern(s)
                for pattern in range(1 << n_inputs):
                    if pattern == cur_pattern:
                        continue
                    valid, succ = self.k_step_outcome(s, pattern, k)
                    if valid:
                        assert succ is not None
                        out_edges[pattern] = succ
                        if succ not in cssg.states:
                            cssg.states.add(succ)
                            next_frontier.append(succ)
                cssg.edges[s] = out_edges
            frontier = next_frontier
        return cssg
