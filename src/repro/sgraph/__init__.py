"""State-graph machinery: TCSG exploration and the CSSG abstraction.

* :mod:`repro.sgraph.explore` — exhaustive unbounded-delay settling
  analysis from a single state (non-confluence, oscillation, test-cycle
  length; paper §2, §4.1).
* :mod:`repro.sgraph.cssg` — reachable-stable-state traversal and the
  k-Confluent Stable State Graph (paper §4.2).
* :mod:`repro.sgraph.symbolic` — partitioned BDD image computation of
  the TCSG/CSSG (paper §3.1's "symbolic traversal algorithms similar to
  [10, 7]") — a first-class construction method (``method="symbolic"``)
  and the production path for large state spaces.

Construction methods implement the :class:`CssgBuilder` protocol and
register in :data:`CSSG_METHODS`; :func:`build_cssg` dispatches on it.
"""

from repro.sgraph.explore import SettleReport, settle_report
from repro.sgraph.cssg import (
    CSSG_METHODS,
    Cssg,
    CssgBuilder,
    ExplicitCssgBuilder,
    SymbolicCssgBuilder,
    build_cssg,
)

__all__ = [
    "SettleReport",
    "settle_report",
    "CSSG_METHODS",
    "Cssg",
    "CssgBuilder",
    "ExplicitCssgBuilder",
    "SymbolicCssgBuilder",
    "build_cssg",
]
