"""State-graph machinery: TCSG exploration and the CSSG abstraction.

* :mod:`repro.sgraph.explore` — exhaustive unbounded-delay settling
  analysis from a single state (non-confluence, oscillation, test-cycle
  length; paper §2, §4.1).
* :mod:`repro.sgraph.cssg` — reachable-stable-state traversal and the
  k-Confluent Stable State Graph (paper §4.2).
* :mod:`repro.sgraph.symbolic` — BDD-based encodings of R_I / R_delta,
  symbolic reachability and a symbolic CSSG used for cross-validation
  (paper §3.1's "symbolic traversal algorithms similar to [10, 7]").
"""

from repro.sgraph.explore import SettleReport, settle_report
from repro.sgraph.cssg import Cssg, build_cssg

__all__ = ["SettleReport", "settle_report", "Cssg", "build_cssg"]
