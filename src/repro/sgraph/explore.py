"""Exhaustive settling analysis under the unbounded gate-delay model.

Given a (usually unstable) start state — a stable state whose inputs were
just rewritten by an R_I step — this module explores every interleaving of
single-gate transitions and classifies the outcome (paper §2):

* **confluent**: every maximal path ends in the same stable state;
* **non-confluent**: two or more distinct stable states are reachable
  (a critical race; potential metastability);
* **oscillating**: the transition graph contains a cycle, so with
  unbounded delays the circuit may postpone stabilization indefinitely;
* **too slow**: the longest transition path exceeds the test-cycle bound
  ``k`` (paper §4.1: a k-step test cycle only waits for k transitions).

A vector is *valid* for the CSSG exactly when the outcome is confluent,
acyclic and within ``k`` (see :mod:`repro.sgraph.cssg`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import StateGraphError


@dataclass(frozen=True)
class SettleReport:
    """Outcome of exploring all settling interleavings from one state."""

    start: int
    stable_states: FrozenSet[int]
    has_cycle: bool
    longest_path: Optional[int]  # None when the graph has a cycle
    n_states: int
    truncated: bool

    @property
    def confluent(self) -> bool:
        """Exactly one stable outcome (regardless of path lengths)."""
        return len(self.stable_states) == 1 and not self.has_cycle

    @property
    def oscillating(self) -> bool:
        return self.has_cycle

    @property
    def nonconfluent(self) -> bool:
        return len(self.stable_states) > 1

    def valid(self, k: int) -> bool:
        """True when the vector that produced ``start`` is CSSG_k-valid:
        a unique stable outcome reached by every path within k steps."""
        if self.truncated or self.has_cycle or len(self.stable_states) != 1:
            return False
        assert self.longest_path is not None
        return self.longest_path <= k

    @property
    def unique_stable(self) -> int:
        if len(self.stable_states) != 1:
            raise StateGraphError("settling is not confluent")
        return next(iter(self.stable_states))


def settle_report(circuit: Circuit, start: int, cap: int = 200_000) -> SettleReport:
    """Explore every gate-transition interleaving from ``start``.

    ``cap`` bounds the number of distinct states explored; blowing past it
    marks the report ``truncated`` (treated as invalid by the CSSG, which
    is conservative in the same direction as the paper's ternary check).

    Excited-gate enumeration — the hot inner loop — runs through the
    compiled whole-circuit function of :mod:`repro.sim.engine` rather
    than per-gate program interpretation.
    """
    from repro.sim.engine import compiled

    excited_signals = compiled(circuit).excited_signals
    succs: Dict[int, Tuple[int, ...]] = {}
    stable: List[int] = []
    stack = [start]
    truncated = False
    while stack:
        state = stack.pop()
        if state in succs:
            continue
        if len(succs) >= cap:
            truncated = True
            break
        excited = excited_signals(state)
        if not excited:
            succs[state] = ()
            stable.append(state)
            continue
        nxt = tuple(state ^ (1 << gi) for gi in excited)
        succs[state] = nxt
        for t in nxt:
            if t not in succs:
                stack.append(t)

    has_cycle = _has_cycle(succs, start) if not truncated else True
    longest = None
    if not truncated and not has_cycle:
        longest = _longest_path(succs, start)
    return SettleReport(
        start=start,
        stable_states=frozenset(stable),
        has_cycle=has_cycle,
        longest_path=longest,
        n_states=len(succs),
        truncated=truncated,
    )


def _has_cycle(succs: Dict[int, Tuple[int, ...]], start: int) -> bool:
    """Iterative three-color DFS over the explored settling graph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    stack: List[Tuple[int, int]] = [(start, 0)]
    color[start] = GRAY
    while stack:
        node, i = stack[-1]
        children = succs.get(node, ())
        if i < len(children):
            stack[-1] = (node, i + 1)
            child = children[i]
            c = color.get(child, WHITE)
            if c == GRAY:
                return True
            if c == WHITE:
                color[child] = GRAY
                stack.append((child, 0))
        else:
            color[node] = BLACK
            stack.pop()
    return False


def _longest_path(succs: Dict[int, Tuple[int, ...]], start: int) -> int:
    """Longest transition path from ``start`` in the (acyclic) settling
    graph.  This is the |sigma| of paper §4.1: the worst-case number of
    gate transitions before the circuit is guaranteed stable."""
    order: List[int] = []
    seen = set([start])
    stack: List[Tuple[int, int]] = [(start, 0)]
    while stack:
        node, i = stack[-1]
        children = succs.get(node, ())
        if i < len(children):
            stack[-1] = (node, i + 1)
            child = children[i]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
            stack.pop()
    # Reverse postorder is a topological order; relax in that order.
    dist = {start: 0}
    for node in reversed(order):
        d = dist.get(node)
        if d is None:
            continue
        for child in succs.get(node, ()):
            if dist.get(child, -1) < d + 1:
                dist[child] = d + 1
    return max(dist.values())
