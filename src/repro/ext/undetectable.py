"""A-priori classification of undetectable faults (paper §6).

The paper observes that its 3-phase search "wastes time with no positive
results" on undetectable faults and lists their early classification as
future work.  Two cheap sufficient conditions are implemented here; both
are sound (a classified fault is genuinely undetectable under the CSSG +
stable-state-observation semantics), neither is complete:

* **never excited** — the fault's model proves the faulty functions
  agree with the good ones everywhere the good machine can go, so no
  divergence can ever start.  For stuck-at kinds this is the classic
  check (the site holds the stuck value in every reachable stable state
  and the faulty machine is stable in each of them); bridging and
  transition models prove agreement over the *transient-inclusive*
  symbolic reachable set instead, since their excitation can be purely
  transient.  Both sets come from one symbolic TCSG reachability
  computation — a superset of the CSSG's nodes (which only contains
  states reachable through *valid* vectors), so the verdict holds even
  for excursions the CSSG pruned; each per-fault check is a handful of
  BDD conjunctions, no enumeration.  An explicit CSSG-state walk
  remains as the ``use_symbolic=False`` fallback for the stuck-at
  kinds (other models conservatively skip it).
* **stable-equivalent** — exhaustive product walk of (good CSSG state,
  faulty ternary state) shows the faulty machine always reaches output-
  identical *definite* stable states.  This is the same search the
  3-phase generator would do, run with a bounded budget up front so the
  per-fault ATPG can be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bdd.manager import FALSE
from repro.circuit.faults import Fault
from repro.errors import StateGraphError
from repro.sgraph.cssg import Cssg
from repro.sgraph.symbolic import SymbolicTcsg
from repro.sim import ternary

NEVER_EXCITED = "never-excited"
STABLE_EQUIVALENT = "stable-equivalent"
POSSIBLY_DETECTABLE = "possibly-detectable"


@dataclass
class Classification:
    fault: Fault
    verdict: str  # one of the three module constants
    product_states: int = 0


def _never_excited_symbolic(
    sym: SymbolicTcsg, reachable: int, stable_reachable: int, fault: Fault
) -> bool:
    """The never-excited check, dispatched to the fault's model.

    Each model proves its own sound sufficient condition over the
    symbolic TCSG sets: the stuck-at kinds over the reachable *stable*
    states (site holds the stuck value everywhere, and the faulted
    gate's function still agrees with its output there, so no
    stable-state divergence can ever start); bridging and transition
    faults over the *transient-inclusive* reachable set (their faulty
    functions agree with the good ones on every state the good machine
    can even pass through)."""
    from repro.faultmodels import model_for_kind

    return model_for_kind(fault.kind).never_excited_symbolic(
        sym, reachable, stable_reachable, fault
    )


def _never_excited(cssg: Cssg, fault: Fault) -> bool:
    """Explicit fallback, dispatched to the fault's model: the stuck-at
    kinds walk the CSSG's states (a subset of the TCSG stable set,
    hence weaker — kept for ``use_symbolic=False`` and as the
    differential oracle); models whose excitation is transient-
    sensitive (bridging, transition) conservatively return False here,
    leaving the verdict to the stable-equivalent product walk."""
    from repro.faultmodels import model_for_kind

    return model_for_kind(fault.kind).never_excited_explicit(cssg, fault)


def _stable_equivalent(
    cssg: Cssg, fault: Fault, budget: int
) -> Tuple[Optional[bool], int]:
    """Exhaustive product walk; returns (undetectable?, states explored).

    ``None`` means the budget ran out or an uncertain (Φ-bearing) faulty
    state was met — either way the fault cannot be *proven* undetectable
    cheaply, so it goes to the full 3-phase generator.
    """
    circuit = cssg.circuit
    faulty0 = ternary.settle_from_reset(circuit, cssg.reset, fault)
    if ternary.detects(circuit, cssg.reset, faulty0):
        return False, 0
    seen: Set[Tuple[int, ternary.TernaryState]] = {(cssg.reset, faulty0)}
    stack = [(cssg.reset, faulty0)]
    explored = 0
    while stack:
        good, faulty = stack.pop()
        for pattern in cssg.valid_patterns(good):
            explored += 1
            if explored > budget:
                return None, explored
            ngood = cssg.edges[good][pattern]
            nfaulty = ternary.apply_pattern(circuit, faulty, pattern, fault)
            if ternary.detects(circuit, ngood, nfaulty):
                return False, explored
            if not ternary.is_definite(nfaulty):
                # A Φ output could still match; proving undetectability
                # through uncertain states is out of scope for the cheap
                # classifier.
                for out in circuit.outputs:
                    low, high = nfaulty
                    if (low >> out) & 1 and (high >> out) & 1:
                        return None, explored
            key = (ngood, nfaulty)
            if key not in seen:
                seen.add(key)
                stack.append(key)
    return True, explored


def classify_undetectable(
    cssg: Cssg,
    faults: List[Fault],
    budget_per_fault: int = 20_000,
    use_symbolic: bool = True,
    symbolic: Optional[SymbolicTcsg] = None,
) -> Dict[Fault, Classification]:
    """Classify each fault before running expensive per-fault ATPG.

    The returned verdicts partition ``faults`` into provably undetectable
    (two reasons) and possibly detectable.  With ``use_symbolic`` (the
    default) the never-excited check runs against the symbolic TCSG
    reachable-stable set — one BDD reachability computation shared by
    every fault; otherwise it walks the explicit CSSG states.  A caller
    that already holds a :class:`SymbolicTcsg` for this circuit (e.g.
    because the CSSG itself was built symbolically) can pass it as
    ``symbolic`` to reuse its encoding instead of rebuilding one.
    """
    sym: Optional[SymbolicTcsg] = None
    reachable = FALSE
    stable_reachable = FALSE
    if use_symbolic and faults:
        try:
            sym = symbolic if symbolic is not None else SymbolicTcsg(cssg.circuit)
            # One reachability computation shared by every fault: the
            # transient-inclusive set (bridging/transition proofs) and
            # its stable restriction (the stuck-at proof).
            reachable = sym.mgr.add_root(
                sym.reachable(sym.state_bdd(cssg.reset))
            )
            stable_reachable = sym.mgr.add_root(
                sym.mgr.apply_and(reachable, sym.stable)
            )
        except StateGraphError:
            sym = None  # fall back to the explicit CSSG walk
    result: Dict[Fault, Classification] = {}
    try:
        for fault in faults:
            if sym is not None:
                never = _never_excited_symbolic(
                    sym, reachable, stable_reachable, fault
                )
                # Per-fault faulty-function garbage has no further use;
                # let the manager's auto-GC reclaim it at this safe
                # point (the reachable set and encoding are rooted).
                sym.mgr.checkpoint()
            else:
                never = _never_excited(cssg, fault)
            if never:
                result[fault] = Classification(fault, NEVER_EXCITED)
                continue
            verdict, explored = _stable_equivalent(cssg, fault, budget_per_fault)
            if verdict is True:
                result[fault] = Classification(fault, STABLE_EQUIVALENT, explored)
            else:
                result[fault] = Classification(
                    fault, POSSIBLY_DETECTABLE, explored
                )
    finally:
        if sym is not None:
            # Unpin the reachable sets — the manager may outlive this
            # call when the caller passed its own SymbolicTcsg.
            sym.mgr.remove_root(stable_reachable)
            sym.mgr.remove_root(reachable)
    return result
