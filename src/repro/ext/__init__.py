"""Extensions beyond the paper's core flow (its §6/§7 future work).

* :mod:`repro.ext.scan` — partial scan-point insertion ("testability can
  be assisted by partial scan-path [16]").
* :mod:`repro.ext.undetectable` — a-priori classification of untestable
  faults ("classifying undetectable faults to avoid wasting time").
* :mod:`repro.ext.paths` — structural path enumeration, the substrate a
  path-delay-fault extension would build on ("covering a wider spectrum
  of fault models (e.g. delay faults)").
"""

from repro.ext.scan import insert_scan_inputs, rank_scan_candidates
from repro.ext.undetectable import classify_undetectable
from repro.ext.paths import enumerate_paths, structural_paths

__all__ = [
    "insert_scan_inputs",
    "rank_scan_candidates",
    "classify_undetectable",
    "enumerate_paths",
    "structural_paths",
]
