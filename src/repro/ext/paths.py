"""Structural path enumeration — substrate for a delay-fault extension.

The paper's conclusions name delay faults as the next fault model.  The
path-delay model [25] needs the set of structural paths from inputs to
observable outputs; this module enumerates them on our netlists.

Feedback makes raw path enumeration infinite, so paths are *simple* in
gates: no gate output repeats.  ``enumerate_paths`` yields each path as a
tuple of signal indices (source first); ``structural_paths`` groups and
counts them per output, which is what a coverage metric needs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.circuit.netlist import Circuit


def _fanout(circuit: Circuit) -> Dict[int, List[int]]:
    """signal index -> gate output indices that read it."""
    fan: Dict[int, List[int]] = {i: [] for i in range(circuit.n_signals)}
    for gate in circuit.gates:
        for src in gate.support:
            if src != gate.index:  # self-feedback does not extend a path
                fan[src].append(gate.index)
    return fan


def enumerate_paths(
    circuit: Circuit, max_paths: int = 100_000
) -> Iterator[Tuple[int, ...]]:
    """Yield simple structural paths from primary inputs to outputs.

    A path is a tuple of signal indices starting at a primary input and
    ending at an observable output, following gate support edges, with no
    repeated gate.  Enumeration stops after ``max_paths`` (guard against
    pathological netlists).
    """
    fan = _fanout(circuit)
    outputs = set(circuit.outputs)
    emitted = 0
    for start in range(circuit.n_inputs):
        stack: List[Tuple[Tuple[int, ...], int]] = [((start,), start)]
        while stack:
            path, last = stack.pop()
            if last in outputs and len(path) > 1:
                yield path
                emitted += 1
                if emitted >= max_paths:
                    return
            for nxt in fan[last]:
                if nxt not in path:
                    stack.append((path + (nxt,), nxt))


def structural_paths(circuit: Circuit, max_paths: int = 100_000) -> Dict[str, int]:
    """Count simple input-to-output paths per observable output.

    Each counted path corresponds to two path-delay faults (rising and
    falling transition), so ``2 * sum(counts.values())`` is the size of
    the path-delay fault universe on this netlist.
    """
    counts: Dict[str, int] = {name: 0 for name in circuit.output_names}
    for path in enumerate_paths(circuit, max_paths):
        counts[circuit.signal_name(path[-1])] += 1
    return counts
