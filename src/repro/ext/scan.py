"""Partial scan insertion (paper §6/§7).

The paper suggests assisting low-coverage circuits with partial scan.
In the synchronous abstraction the cheapest useful scan primitive is a
*scan input*: pick an internal signal, cut its gate away from the net and
drive the net from a new primary input instead, while exposing the old
gate function on a new observable output.  Controllability of the cut
net becomes total (the tester drives it), and the replaced gate's
behaviour stays observable — the classic scan decomposition applied to
one feedback wire.

``insert_scan_inputs`` performs the surgery and returns a new circuit;
``rank_scan_candidates`` orders internal signals by how many undetected
fault sites they touch (a simple but effective selection heuristic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro._bits import bit
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import NetlistError

SCAN_IN_SUFFIX = "$scan"
SCAN_OUT_SUFFIX = "$obs"


def insert_scan_inputs(circuit: Circuit, signals: Sequence[str]) -> Circuit:
    """Return a copy of ``circuit`` with each named internal signal cut.

    For a cut signal ``z``: the net ``z`` becomes the new primary input
    ``z`` (driven by the tester), and the old gate function is re-emitted
    as an observable gate ``z$obs``.  Primary inputs and unknown names
    are rejected.
    """
    cut = list(signals)
    by_name = {g.name: g for g in circuit.gates}
    for name in cut:
        if name not in by_name:
            raise NetlistError(
                f"cannot scan {name!r}: not a gate output in {circuit.name}"
            )
    scanned = Circuit(f"{circuit.name}-scan")
    for name in circuit.input_names:
        scanned.add_input(name)
    for name in cut:
        scanned.add_input(name)
    for gate in circuit.gates:
        if gate.name in cut:
            scanned.add_gate(gate.name + SCAN_OUT_SUFFIX, expr=gate.expr)
        else:
            scanned.add_gate(gate.name, expr=gate.expr)
    for name in circuit.output_names:
        scanned.mark_output(name)
    for name in cut:
        scanned.mark_output(name + SCAN_OUT_SUFFIX)
    if circuit.reset_state is not None:
        reset: Dict[str, int] = {}
        for s in circuit.signals:
            reset[s.name] = bit(circuit.reset_state, s.index)
        for name in cut:
            reset[name + SCAN_OUT_SUFFIX] = reset[name]
        scanned.set_reset(reset)
    scanned.set_k(circuit.k)
    return scanned.finalize()


def rank_scan_candidates(
    circuit: Circuit, undetected: Iterable[Fault]
) -> List[Tuple[str, int]]:
    """Internal signals ranked by undetected-fault adjacency.

    A fault is adjacent to signal ``z`` when its site or its gate is
    ``z``; cutting ``z`` makes those faults directly controllable or
    observable.  Gates whose support is entirely primary inputs (e.g.
    input buffers) are excluded — the tester already controls them
    through the inputs, so cutting buys nothing.  Returns (signal name,
    score) pairs, best first.
    """
    score: Dict[str, int] = {}
    input_count = circuit.n_inputs
    trivially_controllable = {
        g.name
        for g in circuit.gates
        if all(s < input_count for s in g.support)
    }
    for fault in undetected:
        for idx in {fault.site, fault.gate}:
            if idx >= input_count:
                name = circuit.signal_name(idx)
                if name in circuit.output_names or name in trivially_controllable:
                    continue
                score[name] = score.get(name, 0) + 1
    ranked = sorted(score.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked
