"""Benchmark registry: names, files, and loading helpers.

``load_benchmark(name, style)`` parses the bundled STG and synthesizes a
circuit with the requested back end:

* ``style="complex"`` — atomic complex gates (speed-independent; the
  Table 1 circuit class);
* ``style="two-level"`` — structural SOP with complete-sum covers (the
  redundant, SIS-flavoured Table 2 circuit class).

Synthesized circuits are cached per (name, style) because several
benchmarks are loaded repeatedly by tests and benches.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import List, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.parser import load_netlist
from repro.errors import ReproError
from repro.stg.parser import load_stg
from repro.stg.petrinet import Stg
from repro.stg.synthesis import synthesize

_DATA_DIR = Path(__file__).resolve().parent

#: Table 1 of the paper (speed-independent circuits).
TABLE1_NAMES: Tuple[str, ...] = (
    "alloc-outbound",
    "atod",
    "chu150",
    "converta",
    "dff",
    "ebergen",
    "hazard",
    "master-read",
    "mmu",
    "mp-forward-pkt",
    "nak-pa",
    "nowick",
    "ram-read-sbuf",
    "rcv-setup",
    "rpdft",
    "sbuf-ram-write",
    "sbuf-send-ctl",
    "sbuf-send-pkt2",
    "seq4",
    "trimos-send",
    "vbe5b",
    "vbe6a",
    "vbe10b",
)

#: Table 2 of the paper (hazard-free circuits with bounded delays).
TABLE2_NAMES: Tuple[str, ...] = (
    "chu150",
    "converta",
    "ebergen",
    "hazard",
    "nowick",
    "rpdft",
    "trimos-send",
    "vbe6a",
    "vbe10b",
)

#: Figure-1 example circuits (netlists, not STGs).
FIGURE_NETS: Tuple[str, ...] = ("fig1a", "fig1b")


def benchmark_names() -> List[str]:
    """All bundled STG benchmark names."""
    return list(TABLE1_NAMES)


def benchmark_path(name: str) -> Path:
    """Path of the bundled ``.g`` file for ``name``."""
    path = _DATA_DIR / "stg" / f"{name}.g"
    if not path.exists():
        present = sorted(p.stem for p in (_DATA_DIR / "stg").glob("*.g"))
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(present) or '(none)'}"
        )
    return path


@lru_cache(maxsize=None)
def load_benchmark_stg(name: str) -> Stg:
    """Parse the bundled STG for ``name``."""
    return load_stg(benchmark_path(name))


@lru_cache(maxsize=None)
def load_benchmark(name: str, style: str = "complex") -> Circuit:
    """Load and synthesize a bundled benchmark circuit."""
    return synthesize(load_benchmark_stg(name), style=style)


@lru_cache(maxsize=None)
def load_figure_circuit(name: str) -> Circuit:
    """Load a figure-1 reconstruction netlist (``fig1a`` or ``fig1b``)."""
    path = _DATA_DIR / "net" / f"{name}.net"
    if not path.exists():
        raise ReproError(
            f"unknown figure circuit {name!r}; available: {', '.join(FIGURE_NETS)}"
        )
    return load_netlist(path)
