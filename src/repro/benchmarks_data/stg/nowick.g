# Nowick-style selector: the environment chooses between a fast path
# (x alone) and a full path (x then y).
.model nowick
.inputs a b
.outputs x y
.graph
p0 a+ b+
a+ x+/1
x+/1 a-
a- x-/1
x-/1 p0
b+ x+/2
x+/2 y+
y+ b-
b- x-/2
x-/2 y-
y- p0
.marking { p0 }
.end
