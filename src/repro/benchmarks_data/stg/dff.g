# D flip-flop protocol: data rises, a clock pulse latches q high, data
# falls, a second clock pulse resets q.
.model dff
.inputs d c
.outputs q
.graph
d+ c+/1
c+/1 q+
q+ c-/1
c-/1 d-
d- c+/2
c+/2 q-
q- c-/2
c-/2 d+
.marking { <c-/2,d+> }
.end
