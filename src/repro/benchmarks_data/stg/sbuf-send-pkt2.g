# Send buffer, packet side: request, send, completion gate, packet strobe.
.model sbuf-send-pkt2
.inputs req done
.outputs send pkt
.graph
req+ send+
send+ done+
done+ pkt+
pkt+ req-
req- send-
send- done-
done- pkt-
pkt- req+
.marking { <pkt-,req+> }
.end
