# Receiver setup controller: a receive strobe raises the setup line,
# then acknowledges; four-phase return to zero.
.model rcv-setup
.inputs rec
.outputs setup ack
.graph
rec+ setup+
setup+ ack+
ack+ rec-
rec- setup-
setup- ack-
ack- rec+
.marking { <ack-,rec+> }
.end
