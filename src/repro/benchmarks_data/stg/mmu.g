# Memory management unit: the environment selects a read or a write
# request; both converge on the same datapath strobes.
.model mmu
.inputs r1 r2
.outputs x y
.graph
p0 r1+ r2+
r1+ x+/1
x+/1 y+/1
y+/1 r1-
r1- x-/1
x-/1 y-/1
y-/1 p0
r2+ y+/2
y+/2 x+/2
x+/2 r2-
r2- x-/2
x-/2 y-/2
y-/2 p0
.marking { p0 }
.end
