# A-to-D handshake: convert strobe, sample, done strobe, enable.
.model atod
.inputs c d
.outputs s e
.graph
c+ s+
s+ d+
d+ e+
e+ c-
c- s-
s- d-
d- e-
e- c+
.marking { <e-,c+> }
.end
