# Reduced pulse-distributor: data strobe, staged toggle and output.
.model rpdft
.inputs d
.outputs t q
.graph
d+ t+
t+ q+
q+ d-
d- t-
t- q-
q- d+
.marking { <q-,d+> }
.end
