# Master read cycle: three bus phases sequenced through one controller.
.model master-read
.inputs p q r
.outputs x y z w
.graph
p+ x+
x+ p-
p- x-
x- q+
q+ y+
y+ z+
z+ q-
q- y-
y- z-
z- r+
r+ w+
w+ r-
r- w-
w- p+
.marking { <w-,p+> }
.end
