# RAM read into send buffer: request, RAM strobe, data latch, grant, ack.
.model ram-read-sbuf
.inputs req grant
.outputs ram data ack
.graph
req+ ram+
ram+ data+
data+ grant+
grant+ ack+
ack+ req-
req- ram-
ram- data-
data- grant-
grant- ack-
ack- req+
.marking { <ack-,req+> }
.end
