# Ten-signal burst element: three requests interleaved with seven
# staged outputs in one long four-phase cycle.
.model vbe10b
.inputs p q r
.outputs o1 o2 o3 o4 o5 o6 o7
.graph
p+ o1+
o1+ o2+
o2+ q+
q+ o3+
o3+ o4+
o4+ r+
r+ o5+
o5+ o6+
o6+ o7+
o7+ p-
p- o1-
o1- o2-
o2- q-
q- o3-
o3- o4-
o4- r-
r- o5-
o5- o6-
o6- o7-
o7- p+
.marking { <o7-,p+> }
.end
