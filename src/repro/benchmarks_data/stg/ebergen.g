# Ebergen-style join: one request forks into two internal rails that a
# Muller C-element merges back; the C-element's self-feedback pins are
# the textbook untestable input stuck-at sites.
.model ebergen
.inputs r
.outputs p q c
.graph
r+ p+ q+
p+ c+
q+ c+
c+ r-
r- p- q-
p- c-
q- c-
c- r+
.marking { <c-,r+> }
.end
