# Send buffer, control side: the acknowledge input gates the transmit
# latch, giving the t gate a genuine feedback term.
.model sbuf-send-ctl
.inputs req ack
.outputs s t
.graph
req+ s+
s+ ack+
ack+ t+
t+ req-
req- s-
s- ack-
ack- t-
t- req+
.marking { <t-,req+> }
.end
