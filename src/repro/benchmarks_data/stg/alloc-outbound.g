# Outbound allocator: request, allocate, acknowledge, completion.
.model alloc-outbound
.inputs req ack
.outputs alloc done
.graph
req+ alloc+
alloc+ ack+
ack+ done+
done+ req-
req- alloc-
alloc- ack-
ack- done-
done- req+
.marking { <done-,req+> }
.end
