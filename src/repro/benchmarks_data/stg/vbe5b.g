# Five-signal burst element: one request, four chained stage outputs.
.model vbe5b
.inputs b
.outputs x0 x1 x2 x3
.graph
b+ x0+
x0+ x1+
x1+ x2+
x2+ x3+
x3+ b-
b- x0-
x0- x1-
x1- x2-
x2- x3-
x3- b+
.marking { <x3-,b+> }
.end
