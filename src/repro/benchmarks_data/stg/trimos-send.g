# TriMOS send: three ports served in rotation, each with its own
# acknowledge and data strobe.
.model trimos-send
.inputs r1 r2 r3
.outputs a1 d1 a2 d2 a3 d3
.graph
r1+ a1+
a1+ d1+
d1+ r2+
r2+ a2+
a2+ d2+
d2+ r3+
r3+ a3+
a3+ d3+
d3+ r1-
r1- a1-
a1- d1-
d1- r2-
r2- a2-
a2- d2-
d2- r3-
r3- a3-
a3- d3-
d3- r1+
.marking { <d3-,r1+> }
.end
