# Six-signal burst element: one request forks into three rails merged
# by an internal wide Muller C-element whose completion output is gated
# by the request.  Its two-level realization carries the classic
# untestable redundancy: the C-element's feedback products can never be
# distinguished while the rails all track the same request, and the
# gated observer hides their sticky corruptions.
.model vbe6a
.inputs r
.outputs w x u z
.internal y
.graph
r+ w+ x+ u+
w+ y+
x+ y+
u+ y+
y+ z+
z+ r-
r- z- w- x- u-
w- y-
x- y-
u- y-
y- r+
z- r+
.marking { <y-,r+> <z-,r+> }
.end
