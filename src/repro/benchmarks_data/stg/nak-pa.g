# Negative-acknowledge page controller.
.model nak-pa
.inputs req ack
.outputs nak pa
.graph
req+ nak+
nak+ ack+
ack+ pa+
pa+ req-
req- nak-
nak- ack-
ack- pa-
pa- req+
.marking { <pa-,req+> }
.end
