# Send buffer into RAM write: select, write-enable, write, ack.
.model sbuf-ram-write
.inputs req we
.outputs sel wr ack
.graph
req+ sel+
sel+ we+
we+ wr+
wr+ ack+
ack+ req-
req- sel-
sel- we-
we- wr-
wr- ack-
ack- req+
.marking { <ack-,req+> }
.end
