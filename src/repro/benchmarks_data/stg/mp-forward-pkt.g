# Message-passing packet forwarder: request, forward, acknowledge gate,
# packet strobe.
.model mp-forward-pkt
.inputs req ack
.outputs fwd pkt
.graph
req+ fwd+
fwd+ ack+
ack+ pkt+
pkt+ req-
req- fwd-
fwd- ack-
ack- pkt-
pkt- req+
.marking { <pkt-,req+> }
.end
