# Protocol converter: a request forks into three rails joined by an
# internal wide C-element whose acknowledge gating masks part of its
# behaviour — the redundancy partial scan is meant to rescue.
.model converta
.inputs r
.outputs p q s ack
.internal c
.graph
r+ p+ q+ s+
p+ c+
q+ c+
s+ c+
c+ ack+
ack+ r-
r- ack- p- q- s-
p- c-
q- c-
s- c-
c- r+
ack- r+
.marking { <c-,r+> <ack-,r+> }
.end
