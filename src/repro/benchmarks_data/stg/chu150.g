# The classic C-element specification: both requests must rise before
# the output rises, both must fall before it falls.
.model chu150
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
