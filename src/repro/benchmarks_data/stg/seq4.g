# Four-stage sequencer: one go request ripples four staged outputs up,
# the withdrawal ripples them down.
.model seq4
.inputs go
.outputs s1 s2 s3 s4
.graph
go+ s1+
s1+ s2+
s2+ s3+
s3+ s4+
s4+ go-
go- s1-
s1- s2-
s2- s3-
s3- s4-
s4- go+
.marking { <s4-,go+> }
.end
