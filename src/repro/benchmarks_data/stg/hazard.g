# Four-phase handshake fragment distilled from the paper's hazard
# discussion: one request, two staged responses.
.model hazard
.inputs a
.outputs x y
.graph
a+ x+
x+ y+
y+ a-
a- x-
x- y-
y- a+
.marking { <y-,a+> }
.end
