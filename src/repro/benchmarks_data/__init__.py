"""Bundled benchmark circuits.

Every Table 1 / Table 2 name from the paper is backed by a hand-authored
STG in ``stg/*.g`` (the original Petrify/SIS suite is not redistributable
offline; see DESIGN.md §2 and §6 for the substitution rationale).  The
figure-1 example circuits ship as ``.net`` netlists in ``net/``.

Use :func:`load_benchmark` / :func:`load_benchmark_stg` /
:func:`benchmark_names` — they are re-exported at the package top level.
"""

from repro.benchmarks_data.registry import (
    TABLE1_NAMES,
    TABLE2_NAMES,
    FIGURE_NETS,
    benchmark_names,
    benchmark_path,
    load_benchmark,
    load_benchmark_stg,
    load_figure_circuit,
)

__all__ = [
    "TABLE1_NAMES",
    "TABLE2_NAMES",
    "FIGURE_NETS",
    "benchmark_names",
    "benchmark_path",
    "load_benchmark",
    "load_benchmark_stg",
    "load_figure_circuit",
]
