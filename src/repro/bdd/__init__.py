"""From-scratch ROBDD engine.

The paper performs reachability and ATPG "by means of symbolic
techniques ... similar to those used for synchronous finite state
machines [10]" — i.e. BDD-based image computation.  This package
provides the production kernel: a hash-consed reduced ordered BDD
manager with complement edges, a unified ITE apply over one int-keyed
operation cache, quantification, the fused and-exists relational
product, arbitrary variable substitution, mark-and-sweep garbage
collection and in-place sifting (:mod:`repro.bdd.manager`).  The seed
engine is preserved as :class:`LegacyBddManager`
(:mod:`repro.bdd.legacy`) — the differential oracle and the benchmark
baseline.  :mod:`repro.bdd.reorder` hosts the offline variable-order
exploration utilities on top of the in-place machinery.
"""

from repro.bdd.legacy import LegacyBddManager
from repro.bdd.manager import BddManager, BddStats

__all__ = ["BddManager", "BddStats", "LegacyBddManager"]
