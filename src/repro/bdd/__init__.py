"""From-scratch ROBDD engine.

The paper performs reachability and ATPG "by means of symbolic
techniques ... similar to those used for synchronous finite state
machines [10]" — i.e. BDD-based image computation.  This package provides
the required kernel: a hash-consed reduced ordered BDD manager with ite,
quantification, relational product and order-preserving renaming.
"""

from repro.bdd.manager import BddManager

__all__ = ["BddManager"]
