"""The production ROBDD kernel.

This is the engine behind the symbolic construction of the TCSG/CSSG
(paper §3.1/§4.2) — rewritten for throughput, since symbolic traversal
is the fast path for every circuit too large to enumerate explicitly.

Design notes:

* **Complement edges.**  A function reference is ``(node_id << 1) | c``
  where ``c`` complements the whole function; node 0 is the single
  terminal, so ``FALSE == 0`` and ``TRUE == 1 == ~FALSE``.  Negation is
  one XOR instead of a full traversal, and ``f`` / ``~f`` share every
  node.  Canonical form: the *then* edge of a stored node is never
  complemented (the complement is pushed onto the reference and the
  else edge), so equality of functions is still equality of references.
* **Unified ITE.**  Every binary connective is an ``ite(f, g, h)`` call
  after standard-triple normalization (Brace/Rudell/Bryant), funnelled
  through one operation cache keyed by packed integers — one dict, int
  keys, no tuple hashing on the hot path.  Quantification, the fused
  and-exists relational product, substitution and cofactor-flips share
  the same cache with their own opcode tags.
* **Variable order ≠ variable identity.**  Variables keep their creation
  index forever; a ``var ↔ level`` permutation maps them to levels.  All
  recursion compares *levels*, so the order can change under live
  references.
* **Arena tables.**  The node store is three parallel int arrays
  (``_var`` / ``_lo`` / ``_hi``) indexed by node id.  The unique table
  and the operation cache are keyed by one packed integer each (no
  tuple allocation or tuple hashing on any hot path), backed by the
  runtime's open-addressed hash table.  The free list is an index
  chain threaded through ``_lo`` (``_free_head`` → ``_lo[node]`` → …),
  so reclaiming and reusing a slot is two array writes — no side list,
  no set membership tests.
* **Mark-and-sweep GC.**  :meth:`collect` marks from registered roots
  (:meth:`add_root`) plus any refs passed in (one flat ``bytearray``
  of marks, no hash sets), sweeps dead nodes onto the free chain, and
  invalidates the operation cache (freed ids may be re-allocated to
  different functions).  Node ids of surviving nodes do not move, so
  live references stay valid across collections.
* **In-place sifting.**  :meth:`sift` reorders by adjacent level swaps
  that rewrite nodes *in place* — a reference held by a caller keeps
  denoting the same function before and after a reorder.  The classic
  canonicity argument carries over to complement edges: the new then
  edge of a swapped node is a cofactor of a regular then edge, hence
  regular.  The sifting scaffolding is flat int arrays too: per-level
  node populations are intrusive doubly-linked chains (``_ln_next`` /
  ``_ln_prev`` index arrays plus one head per variable) and the
  reference counts a plain int array, so a level swap runs without
  set churn; dead cofactors are reclaimed with an iterative
  explicit-stack walk.  Repeated auto-reorders back off geometrically
  (see :meth:`checkpoint`): each completed sift doubles the growth
  factor the live-node count must reach before the next one, so a
  long fixpoint computation is not re-sifted at every plateau.
* **Housekeeping is explicit.**  GC and reordering run only from
  :meth:`collect` / :meth:`sift` / :meth:`checkpoint`, never from inside
  an operation, so intermediate results of a running computation cannot
  be reclaimed.  Long-running clients (the symbolic CSSG builder)
  register their persistent functions as roots and call ``checkpoint()``
  at iteration boundaries; the manager then collects and/or sifts when
  the node count crosses the configured thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import BddError

FALSE = 0
TRUE = 1

#: Sentinel level for the terminal node: below every real variable.
_TERMINAL_LEVEL = 1 << 60

# Opcode tags of the unified operation cache.
_OP_ITE = 0
_OP_EXISTS = 1
_OP_AND_EXISTS = 2
_OP_RENAME = 3
_OP_RESTRICT = 4
_OP_FLIP = 5

#: Field width used to pack (ref, ref, ref/tag, op) into one int key.
#: 2**34 node references is far beyond anything a Python process holds.
_SHIFT = 34

#: Field width used to pack (var, lo, hi) into one unique-table key —
#: one bit wider than _SHIFT so a packed *reference* (node << 1 | c)
#: always fits.
_USHIFT = 35


@dataclass
class BddStats:
    """Counters the manager keeps about itself.

    ``peak_nodes`` is the high-water mark of allocated-and-not-freed
    nodes (terminal included); ``n_gc_passes`` / ``n_reorders`` count
    completed :meth:`~BddManager.collect` / :meth:`~BddManager.sift`
    runs; ``cache_hits`` / ``cache_lookups`` profile the shared
    operation cache.
    """

    peak_nodes: int = 0
    n_allocated: int = 0
    n_freed: int = 0
    n_gc_passes: int = 0
    n_reorders: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0

    def to_json_dict(self) -> Dict:
        return {
            "peak_nodes": self.peak_nodes,
            "n_allocated": self.n_allocated,
            "n_freed": self.n_freed,
            "n_gc_passes": self.n_gc_passes,
            "n_reorders": self.n_reorders,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
        }


class BddManager:
    """Hash-consed ROBDD store with complement edges, GC and reordering.

    ``auto_gc_nodes`` / ``auto_reorder_nodes`` arm :meth:`checkpoint`:
    when the live node count crosses a threshold at a checkpoint, the
    manager garbage-collects (and, for the reorder threshold, sifts)
    against the registered roots.  Both default to off, in which case
    the manager never reclaims or reorders behind a caller's back.
    """

    def __init__(
        self,
        n_vars: int = 0,
        auto_gc_nodes: Optional[int] = None,
        auto_reorder_nodes: Optional[int] = None,
    ):
        # Node 0 is the shared terminal (constant FALSE as a regular
        # reference; TRUE is its complement).
        self._var: List[int] = [-1]
        self._lo: List[int] = [FALSE]
        self._hi: List[int] = [FALSE]
        self._unique: Dict[int, int] = {}
        # Free slots form an index chain threaded through _lo:
        # _free_head -> _lo[_free_head] -> ... -> -1.  A slot is free
        # iff its _var entry is -1 (node 0, the terminal, aside).
        self._free_head: int = -1
        self._cache: Dict[int, int] = {}
        self._var2level: List[int] = []
        self._level2var: List[int] = []
        self._roots: Dict[int, int] = {}
        self._quant_tags: Dict[frozenset, int] = {}
        self._subst_tags: Dict[Tuple, int] = {}
        self.stats = BddStats(peak_nodes=1, n_allocated=1)
        # Watermark of counters already pushed to the metrics registry:
        # _publish_metrics emits deltas against this, at GC/sift
        # boundaries only, so the hot ITE path carries no metric code.
        self._published = BddStats()
        self.auto_gc_nodes = auto_gc_nodes
        self.auto_reorder_nodes = auto_reorder_nodes
        self._next_gc = auto_gc_nodes if auto_gc_nodes is not None else 0
        self._next_reorder = (
            auto_reorder_nodes if auto_reorder_nodes is not None else 0
        )
        # Allocated-and-not-freed node count (terminal included),
        # maintained incrementally — the GC/reorder trigger metric.
        self._n_live = 1
        # Auto-reorder backoff: each completed auto-sift doubles the
        # growth factor required before the next one (capped).
        self._reorder_growth = 2
        self._n_live_before_sift = 1
        # Sifting scaffolding, live only inside sift(): per-node ref
        # counts plus intrusive doubly-linked per-variable node chains.
        self._ref: List[int] = []
        self._ln_next: List[int] = []
        self._ln_prev: List[int] = []
        self._vhead: List[int] = []
        self.n_vars = 0
        for _ in range(n_vars):
            self.new_var()

    # -- node plumbing -----------------------------------------------------

    def new_var(self) -> int:
        """Declare the next variable (initial level = declaration order);
        returns the BDD for that variable."""
        index = self.n_vars
        self.n_vars += 1
        self._var2level.append(index)
        self._level2var.append(index)
        return self.var(index)

    def _level(self, ref: int) -> int:
        """Level of a reference's top variable (terminals sink lowest)."""
        if ref <= TRUE:
            return _TERMINAL_LEVEL
        return self._var2level[self._var[ref >> 1]]

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        neg = hi & 1
        if neg:  # canonical form: then edge regular
            lo ^= 1
            hi ^= 1
        key = (var << _USHIFT | lo) << _USHIFT | hi
        node = self._unique.get(key)
        if node is None:
            node = self._free_head
            if node != -1:
                self._free_head = self._lo[node]
                self._var[node] = var
                self._lo[node] = lo
                self._hi[node] = hi
            else:
                node = len(self._var)
                self._var.append(var)
                self._lo.append(lo)
                self._hi.append(hi)
            self._unique[key] = node
            stats = self.stats
            stats.n_allocated += 1
            self._n_live += 1
            if self._n_live > stats.peak_nodes:
                stats.peak_nodes = self._n_live
        return (node << 1) | neg

    def var(self, i: int) -> int:
        """The BDD of variable ``i`` (creation index, order-independent)."""
        if not 0 <= i < self.n_vars:
            raise BddError(f"variable {i} not declared (n_vars={self.n_vars})")
        return self._mk(i, FALSE, TRUE)

    def nvar(self, i: int) -> int:
        """The BDD of ``~variable i``."""
        return self.var(i) ^ 1

    def cube(self, assignment: Dict[int, int]) -> int:
        """Conjunction of literals ``{variable: 0/1}``, built directly
        (one node per literal, no ITE traffic) — the encoding of a
        single concrete state."""
        for v in assignment:  # validate before the sort key dereferences
            if not 0 <= v < self.n_vars:
                raise BddError(f"variable {v} not declared (n_vars={self.n_vars})")
        f = TRUE
        for v in sorted(
            assignment, key=lambda v: self._var2level[v], reverse=True
        ):
            if assignment[v]:
                f = self._mk(v, FALSE, f)
            else:
                f = self._mk(v, f, FALSE)
        return f

    @property
    def n_nodes(self) -> int:
        """Allocated, not-yet-reclaimed nodes (terminal included).  After
        a :meth:`collect` this is exactly the live node count."""
        return self._n_live

    @property
    def _free(self) -> List[int]:
        """Free slots, materialized as a list for introspection and
        tests.  The real structure is the index chain threaded through
        ``_lo`` starting at ``_free_head`` — allocation pops the head in
        O(1) without this list ever existing."""
        out = []
        node = self._free_head
        while node != -1:
            out.append(node)
            node = self._lo[node]
        return out

    def set_order(self, order: Sequence[int]) -> None:
        """Install an initial variable order (``order[level] = var``).

        Only valid while the store holds nothing beyond single-variable
        nodes (whose shape is order-independent) — permuting a *fresh*
        manager is pure bookkeeping, whereas reordering live multi-level
        structure is :meth:`sift`'s job.
        """
        for node in range(1, len(self._var)):
            if self._var[node] >= 0 and (
                self._lo[node] > TRUE or self._hi[node] > TRUE
            ):
                raise BddError(
                    "set_order on a manager with multi-level nodes "
                    "(use sift() to reorder live nodes)"
                )
        if sorted(order) != list(range(self.n_vars)):
            raise BddError("order must be a permutation of all variables")
        self._level2var = list(order)
        for level, v in enumerate(order):
            self._var2level[v] = level

    def level_of(self, i: int) -> int:
        """Current level of variable ``i`` (0 = topmost)."""
        if not 0 <= i < self.n_vars:
            raise BddError(f"variable {i} not declared (n_vars={self.n_vars})")
        return self._var2level[i]

    def order(self) -> List[int]:
        """The current variable order: ``order()[level] = var``."""
        return list(self._level2var)

    def top_var(self, f: int) -> int:
        """Variable index at the top of ``f`` (terminals: a sentinel
        below every real level, for loop-termination convenience)."""
        if f <= TRUE:
            return _TERMINAL_LEVEL
        return self._var[f >> 1]

    def cofactors(self, f: int, var: int) -> Tuple[int, int]:
        """(f|var=0, f|var=1) for a variable at or above f's top level."""
        if f <= TRUE:
            return f, f
        node = f >> 1
        if self._var[node] == var:
            neg = f & 1
            return self._lo[node] ^ neg, self._hi[node] ^ neg
        return f, f

    # -- the unified ITE ---------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f·g + ~f·h, the universal connective.

        One recursive function: terminal short-circuits, standard-triple
        normalization (regular selector, regular then branch — the
        complement-edge canonical form doubles as the cache canonical
        form), one packed-int cache lookup, Shannon expansion."""
        # Terminal and absorbed-operand short-circuits.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if f == g:
            g = TRUE
        elif f == (g ^ 1):
            g = FALSE
        if f == h:
            h = FALSE
        elif f == (h ^ 1):
            h = TRUE
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return f ^ 1
        if g == h:
            return g
        # Symmetric connectives: the topmost operand becomes the
        # selector, maximizing cache sharing between equivalent calls.
        var_arr = self._var
        v2l = self._var2level
        fl = v2l[var_arr[f >> 1]]  # f is non-terminal here
        if g == TRUE:  # OR(f, h)
            if h > TRUE and v2l[var_arr[h >> 1]] < fl:
                f, h = h, f
        elif h == FALSE:  # AND(f, g)
            if g > TRUE and v2l[var_arr[g >> 1]] < fl:
                f, g = g, f
        elif h == TRUE:  # ~f + g == ite(~g, ~f, TRUE)
            if g > TRUE and v2l[var_arr[g >> 1]] < fl:
                f, g = g ^ 1, f ^ 1
        elif g == FALSE:  # ~f·h == ite(~h, FALSE, ~f)
            if h > TRUE and v2l[var_arr[h >> 1]] < fl:
                f, h = h ^ 1, f ^ 1
        elif h == (g ^ 1):  # XNOR/XOR are selector-symmetric
            if g > TRUE and v2l[var_arr[g >> 1]] < fl:
                f, g = g, f
                h = g ^ 1
        # Regular selector; complement pushed to the else branch / out.
        if f & 1:
            f ^= 1
            g, h = h, g
        neg = g & 1
        if neg:
            g ^= 1
            h ^= 1
        key = (((f << _SHIFT | g) << _SHIFT | h) << 3) | _OP_ITE
        stats = self.stats
        stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            stats.cache_hits += 1
            return cached ^ neg
        lo_arr, hi_arr = self._lo, self._hi
        fl = v2l[var_arr[f >> 1]]  # recompute: the swaps above moved f
        gl = v2l[var_arr[g >> 1]] if g > TRUE else _TERMINAL_LEVEL
        hl = v2l[var_arr[h >> 1]] if h > TRUE else _TERMINAL_LEVEL
        level = fl
        if gl < level:
            level = gl
        if hl < level:
            level = hl
        var = self._level2var[level]
        if fl == level:
            node = f >> 1
            f0, f1 = lo_arr[node], hi_arr[node]  # f is regular here
        else:
            f0 = f1 = f
        if gl == level:
            node = g >> 1
            g0, g1 = lo_arr[node], hi_arr[node]  # g is regular here
        else:
            g0 = g1 = g
        if hl == level:
            node = h >> 1
            hneg = h & 1
            h0, h1 = lo_arr[node] ^ hneg, hi_arr[node] ^ hneg
        else:
            h0 = h1 = h
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        # result = _mk(var, lo, hi), unique lookup inlined — only an
        # allocation miss pays the call.
        if lo == hi:
            result = lo
        else:
            c = hi & 1
            unode = self._unique.get(
                (var << _USHIFT | (lo ^ c)) << _USHIFT | (hi ^ c)
            )
            result = (
                self._mk(var, lo, hi)
                if unode is None
                else (unode << 1) | c
            )
        self._cache[key] = result
        return result ^ neg

    def apply_not(self, f: int) -> int:
        """Complement — one XOR with complement edges."""
        return f ^ 1

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, g ^ 1, g)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, g ^ 1)

    def and_all(self, fs: Iterable[int]) -> int:
        result = TRUE
        for f in fs:
            result = self.ite(result, f, FALSE)
            if result == FALSE:
                break
        return result

    def or_all(self, fs: Iterable[int]) -> int:
        result = FALSE
        for f in fs:
            result = self.ite(result, TRUE, f)
            if result == TRUE:
                break
        return result

    # -- quantification ------------------------------------------------------

    def _quant_tag(self, variables: Sequence[int]) -> Tuple[frozenset, int]:
        vset = frozenset(variables)
        for v in vset:
            if not 0 <= v < self.n_vars:
                raise BddError(f"variable {v} not declared (n_vars={self.n_vars})")
        tag = self._quant_tags.get(vset)
        if tag is None:
            tag = len(self._quant_tags)
            self._quant_tags[vset] = tag
        return vset, tag

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification over the given variables."""
        vset, tag = self._quant_tag(variables)
        if not vset:
            return f
        max_level = max(self._var2level[v] for v in vset)
        return self._exists(f, vset, tag, max_level)

    def _exists(self, f: int, vset: frozenset, tag: int, max_level: int) -> int:
        if f <= TRUE:
            return f
        node = f >> 1
        var = self._var[node]
        if self._var2level[var] > max_level:
            return f  # f no longer depends on any quantified variable
        key = (((f << _SHIFT) << _SHIFT | tag) << 3) | _OP_EXISTS
        self.stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        neg = f & 1
        lo = self._exists(self._lo[node] ^ neg, vset, tag, max_level)
        if var in vset and lo == TRUE:
            result = TRUE
        else:
            hi = self._exists(self._hi[node] ^ neg, vset, tag, max_level)
            if var in vset:
                result = self.ite(lo, TRUE, hi)
            else:
                result = self._mk(var, lo, hi)
        self._cache[key] = result
        return result

    def forall(self, f: int, variables: Sequence[int]) -> int:
        return self.exists(f ^ 1, variables) ^ 1

    def and_exists(self, f: int, g: int, variables: Sequence[int]) -> int:
        """The relational product  ∃ variables . f ∧ g  without building
        the full conjunction first — the workhorse of image computation."""
        vset, tag = self._quant_tag(variables)
        if not vset:
            return self.ite(f, g, FALSE)
        max_level = max(self._var2level[v] for v in vset)
        return self._and_exists(f, g, vset, tag, max_level)

    def _and_exists(
        self, f: int, g: int, vset: frozenset, tag: int, max_level: int
    ) -> int:
        if f == FALSE or g == FALSE or f == (g ^ 1):
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists(g, vset, tag, max_level)
        if g == TRUE or f == g:
            return self._exists(f, vset, tag, max_level)
        if f > g:
            f, g = g, f  # the product is commutative; canonicalize the key
        var_arr = self._var
        v2l = self._var2level
        fl = v2l[var_arr[f >> 1]] if f > TRUE else _TERMINAL_LEVEL
        gl = v2l[var_arr[g >> 1]] if g > TRUE else _TERMINAL_LEVEL
        if fl > max_level and gl > max_level:
            return self.ite(f, g, FALSE)  # below every quantified level
        key = (((f << _SHIFT | g) << _SHIFT | tag) << 3) | _OP_AND_EXISTS
        self.stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        level = fl if fl < gl else gl
        var = self._level2var[level]
        lo_arr, hi_arr = self._lo, self._hi
        if fl == level:
            node = f >> 1
            fneg = f & 1
            f0, f1 = lo_arr[node] ^ fneg, hi_arr[node] ^ fneg
        else:
            f0 = f1 = f
        if gl == level:
            node = g >> 1
            gneg = g & 1
            g0, g1 = lo_arr[node] ^ gneg, hi_arr[node] ^ gneg
        else:
            g0 = g1 = g
        lo = self._and_exists(f0, g0, vset, tag, max_level)
        if var in vset:
            # Early termination: lo OR hi, and lo == TRUE short-circuits.
            if lo == TRUE:
                result = TRUE
            else:
                hi = self._and_exists(f1, g1, vset, tag, max_level)
                result = self.ite(lo, TRUE, hi)
        else:
            hi = self._and_exists(f1, g1, vset, tag, max_level)
            result = self._mk(var, lo, hi)
        self._cache[key] = result
        return result

    # -- substitution ----------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables by an arbitrary injective map ``{old: new}``.

        Implemented as a simultaneous substitution pass: each mapped
        variable is replaced by its target via ``ite`` on the way back
        up, so the map need *not* preserve the variable order (swaps and
        inversions are fine).  Two error cases are rejected:

        * a non-injective map (two variables renamed to one target),
        * a capturing map — a target that is also an unmapped variable
          of ``f``'s support would silently merge two variables.
        """
        mapping = {a: b for a, b in mapping.items() if a != b}
        if not mapping:
            return f
        for v in list(mapping) + list(mapping.values()):
            if not 0 <= v < self.n_vars:
                raise BddError(f"variable {v} not declared (n_vars={self.n_vars})")
        targets = set(mapping.values())
        if len(targets) != len(mapping):
            raise BddError(f"rename mapping is not injective: {mapping}")
        # Capture — a target that is also an unmapped support variable —
        # is detected on the fly during the recursion (no support walk).
        capture_set = targets - set(mapping)
        items = tuple(sorted(mapping.items()))
        tag = self._subst_tags.get(items)
        if tag is None:
            tag = len(self._subst_tags)
            self._subst_tags[items] = tag
        # Deep enough to reach every mapped variable *and* every
        # potential capture (targets sit at their own levels).
        max_level = max(
            max(self._var2level[v] for v in mapping),
            max(self._var2level[v] for v in targets),
        )
        return self._rename(f, mapping, capture_set, tag, max_level)

    def _rename(
        self,
        f: int,
        mapping: Dict[int, int],
        capture_set: set,
        tag: int,
        max_level: int,
    ) -> int:
        if f <= TRUE:
            return f
        node = f >> 1
        var = self._var[node]
        if self._var2level[var] > max_level:
            return f  # below every renamed variable
        neg = f & 1
        key = (((f << _SHIFT) << _SHIFT | tag) << 3) | _OP_RENAME
        self.stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached ^ neg
        target = mapping.get(var)
        if target is None and var in capture_set:
            raise BddError(
                f"rename mapping captures unmapped support variable "
                f"{var}: {mapping}"
            )
        lo = self._rename(self._lo[node], mapping, capture_set, tag, max_level)
        hi = self._rename(self._hi[node], mapping, capture_set, tag, max_level)
        if target is None:
            # An unmapped variable may no longer sit above its rebuilt
            # children (a deeper variable can be renamed to a level
            # above this one): _mk only when the order still holds,
            # full ITE re-insertion otherwise.
            vl = self._var2level[var]
            if (
                lo <= TRUE or self._var2level[self._var[lo >> 1]] > vl
            ) and (hi <= TRUE or self._var2level[self._var[hi >> 1]] > vl):
                result = self._mk(var, lo, hi)
            else:
                result = self.ite(self.var(var), hi, lo)
        else:
            result = self.ite(self.var(target), hi, lo)
        self._cache[key] = result
        return result ^ neg

    def restrict(self, f: int, assignments: Dict[int, int]) -> int:
        """Cofactor f by ``{variable: 0/1}``."""
        if f <= TRUE or not assignments:
            return f
        items = tuple(sorted(assignments.items()))
        tag = self._subst_tags.get(items)
        if tag is None:
            tag = len(self._subst_tags)
            self._subst_tags[items] = tag
        max_level = max(self._var2level[v] for v in assignments)
        return self._restrict(f, assignments, tag, max_level)

    def _restrict(
        self, f: int, assignments: Dict[int, int], tag: int, max_level: int
    ) -> int:
        if f <= TRUE:
            return f
        node = f >> 1
        var = self._var[node]
        if self._var2level[var] > max_level:
            return f
        neg = f & 1
        key = (((f << _SHIFT) << _SHIFT | tag) << 3) | _OP_RESTRICT
        self.stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached ^ neg
        fixed = assignments.get(var)
        if fixed is not None:
            branch = self._hi[node] if fixed else self._lo[node]
            result = self._restrict(branch, assignments, tag, max_level)
        else:
            lo = self._restrict(self._lo[node], assignments, tag, max_level)
            hi = self._restrict(self._hi[node], assignments, tag, max_level)
            result = self._mk(var, lo, hi)
        self._cache[key] = result
        return result ^ neg

    def flip_var(self, f: int, v: int) -> int:
        """Substitute ``v <- ~v``: swap the cofactors at variable ``v``.

        This is the fully-quantified image of a one-signal toggle — the
        per-gate transition step of the partitioned symbolic traversal —
        at the cost of one linear pass over the nodes above ``v``.
        """
        if not 0 <= v < self.n_vars:
            raise BddError(f"variable {v} not declared (n_vars={self.n_vars})")
        return self._flip(f, v, self._var2level[v])

    def _flip(self, f: int, v: int, v_level: int) -> int:
        if f <= TRUE:
            return f
        node = f >> 1
        var = self._var[node]
        if self._var2level[var] > v_level:
            return f  # f does not depend on v
        neg = f & 1
        if var == v:
            return self._mk(v, self._hi[node], self._lo[node]) ^ neg
        key = (((f << _SHIFT) << _SHIFT | v) << 3) | _OP_FLIP
        self.stats.cache_lookups += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached ^ neg
        lo = self._flip(self._lo[node], v, v_level)
        hi = self._flip(self._hi[node], v, v_level)
        result = self._mk(var, lo, hi)
        self._cache[key] = result
        return result ^ neg

    # -- model queries -----------------------------------------------------------

    def eval(self, f: int, assignment: Sequence[int]) -> int:
        """Evaluate under a full assignment (index = variable index)."""
        neg = f & 1
        while f > TRUE:
            node = f >> 1
            f = self._hi[node] if assignment[self._var[node]] else self._lo[node]
            neg ^= f & 1
        return neg  # f is terminal; neg accumulated every complement edge

    def sat_count(self, f: int, over: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments over the given variable set
        (default: all declared variables)."""
        variables = list(over) if over is not None else list(range(self.n_vars))
        variables.sort(key=lambda v: self._var2level[v])
        vpos = {v: i for i, v in enumerate(variables)}
        n = len(variables)
        cache: Dict[int, int] = {}

        def count(ref: int, depth: int) -> int:
            # depth = index into `variables` the caller has consumed
            if ref == FALSE:
                return 0
            if ref == TRUE:
                return 1 << (n - depth)
            node = ref >> 1
            var = self._var[node]
            pos = vpos.get(var)
            if pos is None:
                raise BddError("sat_count: function depends on excluded variable")
            below = cache.get(node)
            if below is None:
                below = count(self._lo[node], pos + 1) + count(
                    self._hi[node], pos + 1
                )
                cache[node] = below
            if ref & 1:
                below = (1 << (n - pos)) - below
            return below << (pos - depth)

        return count(f, 0)

    def sat_iter(self, f: int, over: Optional[Sequence[int]] = None) -> Iterator[Dict[int, int]]:
        """Yield satisfying assignments as ``{variable: value}`` dicts,
        enumerating excluded-variable freedom over ``over``."""
        variables = list(over) if over is not None else list(range(self.n_vars))
        variables.sort(key=lambda v: self._var2level[v])

        def rec(ref: int, idx: int, partial: Dict[int, int]):
            if ref == FALSE:
                return
            if idx == len(variables):
                if ref == TRUE:
                    yield dict(partial)
                    return
                # Mirror sat_count: an error, not a silent empty yield.
                raise BddError("sat_iter: function depends on excluded variable")
            var = variables[idx]
            if ref == TRUE:
                top_level = _TERMINAL_LEVEL
            else:
                top_level = self._var2level[self._var[ref >> 1]]
            var_level = self._var2level[var]
            if top_level == var_level:
                node = ref >> 1
                neg = ref & 1
                children = (self._lo[node] ^ neg, self._hi[node] ^ neg)
                for value in (0, 1):
                    partial[var] = value
                    yield from rec(children[value], idx + 1, partial)
                del partial[var]
            elif top_level > var_level:
                for value in (0, 1):
                    partial[var] = value
                    yield from rec(ref, idx + 1, partial)
                del partial[var]
            else:
                raise BddError("sat_iter: node above enumeration set")

        yield from rec(f, 0, {})

    def support(self, f: int) -> List[int]:
        """Variable indices f depends on."""
        seen = set()
        out = set()
        stack = [f >> 1]
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            out.add(self._var[node])
            stack.append(self._lo[node] >> 1)
            stack.append(self._hi[node] >> 1)
        return sorted(out)

    def size(self, f: int) -> int:
        """Number of distinct nodes in f (terminal excluded)."""
        return self.shared_size([f])

    def shared_size(self, roots: Sequence[int]) -> int:
        """Distinct internal nodes shared across ``roots``."""
        seen: Set[int] = set()
        stack = [r >> 1 for r in roots]
        while stack:
            node = stack.pop()
            if node == 0 or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node] >> 1)
            stack.append(self._hi[node] >> 1)
        return len(seen)

    # -- roots and garbage collection -------------------------------------

    def add_root(self, ref: int) -> int:
        """Register ``ref`` as a GC/reorder root; returns ``ref``.
        Balanced by :meth:`remove_root` (a ref may be registered more
        than once; it stays a root until every registration is removed)."""
        self._roots[ref] = self._roots.get(ref, 0) + 1
        return ref

    def remove_root(self, ref: int) -> None:
        count = self._roots.get(ref)
        if count is None:
            raise BddError(f"ref {ref} is not a registered root")
        if count == 1:
            del self._roots[ref]
        else:
            self._roots[ref] = count - 1

    def roots(self) -> List[int]:
        return list(self._roots)

    def publish_metrics(self) -> None:
        """Flush kernel counter deltas to the ambient metrics registry.

        Happens automatically at GC/sift boundaries; call it explicitly
        at the end of a workload whose circuit is small enough never to
        trigger housekeeping (the symbolic CSSG builder does)."""
        self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Push kernel counters into the ambient metrics registry as
        deltas since the last publication.  Called from :meth:`collect`,
        :meth:`sift`, and :meth:`publish_metrics` — housekeeping and
        end-of-workload boundaries — never the per-operation paths."""
        from repro.obs import metrics as obs

        if not obs.enabled():
            return
        reg = obs.get_registry()
        s, pub = self.stats, self._published
        for attr, name, help_text in (
            ("cache_hits", "repro_bdd_cache_hits_total",
             "ITE operation-cache hits."),
            ("cache_lookups", "repro_bdd_cache_lookups_total",
             "ITE operation-cache lookups."),
            ("n_gc_passes", "repro_bdd_gc_passes_total",
             "Completed mark-and-sweep passes."),
            ("n_freed", "repro_bdd_nodes_freed_total",
             "BDD nodes reclaimed by GC."),
            ("n_reorders", "repro_bdd_reorders_total",
             "Completed sifting passes."),
        ):
            delta = getattr(s, attr) - getattr(pub, attr)
            if delta:
                reg.counter(name, help_text).inc(delta)
                setattr(pub, attr, getattr(s, attr))
        reg.gauge(
            "repro_bdd_live_nodes", "Live BDD nodes (unique-table load)."
        ).set(self.n_nodes)
        reg.gauge(
            "repro_bdd_peak_nodes", "High-water mark of live BDD nodes."
        ).set(s.peak_nodes)

    def collect(self, roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep: free every node not reachable from the
        registered roots plus ``roots``; returns the number freed.

        The operation cache is invalidated (freed ids may be re-used by
        later allocations), but surviving node ids do not move — any
        reference whose function was marked stays valid.
        """
        from repro.obs.trace import get_tracer

        with get_tracer().span("bdd.gc", nodes=self.n_nodes):
            freed = self._collect(roots)
        self._publish_metrics()
        return freed

    def _collect(self, roots: Iterable[int] = ()) -> int:
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        marks = bytearray(len(var_arr))
        marks[0] = 1
        stack = [r >> 1 for r in self._roots]
        stack.extend(r >> 1 for r in roots)
        while stack:
            node = stack.pop()
            if marks[node]:
                continue
            marks[node] = 1
            stack.append(lo_arr[node] >> 1)
            stack.append(hi_arr[node] >> 1)
        unique = self._unique
        free_head = self._free_head
        freed = 0
        for node in range(1, len(var_arr)):
            v = var_arr[node]
            if v < 0 or marks[node]:
                continue  # already on the free chain, or live
            del unique[(v << _USHIFT | lo_arr[node]) << _USHIFT | hi_arr[node]]
            var_arr[node] = -1
            lo_arr[node] = free_head
            free_head = node
            freed += 1
        self._free_head = free_head
        self._cache.clear()
        self._n_live -= freed
        self.stats.n_freed += freed
        self.stats.n_gc_passes += 1
        return freed

    def checkpoint(self) -> None:
        """Housekeeping safe point for long computations.

        If the configured thresholds are crossed, garbage-collect and/or
        sift against the registered roots.  Callers must register (or
        have already registered) every reference they intend to use
        afterwards — anything unreachable from the roots is reclaimed.
        """
        n = self.n_nodes
        if self.auto_reorder_nodes is not None and n >= self._next_reorder:
            after = self.sift()
            # Convergence: sifting pays off while the order is bad; once
            # a pass barely shrinks the live set the order has settled
            # and further auto-sifts are pure overhead — disarm.  (The
            # baseline is the live count after the pre-sift collect, so
            # garbage does not masquerade as sifting gains.)
            before = self._n_live_before_sift
            if after >= before * 0.9:
                self._next_reorder = 1 << 62
                return
            # Geometric backoff: a traversal whose live size plateaus
            # just above the threshold would otherwise be re-sifted at
            # every checkpoint for no gain — each completed auto-sift
            # doubles the growth factor required to arm the next one.
            growth = self._reorder_growth
            self._next_reorder = max(
                self.auto_reorder_nodes, growth * self.n_nodes
            )
            if growth < 16:
                self._reorder_growth = growth * 2
            return
        if self.auto_gc_nodes is not None and n >= self._next_gc:
            self.collect()
            self._next_gc = max(self.auto_gc_nodes, 2 * self.n_nodes)

    # -- in-place sifting --------------------------------------------------

    def sift(
        self,
        roots: Iterable[int] = (),
        max_growth: float = 1.2,
    ) -> int:
        """Rudell sifting, in place: returns the live node count after.

        Each variable in turn (largest level population first) is moved
        through every level by adjacent swaps and left at its best
        position.  Node ids are preserved — live references denote the
        same functions afterwards.  Starts with a :meth:`collect`
        against the registered roots plus ``roots``, so the size metric
        counts live nodes only.  ``max_growth`` bounds how far past the
        best-seen size a variable may be dragged before the walk in
        that direction is abandoned (1.2, the classic sifting bound, keeps
        runaway walks from dominating reorder time).
        """
        from repro.obs.trace import get_tracer

        with get_tracer().span("bdd.sift", nodes=self.n_nodes):
            after = self._sift(roots, max_growth)
        self._publish_metrics()
        return after

    def _sift(
        self,
        roots: Iterable[int] = (),
        max_growth: float = 1.2,
    ) -> int:
        roots = list(roots)
        self.collect(roots)
        # Post-collect live count: checkpoint()'s convergence test
        # compares against this so reclaimed garbage does not
        # masquerade as a sifting gain.
        self._n_live_before_sift = self._n_live
        n_levels = self.n_vars
        if n_levels < 2:
            return self.n_nodes
        # Scaffolding, flat arrays only: per-node reference counts
        # (internal edges + one per distinct root) and per-variable node
        # populations as intrusive doubly-linked chains.
        cap = len(self._var)
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        ref = self._ref = [0] * cap
        ln_next = self._ln_next = [-1] * cap
        ln_prev = self._ln_prev = [-1] * cap
        vhead = self._vhead = [-1] * n_levels
        pop = [0] * n_levels
        for node in range(1, cap):
            v = var_arr[node]
            if v < 0:
                continue  # free slot
            head = vhead[v]
            ln_next[node] = head
            if head != -1:
                ln_prev[head] = node
            vhead[v] = node
            pop[v] += 1
            ref[lo_arr[node] >> 1] += 1
            ref[hi_arr[node] >> 1] += 1
        for r in self._roots:
            ref[r >> 1] += 1
        for r in roots:
            ref[r >> 1] += 1
        by_population = sorted(range(n_levels), key=lambda v: (-pop[v], v))
        for v in by_population:
            if vhead[v] == -1:
                # No nodes: every swap would be pure bookkeeping and the
                # walk would settle back at the start level — skip.
                continue
            self._sift_one(v, max_growth)
        self._ref = []
        self._ln_next = []
        self._ln_prev = []
        self._vhead = []
        self.stats.n_reorders += 1
        return self.n_nodes

    def _sift_one(self, v: int, max_growth: float) -> None:
        n_levels = self.n_vars
        start = self._var2level[v]
        best_size = self._n_live
        best_level = start
        limit = int(best_size * max_growth) + 2
        level = start
        # Walk to the nearer boundary first: those levels are traversed
        # twice (out and back), so keeping that leg the short one
        # roughly halves the swap count for variables near an end.
        down_first = (n_levels - 1 - start) <= start
        for leg in (0, 1):
            if (leg == 0) == down_first:
                while level < n_levels - 1:
                    self._swap_levels(level)
                    level += 1
                    if self._n_live < best_size:
                        best_size = self._n_live
                        best_level = level
                        limit = int(best_size * max_growth) + 2
                    elif self._n_live > limit:
                        break
            else:
                while level > 0:
                    self._swap_levels(level - 1)
                    level -= 1
                    if self._n_live < best_size:
                        best_size = self._n_live
                        best_level = level
                        limit = int(best_size * max_growth) + 2
                    elif self._n_live > limit:
                        break
        # ...and settle at the best position seen.
        while level < best_level:
            self._swap_levels(level)
            level += 1
        while level > best_level:
            self._swap_levels(level - 1)
            level -= 1

    def _swap_levels(self, level: int) -> None:
        """Swap the variables at ``level`` and ``level + 1`` in place."""
        x = self._level2var[level]
        y = self._level2var[level + 1]
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        ln_next, ln_prev, vhead = self._ln_next, self._ln_prev, self._vhead
        unique = self._unique
        ref = self._ref
        n = vhead[x]
        while n != -1:
            # Capture the successor first: _mk_counted prepends fresh
            # x-nodes at the chain head (behind the walk) and _drop_ref
            # only unlinks nodes strictly below this level.
            nxt = ln_next[n]
            lo, hi = lo_arr[n], hi_arr[n]
            lo_node, hi_node = lo >> 1, hi >> 1
            if var_arr[lo_node] != y and var_arr[hi_node] != y:
                n = nxt
                continue  # independent of y: the node just changes level
            if var_arr[lo_node] == y:
                e_neg = lo & 1
                e0, e1 = lo_arr[lo_node] ^ e_neg, hi_arr[lo_node] ^ e_neg
            else:
                e0 = e1 = lo
            if var_arr[hi_node] == y:
                # hi is a regular edge (canonical form), so no ^ neg.
                t0, t1 = lo_arr[hi_node], hi_arr[hi_node]
            else:
                t0 = t1 = hi
            # new_lo = mk(x, e0, t0), unique lookup inlined; only an
            # allocation miss leaves this loop.
            if e0 == t0:
                new_lo = e0
            else:
                c = t0 & 1
                key = (x << _USHIFT | (e0 ^ c)) << _USHIFT | (t0 ^ c)
                node = unique.get(key)
                if node is None:
                    node = self._alloc_counted(x, e0 ^ c, t0 ^ c, key)
                new_lo = (node << 1) | c
            # new_hi = mk(x, e1, t1); t1 is regular (cofactor of a
            # regular then edge), so new_hi is regular and the
            # rewritten node needs no complement.
            if e1 == t1:
                new_hi = e1
            else:
                key = (x << _USHIFT | e1) << _USHIFT | t1
                node = unique.get(key)
                if node is None:
                    node = self._alloc_counted(x, e1, t1, key)
                new_hi = node << 1
            del unique[(x << _USHIFT | lo) << _USHIFT | hi]
            var_arr[n] = y
            lo_arr[n] = new_lo
            hi_arr[n] = new_hi
            unique[(y << _USHIFT | new_lo) << _USHIFT | new_hi] = n
            # Move n from x's level chain to y's.
            prv = ln_prev[n]
            if prv != -1:
                ln_next[prv] = nxt
            else:
                vhead[x] = nxt
            if nxt != -1:
                ln_prev[nxt] = prv
            head = vhead[y]
            ln_prev[n] = -1
            ln_next[n] = head
            if head != -1:
                ln_prev[head] = n
            vhead[y] = n
            ref[new_lo >> 1] += 1
            ref[new_hi >> 1] += 1
            # Drop the old child references (reclaim cascade outlined).
            r = ref[lo_node] - 1
            ref[lo_node] = r
            if r <= 0 and lo_node:
                self._reclaim(lo_node)
            r = ref[hi_node] - 1
            ref[hi_node] = r
            if r <= 0 and hi_node:
                self._reclaim(hi_node)
            n = nxt
        self._level2var[level], self._level2var[level + 1] = y, x
        self._var2level[x] = level + 1
        self._var2level[y] = level

    def _alloc_counted(self, var: int, lo: int, hi: int, key: int) -> int:
        """Allocate one canonical-form node during sifting — the slow
        path of the unique lookups inlined in :meth:`_swap_levels`.
        The node joins its variable's level chain (at the head, behind
        any walk in progress) with a zero reference count — the caller
        links it — and counts one reference on each child."""
        node = self._free_head
        if node != -1:
            self._free_head = self._lo[node]
            self._var[node] = var
            self._lo[node] = lo
            self._hi[node] = hi
        else:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            # Fresh slot: grow the sifting scaffolding to match.
            self._ref.append(0)
            self._ln_next.append(-1)
            self._ln_prev.append(-1)
        self._unique[key] = node
        stats = self.stats
        stats.n_allocated += 1
        self._n_live += 1
        if self._n_live > stats.peak_nodes:
            stats.peak_nodes = self._n_live
        ref = self._ref
        ref[node] = 0
        head = self._vhead[var]
        self._ln_prev[node] = -1
        self._ln_next[node] = head
        if head != -1:
            self._ln_prev[head] = node
        self._vhead[var] = node
        ref[lo >> 1] += 1
        ref[hi >> 1] += 1
        return node

    def _reclaim(self, node: int) -> None:
        """Free a node whose sifting reference count reached zero,
        cascading to its children with an explicit stack (no recursion —
        cofactor chains can run deep)."""
        ref = self._ref
        var_arr, lo_arr, hi_arr = self._var, self._lo, self._hi
        ln_next, ln_prev, vhead = self._ln_next, self._ln_prev, self._vhead
        unique = self._unique
        stack = [node]
        freed = 0
        while stack:
            node = stack.pop()
            v = var_arr[node]
            del unique[(v << _USHIFT | lo_arr[node]) << _USHIFT | hi_arr[node]]
            lo_node, hi_node = lo_arr[node] >> 1, hi_arr[node] >> 1
            # Unlink from its level chain, push onto the free chain.
            prv, nxt = ln_prev[node], ln_next[node]
            if prv != -1:
                ln_next[prv] = nxt
            else:
                vhead[v] = nxt
            if nxt != -1:
                ln_prev[nxt] = prv
            var_arr[node] = -1
            lo_arr[node] = self._free_head
            self._free_head = node
            freed += 1
            if lo_node != 0:
                ref[lo_node] -= 1
                if ref[lo_node] <= 0:
                    stack.append(lo_node)
            if hi_node != 0:
                ref[hi_node] -= 1
                if ref[hi_node] <= 0:
                    stack.append(hi_node)
        self._n_live -= freed
        self.stats.n_freed += freed
