"""The seed ROBDD manager, preserved as a differential/benchmark oracle.

This is the original "clarity-first" engine: no complement edges, no
garbage collection, no reordering, tuple-keyed per-operation caches, and
:meth:`LegacyBddManager.rename` restricted to order-preserving maps.
The production kernel lives in :mod:`repro.bdd.manager`;
``benchmarks/bench_symbolic.py`` times the two against each other on an
image-computation workload, and the differential tests use this manager
as an independent implementation to cross-check results.

Design notes (unchanged from the seed):

* Nodes live in parallel arrays (``var``, ``lo``, ``hi``) addressed by
  integer handles; 0 and 1 are the terminal handles.  A unique table
  guarantees canonicity, so equality of functions is handle equality.
* Variables are identified by their *level* (creation order = variable
  order).
* All binary operations funnel through a memoized Shannon-expansion
  ``apply``; quantification and the fused and-exists relational product
  have their own caches, keyed per call by operation tag.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BddError

FALSE = 0
TRUE = 1


class LegacyBddManager:
    """Hash-consed ROBDD store plus the usual operations (seed version)."""

    def __init__(self, n_vars: int = 0):
        # Terminals occupy handles 0 and 1; their var is a sentinel level
        # *below* every real variable so cofactor recursion stops cleanly.
        self._var: List[int] = [1 << 60, 1 << 60]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple, int] = {}
        self.n_vars = 0
        for _ in range(n_vars):
            self.new_var()

    # -- node plumbing -----------------------------------------------------

    def new_var(self) -> int:
        """Declare the next variable (level = declaration order); returns
        the BDD for that variable."""
        self.n_vars += 1
        return self.var(self.n_vars - 1)

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    def var(self, i: int) -> int:
        """The BDD of variable ``i``."""
        if not 0 <= i < self.n_vars:
            raise BddError(f"variable {i} not declared (n_vars={self.n_vars})")
        return self._mk(i, FALSE, TRUE)

    def nvar(self, i: int) -> int:
        """The BDD of ``~variable i``."""
        return self._mk(i, TRUE, FALSE)

    @property
    def n_nodes(self) -> int:
        return len(self._var)

    def top_var(self, f: int) -> int:
        return self._var[f]

    def cofactors(self, f: int, var: int) -> Tuple[int, int]:
        """(f|var=0, f|var=1) for a variable at or above f's top level."""
        if self._var[f] == var:
            return self._lo[f], self._hi[f]
        return f, f

    # -- core operations -----------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f·g + ~f·h, the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = ("ite", f, g, h)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self.cofactors(f, var)
        g0, g1 = self.cofactors(g, var)
        h0, h1 = self.cofactors(h, var)
        result = self._mk(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._apply_cache[key] = result
        return result

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def and_all(self, fs: Iterable[int]) -> int:
        result = TRUE
        for f in fs:
            result = self.apply_and(result, f)
            if result == FALSE:
                break
        return result

    def or_all(self, fs: Iterable[int]) -> int:
        result = FALSE
        for f in fs:
            result = self.apply_or(result, f)
            if result == TRUE:
                break
        return result

    # -- quantification ------------------------------------------------------

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existential quantification over the given variable levels."""
        vset = frozenset(variables)
        return self._exists(f, vset)

    def _exists(self, f: int, vset: frozenset) -> int:
        if f <= TRUE:
            return f
        var = self._var[f]
        if all(v < var for v in vset):
            return f  # f no longer depends on any quantified variable
        key = ("ex", f, vset)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        lo = self._exists(self._lo[f], vset)
        hi = self._exists(self._hi[f], vset)
        if var in vset:
            result = self.apply_or(lo, hi)
        else:
            result = self._mk(var, lo, hi)
        self._apply_cache[key] = result
        return result

    def forall(self, f: int, variables: Sequence[int]) -> int:
        return self.apply_not(self.exists(self.apply_not(f), variables))

    def and_exists(self, f: int, g: int, variables: Sequence[int]) -> int:
        """The relational product  ∃ variables . f ∧ g  without building
        the full conjunction first — the workhorse of image computation."""
        vset = frozenset(variables)
        return self._and_exists(f, g, vset)

    def _and_exists(self, f: int, g: int, vset: frozenset) -> int:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE and g == TRUE:
            return TRUE
        if f == TRUE:
            return self._exists(g, vset)
        if g == TRUE:
            return self._exists(f, vset)
        key = ("ae", f, g, vset)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var = min(self._var[f], self._var[g])
        f0, f1 = self.cofactors(f, var)
        g0, g1 = self.cofactors(g, var)
        lo = self._and_exists(f0, g0, vset)
        if var in vset:
            # Early termination: lo OR hi, and lo == TRUE short-circuits.
            if lo == TRUE:
                result = TRUE
            else:
                hi = self._and_exists(f1, g1, vset)
                result = self.apply_or(lo, hi)
        else:
            hi = self._and_exists(f1, g1, vset)
            result = self._mk(var, lo, hi)
        self._apply_cache[key] = result
        return result

    # -- substitution ----------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables by level map; the map must preserve relative
        order (e.g. next-state level 2i+1 -> current level 2i)."""
        items = sorted(mapping.items())
        for (a1, b1), (a2, b2) in zip(items, items[1:]):
            if not (a1 < a2 and b1 < b2):
                raise BddError("rename mapping must be order-preserving")
        key = ("rn", f, tuple(items))
        return self._rename(f, dict(mapping), key[2])

    def _rename(self, f: int, mapping: Dict[int, int], tag) -> int:
        if f <= TRUE:
            return f
        key = ("rn", f, tag)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var = self._var[f]
        nvar = mapping.get(var, var)
        result = self._mk(
            nvar,
            self._rename(self._lo[f], mapping, tag),
            self._rename(self._hi[f], mapping, tag),
        )
        self._apply_cache[key] = result
        return result

    def restrict(self, f: int, assignments: Dict[int, int]) -> int:
        """Cofactor f by {variable level: 0/1}."""
        if f <= TRUE or not assignments:
            return f
        key = ("rs", f, tuple(sorted(assignments.items())))
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var = self._var[f]
        fixed = assignments.get(var)
        if fixed is not None:
            branch = self._hi[f] if fixed else self._lo[f]
            result = self.restrict(branch, assignments)
        else:
            lo = self.restrict(self._lo[f], assignments)
            hi = self.restrict(self._hi[f], assignments)
            result = self._mk(var, lo, hi)
        self._apply_cache[key] = result
        return result

    # -- model queries -----------------------------------------------------------

    def eval(self, f: int, assignment: Sequence[int]) -> int:
        """Evaluate under a full assignment (index = variable level)."""
        while f > TRUE:
            f = self._hi[f] if assignment[self._var[f]] else self._lo[f]
        return f

    def sat_count(self, f: int, over: Optional[Sequence[int]] = None) -> int:
        """Number of satisfying assignments over the given variable set
        (default: all declared variables)."""
        variables = sorted(over) if over is not None else list(range(self.n_vars))
        vpos = {v: i for i, v in enumerate(variables)}

        cache: Dict[int, int] = {}

        def count(node: int, depth: int) -> int:
            # depth = index into `variables` we are currently at
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << (len(variables) - depth)
            var = self._var[node]
            if var not in vpos:
                raise BddError("sat_count: function depends on excluded variable")
            key = node
            cached = cache.get(key)
            if cached is None:
                below = count(self._lo[node], vpos[var] + 1) + count(
                    self._hi[node], vpos[var] + 1
                )
                cache[key] = below
            else:
                below = cached
            return below << (vpos[var] - depth)

        return count(f, 0)

    def sat_iter(self, f: int, over: Optional[Sequence[int]] = None) -> Iterator[Dict[int, int]]:
        """Yield satisfying assignments as {variable level: value} dicts,
        enumerating excluded-variable freedom over ``over``."""
        variables = sorted(over) if over is not None else list(range(self.n_vars))

        def rec(node: int, idx: int, partial: Dict[int, int]):
            if node == FALSE:
                return
            if idx == len(variables):
                if node == TRUE:
                    yield dict(partial)
                return
            var = variables[idx]
            top = self._var[node]
            if top == var:
                for value, child in ((0, self._lo[node]), (1, self._hi[node])):
                    partial[var] = value
                    yield from rec(child, idx + 1, partial)
                del partial[var]
            elif top > var:
                for value in (0, 1):
                    partial[var] = value
                    yield from rec(node, idx + 1, partial)
                del partial[var]
            else:
                raise BddError("sat_iter: node above enumeration set")

        yield from rec(f, 0, {})

    def support(self, f: int) -> List[int]:
        """Variable levels f depends on."""
        seen = set()
        out = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            out.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return sorted(out)

    def size(self, f: int) -> int:
        """Number of distinct nodes in f (terminals excluded)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen)
