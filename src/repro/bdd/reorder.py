"""Variable-ordering exploration for the BDD engine.

The paper's §6 lists "studying better variable ordering strategies in
the use of BDDs" as the first way to speed up its symbolic step.  This
module provides the substrate:

* :func:`copy_with_order` — rebuild functions in a fresh manager under
  an arbitrary variable permutation (the manager itself is hash-consed
  and immutable, so reordering is a functional rebuild rather than the
  classic in-place level swap);
* :func:`total_size` — the shared-node count of a set of functions, the
  quantity orderings try to minimize;
* :func:`sift_order` — a greedy sifting search: each variable in turn is
  tried at every position and left where the rebuilt size is smallest.

For the circuit sizes in this reproduction a full rebuild per trial is
entirely affordable, and the code stays independent of manager
internals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.errors import BddError


def copy_with_order(
    src: BddManager, roots: Sequence[int], order: Sequence[int]
) -> Tuple[BddManager, List[int]]:
    """Rebuild ``roots`` in a new manager where old variable ``order[i]``
    sits at level ``i``.  Returns (new manager, translated roots)."""
    if sorted(order) != list(range(src.n_vars)):
        raise BddError("order must be a permutation of all variables")
    position = {old: new for new, old in enumerate(order)}
    dst = BddManager(src.n_vars)
    cache: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def rebuild(node: int) -> int:
        cached = cache.get(node)
        if cached is not None:
            return cached
        var = src.top_var(node)
        lo = rebuild(src._lo[node])  # noqa: SLF001 — engine-internal walk
        hi = rebuild(src._hi[node])  # noqa: SLF001
        new_var = dst.var(position[var])
        result = dst.ite(new_var, hi, lo)
        cache[node] = result
        return result

    return dst, [rebuild(r) for r in roots]


def total_size(mgr: BddManager, roots: Sequence[int]) -> int:
    """Distinct internal nodes shared across ``roots``."""
    seen = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node <= TRUE or node in seen:
            continue
        seen.add(node)
        stack.append(mgr._lo[node])  # noqa: SLF001
        stack.append(mgr._hi[node])  # noqa: SLF001
    return len(seen)


def sift_order(
    src: BddManager, roots: Sequence[int], max_rounds: int = 2
) -> Tuple[List[int], int]:
    """Greedy sifting: returns (best order, best size).

    Starting from the identity order, each variable is tentatively moved
    to every position; the best placement is kept.  ``max_rounds`` full
    passes bound the work (sifting converges quickly in practice).
    """
    order = list(range(src.n_vars))
    best_size = _size_for(src, roots, order)
    for _ in range(max_rounds):
        improved = False
        for var in list(order):
            current_pos = order.index(var)
            best_pos = current_pos
            for pos in range(len(order)):
                if pos == current_pos:
                    continue
                trial = list(order)
                trial.pop(current_pos)
                trial.insert(pos, var)
                size = _size_for(src, roots, trial)
                if size < best_size:
                    best_size = size
                    best_pos = pos
            if best_pos != current_pos:
                order.pop(current_pos)
                order.insert(best_pos, var)
                improved = True
        if not improved:
            break
    return order, best_size


def _size_for(src: BddManager, roots: Sequence[int], order: Sequence[int]) -> int:
    dst, rebuilt = copy_with_order(src, roots, order)
    return total_size(dst, rebuilt)
