"""Variable-ordering exploration for the BDD engine.

The paper's §6 lists "studying better variable ordering strategies in
the use of BDDs" as the first way to speed up its symbolic step.  The
production path is :meth:`repro.bdd.manager.BddManager.sift` — in-place
Rudell sifting, triggered automatically by node-count growth when the
manager is configured with ``auto_reorder_nodes`` (the symbolic CSSG
builder does this).  This module keeps the *offline* utilities on top
of it:

* :func:`copy_with_order` — rebuild functions in a fresh manager under
  an arbitrary explicit variable permutation;
* :func:`total_size` — the shared-node count of a set of functions, the
  quantity orderings try to minimize;
* :func:`sift_order` — search for a good order by running the in-place
  sifter on a scratch copy, leaving the source manager untouched;
  returns the discovered order so it can be applied, logged or compared;
* :func:`static_order` — a connectivity-driven *initial* order computed
  from the netlist before any BDD exists: DFS from the primary outputs
  through gate fanins, so each signal lands next to the cone it feeds.
  Installed by the symbolic CSSG builder via
  :meth:`~repro.bdd.manager.BddManager.set_order` on the fresh manager,
  it avoids building the (exponential) declaration-order blowup that
  dynamic reordering would otherwise have to sift its way out of.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import TRUE, BddManager
from repro.errors import BddError


def static_order(circuit) -> List[int]:
    """A netlist-driven initial variable order (level → signal index).

    Depth-first from each primary output through gate fanins, emitting
    signals in visit order: a gate sits immediately above the inputs of
    its cone, so related signals share adjacent levels — the classic
    static heuristic that keeps intermediate BDDs of structurally local
    functions small.  Signals outside every output cone follow, gates
    first (deepest last), then anything untouched in declaration order.
    """
    gate_at = {g.index: g for g in circuit.gates}
    seen = [False] * circuit.n_signals
    order: List[int] = []

    def visit(sig: int) -> None:
        stack = [sig]
        while stack:
            s = stack.pop()
            if seen[s]:
                continue
            seen[s] = True
            order.append(s)
            gate = gate_at.get(s)
            if gate is not None:
                stack.extend(
                    src for src in reversed(gate.support) if not seen[src]
                )

    for out in circuit.outputs:
        visit(out)
    for gate in circuit.gates:
        visit(gate.index)
    for s in range(circuit.n_signals):
        visit(s)
    return order


def copy_with_order(
    src: BddManager, roots: Sequence[int], order: Sequence[int]
) -> Tuple[BddManager, List[int]]:
    """Rebuild ``roots`` in a new manager where old variable ``order[i]``
    sits at level ``i``.  Returns (new manager, translated roots)."""
    if sorted(order) != list(range(src.n_vars)):
        raise BddError("order must be a permutation of all variables")
    position = {old: new for new, old in enumerate(order)}
    dst = BddManager(src.n_vars)
    cache: Dict[int, int] = {}

    def rebuild(ref: int) -> int:
        if ref <= TRUE:
            return ref
        cached = cache.get(ref)
        if cached is not None:
            return cached
        var = src.top_var(ref)
        lo, hi = src.cofactors(ref, var)
        result = dst.ite(dst.var(position[var]), rebuild(hi), rebuild(lo))
        cache[ref] = result
        return result

    return dst, [rebuild(r) for r in roots]


def total_size(mgr: BddManager, roots: Sequence[int]) -> int:
    """Distinct internal nodes shared across ``roots``."""
    return mgr.shared_size(roots)


def sift_order(
    src: BddManager, roots: Sequence[int], max_growth: float = 2.0
) -> Tuple[List[int], int]:
    """Sifting search on a scratch copy: returns (best order, best size).

    ``src`` is left untouched; the returned order maps level → variable
    of ``src`` and can be applied with :func:`copy_with_order` (or used
    to seed a fresh manager).  The search itself is the manager's
    in-place :meth:`~repro.bdd.manager.BddManager.sift`.
    """
    scratch, copies = copy_with_order(src, roots, list(range(src.n_vars)))
    scratch.sift(roots=copies, max_growth=max_growth)
    return scratch.order(), scratch.shared_size(copies)
