"""Observability: metrics, span tracing, and the campaign dashboard.

The telemetry subsystem the rest of the package reports into — see
``docs/observability.md`` for the full taxonomy and examples:

* :mod:`repro.obs.metrics` — labeled counters / gauges / fixed-bucket
  histograms in a :class:`MetricsRegistry`, a process-global default
  registry behind an :func:`enabled` switch, and the
  :class:`MetricsConsumer` that derives flow metrics from the event
  stream;
* :mod:`repro.obs.trace` — :class:`Tracer` context-manager spans (the
  only home of wall-clock data), the ambient-tracer pattern
  (:func:`get_tracer` / :func:`use_tracer`, no-op by default), and the
  self-profile table;
* :mod:`repro.obs.export` — zero-dependency Prometheus-text and JSON
  exposition plus a minimal parser for CI assertions;
* :mod:`repro.obs.dashboard` — the live ``repro-campaign --dashboard``
  terminal screen.

Everything here is observational: enabling any of it never changes the
flow's event stream or serialized results beyond the explicitly
opt-in ``telemetry`` block.
"""

from repro.obs.dashboard import CampaignDashboard
from repro.obs.export import (
    parse_prometheus_text,
    to_json_text,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsConsumer,
    MetricsRegistry,
    disable,
    enable,
    enabled,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active,
    format_profile,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CampaignDashboard",
    "parse_prometheus_text",
    "to_json_text",
    "to_prometheus_text",
    "write_metrics",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsConsumer",
    "MetricsRegistry",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "set_registry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "active",
    "format_profile",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
