"""Labeled metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately Prometheus-shaped — metric *families* with
a name, a help string, and a fixed tuple of label names; each distinct
label-value combination is one *child* time series — but has zero
dependencies and zero background machinery: everything is plain dicts
and floats, updated synchronously by the code being measured.

Three client-side types:

* :class:`Counter` — monotonically increasing (``inc``);
* :class:`Gauge` — a value that goes both ways (``set`` / ``inc``);
* :class:`Histogram` — fixed cumulative buckets plus sum and count
  (``observe``), for latency-style distributions.

A :class:`MetricsRegistry` owns families (``counter()`` / ``gauge()`` /
``histogram()`` are get-or-create), snapshots to a JSON-friendly dict
(:meth:`MetricsRegistry.snapshot`) and merges snapshots from other
processes (:meth:`MetricsRegistry.merge_snapshot`) — that pair is the
fleet-aggregation transport: campaign workers snapshot their per-job
registry onto the heartbeat channel and the parent merges the stream
into one campaign-wide registry.  Exposition (Prometheus text / JSON)
lives in :mod:`repro.obs.export`.

**Process-global switch.**  Instrumented hot paths (the arena kernels,
the BDD manager) guard their measurement code on :func:`enabled`, which
is off by default — a plain run pays one cheap check per handle, not
per operation.  ``enable()`` arms collection into the default registry
(or one you pass); the CLI's ``--metrics`` / ``--dashboard`` surfaces
flip it for you.

>>> reg = MetricsRegistry()
>>> c = reg.counter("requests_total", "Requests served.", ("verb",))
>>> c.labels("GET").inc()
>>> c.labels("GET").inc(2)
>>> c.labels("PUT").inc()
>>> sorted((lv, child.value) for lv, child in c.children())
[(('GET',), 3.0), (('PUT',), 1.0)]

The flow adapter, :class:`MetricsConsumer`, derives flow metrics purely
from :class:`~repro.flow.events.EventBus` events — subscribing it never
changes the event stream, so determinism guarantees are untouched.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsConsumer",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "enabled",
]

#: Default histogram bucket upper bounds (seconds-flavoured): wide
#: enough for microsecond kernels and ten-minute campaign jobs alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


class _Child:
    """One (family, label values) time series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value


class _HistogramChild:
    """One histogram series: cumulative bucket counts, sum, count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative ``le`` counts (+Inf last)."""
        out: List[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out


class _Family:
    """Shared family behaviour: label binding and child bookkeeping."""

    kind = ""

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]):
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self):
        raise NotImplementedError

    def labels(self, *values):
        """The child series for one label-value combination (created on
        first use).  Value count must match the family's label names."""
        if len(values) != len(self.label_names):
            raise ReproError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s) {self.label_names}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """``(label values, child)`` pairs in insertion order."""
        return self._children.items()

    def _unlabeled(self):
        if self.label_names:
            raise ReproError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "bind them with .labels(...) first"
            )
        return self.labels()


class Counter(_Family):
    """A monotonically increasing metric family."""

    kind = "counter"

    def _new_child(self) -> _Child:
        return _Child()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series (labelless families only)."""
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        child = self._children.get(())
        return child.value if child is not None else 0.0


class Gauge(_Family):
    """A metric family whose value moves both ways."""

    kind = "gauge"

    def _new_child(self) -> _Child:
        return _Child()

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    @property
    def value(self) -> float:
        child = self._children.get(())
        return child.value if child is not None else 0.0


class Histogram(_Family):
    """A fixed-bucket cumulative histogram family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)


class MetricsRegistry:
    """A set of metric families, addressable by name.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: repeated
    registration with the same shape returns the existing family, so
    every module can declare the metrics it uses without coordination.
    Registration is guarded by a lock (campaign code touches a registry
    from callback paths); sample updates are plain float arithmetic —
    atomic enough under the GIL for accounting purposes.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        label_names = tuple(label_names)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.label_names != label_names:
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = cls(name, help, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets
        )

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def value(self, name: str, *label_values) -> float:
        """Convenience reader: the current value of one series (0.0
        when the family or series does not exist yet)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family._children.get(tuple(str(v) for v in label_values))
        if child is None:
            return 0.0
        return child.value if isinstance(child, _Child) else child.sum

    # -- snapshot / merge (the fleet-aggregation transport) --------------

    def snapshot(self) -> Dict:
        """A JSON-friendly copy of every series: the wire format workers
        ship to the campaign parent, and the input of
        :func:`repro.obs.export.to_prometheus_text`."""
        doc: Dict = {"counters": [], "gauges": [], "histograms": []}
        for family in self.families():
            if isinstance(family, Histogram):
                doc["histograms"].append(
                    {
                        "name": family.name,
                        "help": family.help,
                        "label_names": list(family.label_names),
                        "buckets": list(family.buckets),
                        "samples": [
                            [
                                list(lv),
                                {
                                    "bucket_counts": list(ch.bucket_counts),
                                    "sum": ch.sum,
                                    "count": ch.count,
                                },
                            ]
                            for lv, ch in family.children()
                        ],
                    }
                )
            else:
                key = "counters" if isinstance(family, Counter) else "gauges"
                doc[key].append(
                    {
                        "name": family.name,
                        "help": family.help,
                        "label_names": list(family.label_names),
                        "samples": [
                            [list(lv), ch.value] for lv, ch in family.children()
                        ],
                    }
                )
        return doc

    def merge_snapshot(self, snap: Dict) -> None:
        """Fold another registry's snapshot into this one: counter and
        histogram samples *add*, gauge samples take the incoming value
        (last write wins — gauges describe a current level, not a
        total).  Families are created on first sight, so the parent
        needs no advance knowledge of what workers measure."""
        for rec in snap.get("counters", ()):
            family = self.counter(rec["name"], rec.get("help", ""),
                                  rec.get("label_names", ()))
            for lv, value in rec.get("samples", ()):
                family.labels(*lv).inc(value)
        for rec in snap.get("gauges", ()):
            family = self.gauge(rec["name"], rec.get("help", ""),
                                rec.get("label_names", ()))
            for lv, value in rec.get("samples", ()):
                family.labels(*lv).set(value)
        for rec in snap.get("histograms", ()):
            family = self.histogram(
                rec["name"], rec.get("help", ""), rec.get("label_names", ()),
                buckets=rec.get("buckets", DEFAULT_BUCKETS),
            )
            for lv, sample in rec.get("samples", ()):
                child = family.labels(*lv)
                counts = sample.get("bucket_counts", ())
                for i, n in enumerate(counts):
                    if i < len(child.bucket_counts):
                        child.bucket_counts[i] += n
                child.sum += sample.get("sum", 0.0)
                child.count += sample.get("count", 0)


# ---------------------------------------------------------------------------
# Process-global default registry and the enabled switch
# ---------------------------------------------------------------------------

_default_registry = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-global default registry (always present; collection
    into it only happens where guarded by :func:`enabled`)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Arm metrics collection (optionally into a fresh ``registry``);
    returns the active registry."""
    global _enabled
    if registry is not None:
        set_registry(registry)
    _enabled = True
    return _default_registry


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether instrumented code should record samples.  Hot paths check
    this once per handle/call, never per inner-loop operation."""
    return _enabled


# ---------------------------------------------------------------------------
# Flow adapter: metrics derived from the event stream
# ---------------------------------------------------------------------------


class MetricsConsumer:
    """An :class:`~repro.flow.events.EventBus` listener deriving flow
    metrics from the typed event stream.

    Purely observational: it never emits, filters, or reorders events,
    so a run with a ``MetricsConsumer`` subscribed produces exactly the
    event stream (and result) it would produce without one.  Wall-clock
    data enters only through :attr:`StageFinished.seconds`, which the
    events already carry.

    Series it maintains (all prefixed ``repro_flow_``):

    * ``events_total{event}`` — every event, by type;
    * ``faults_classified_total{status,reason}``;
    * ``tests_added_total{source}``;
    * ``stage_seconds{stage}`` (histogram) and
      ``stage_runs_total{stage}``;
    * ``budget_exhausted_total{stage,reason}``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        self._events = reg.counter(
            "repro_flow_events_total", "Flow events observed.", ("event",)
        )
        self._classified = reg.counter(
            "repro_flow_faults_classified_total",
            "Fault verdicts by status and abort reason.",
            ("status", "reason"),
        )
        self._tests = reg.counter(
            "repro_flow_tests_added_total",
            "Test sequences added, by generating stage.",
            ("source",),
        )
        self._stage_seconds = reg.histogram(
            "repro_flow_stage_seconds",
            "Wall-clock seconds per finished stage.",
            ("stage",),
        )
        self._stage_runs = reg.counter(
            "repro_flow_stage_runs_total", "Finished stage executions.", ("stage",)
        )
        self._budget = reg.counter(
            "repro_flow_budget_exhausted_total",
            "Budget exhaustions, by stage and what ran out.",
            ("stage", "reason"),
        )

    def __call__(self, event) -> None:
        from repro.flow.events import (
            BudgetExhausted,
            FaultClassified,
            StageFinished,
            TestAdded,
        )

        self._events.labels(type(event).__name__).inc()
        if isinstance(event, FaultClassified):
            self._classified.labels(event.status, event.reason).inc()
        elif isinstance(event, TestAdded):
            self._tests.labels(event.source).inc()
        elif isinstance(event, StageFinished):
            self._stage_seconds.labels(event.stage).observe(event.seconds)
            self._stage_runs.labels(event.stage).inc()
        elif isinstance(event, BudgetExhausted):
            self._budget.labels(event.stage, event.reason).inc()


#: Callable type listeners conform to (mirrors flow.events.Listener).
Listener = Callable[[object], None]
