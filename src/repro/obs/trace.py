"""Span tracing: where did the wall-clock time go?

A :class:`Tracer` records context-manager *spans* — named, nested,
monotonic-clock intervals with free-form attributes::

    tracer = Tracer()
    with tracer.span("flow.run", circuit="ebergen"):
        with tracer.span("stage.collapse"):
            ...

Spans carry the only wall-clock data the observability layer produces
(besides :attr:`StageFinished.seconds`, which the event stream always
had): event payloads and serialized results stay byte-deterministic,
and anything timing-shaped lives here.

The finished-span records (:attr:`Tracer.spans`) serialize to JSON
lines (:meth:`Tracer.write_jsonl`) and fold into a per-run
**self-profile** (:meth:`Tracer.profile` /
:func:`format_profile`): per-span-name call counts, total/self time,
and share of the traced run — the ``repro-atpg --self-profile`` table.

**Ambient tracer.**  Instrumented modules fetch the process-global
tracer with :func:`get_tracer`; by default that is :data:`NULL_TRACER`,
whose ``span()`` returns one shared no-op context manager — a plain
run pays an attribute load and a method call at each (rare) span site,
nothing more.  ``use_tracer`` scopes a real tracer over a block::

    with use_tracer(Tracer()) as tracer:
        result = Flow.default().run(circuit, options)
    print(format_profile(tracer.profile()))
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "active",
    "format_profile",
]


class Span:
    """One open span; becomes a finished record when its ``with`` block
    exits.  ``set`` attaches attributes mid-flight (counts discovered
    during the work, e.g. image-iteration totals)."""

    __slots__ = ("name", "attrs", "_tracer", "_id", "_parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._id = -1
        self._parent = -1
        self._t0 = 0.0

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._id = tracer._next_id
        tracer._next_id += 1
        self._parent = tracer._stack[-1] if tracer._stack else -1
        tracer._stack.append(self._id)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        tracer = self._tracer
        tracer._stack.pop()
        record = {
            "span_id": self._id,
            "parent_id": self._parent,
            "name": self.name,
            "start": round(self._t0 - tracer._t0, 6),
            "seconds": round(elapsed, 6),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        tracer.spans.append(record)


class Tracer:
    """Collects finished span records, in completion order.

    ``start`` fields are seconds since the tracer was created (one
    monotonic epoch per tracer), so a span file is self-contained and
    diffable without absolute timestamps.
    """

    def __init__(self) -> None:
        self.spans: List[Dict] = []
        self._stack: List[int] = []
        self._next_id = 0
        self._t0 = time.perf_counter()

    def span(self, name: str, **attrs) -> Span:
        """A new span context manager under the currently open span."""
        return Span(self, name, attrs)

    # -- outputs ---------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns the count.
        The write is atomic (temp file + replace) like every other
        artifact writer in the package."""
        from repro.obs.export import atomic_write_text

        lines = [json.dumps(rec, separators=(",", ":")) for rec in self.spans]
        atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
        return len(self.spans)

    def profile(self) -> List[Dict]:
        """Aggregate spans by name: calls, total seconds, self seconds
        (total minus directly nested child time), sorted by self time
        descending — the self-profile table's rows."""
        child_time: Dict[int, float] = {}
        for rec in self.spans:
            parent = rec["parent_id"]
            if parent >= 0:
                child_time[parent] = child_time.get(parent, 0.0) + rec["seconds"]
        agg: Dict[str, Dict] = {}
        for rec in self.spans:
            row = agg.get(rec["name"])
            if row is None:
                row = agg[rec["name"]] = {
                    "name": rec["name"], "calls": 0,
                    "total_seconds": 0.0, "self_seconds": 0.0,
                }
            row["calls"] += 1
            row["total_seconds"] += rec["seconds"]
            row["self_seconds"] += max(
                0.0, rec["seconds"] - child_time.get(rec["span_id"], 0.0)
            )
        rows = sorted(
            agg.values(), key=lambda r: (-r["self_seconds"], r["name"])
        )
        for row in rows:
            row["total_seconds"] = round(row["total_seconds"], 6)
            row["self_seconds"] = round(row["self_seconds"], 6)
        return rows


class _NullSpan:
    """The shared no-op span: enters and exits for free."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` hands back one shared no-op
    context manager, so instrumentation sites cost almost nothing when
    tracing is off."""

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()

_current: object = NULL_TRACER


def get_tracer():
    """The ambient tracer: :data:`NULL_TRACER` unless one was installed
    with :func:`set_tracer` / :func:`use_tracer`."""
    return _current


def set_tracer(tracer) -> object:
    """Install ``tracer`` as the ambient tracer; returns the previous
    one (pass it back to restore)."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


class _TracerScope:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb):
        set_tracer(self._previous)


def use_tracer(tracer: Optional[Tracer] = None):
    """Context manager scoping ``tracer`` (a fresh one by default) as
    the ambient tracer; yields it."""
    return _TracerScope(tracer if tracer is not None else Tracer())


def active() -> bool:
    """Whether a real (recording) tracer is ambient."""
    return _current is not NULL_TRACER


def format_profile(rows: List[Dict], limit: int = 20) -> str:
    """Render :meth:`Tracer.profile` rows as the where-did-time-go
    table.

    >>> print(format_profile([
    ...     {"name": "stage.three-phase", "calls": 1,
    ...      "total_seconds": 0.08, "self_seconds": 0.08},
    ...     {"name": "flow.run", "calls": 1,
    ...      "total_seconds": 0.1, "self_seconds": 0.02},
    ... ]))
    span                            calls   total(s)    self(s)   self%
    stage.three-phase                   1   0.080000   0.080000   80.0%
    flow.run                            1   0.100000   0.020000   20.0%
    """
    total_self = sum(r["self_seconds"] for r in rows) or 1.0
    lines = [
        f"{'span':<30} {'calls':>6} {'total(s)':>10} {'self(s)':>10} {'self%':>7}"
    ]
    for row in rows[:limit]:
        share = 100.0 * row["self_seconds"] / total_self
        lines.append(
            f"{row['name']:<30} {row['calls']:>6} "
            f"{row['total_seconds']:>10.6f} {row['self_seconds']:>10.6f} "
            f"{share:>6.1f}%"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span name(s)")
    return "\n".join(lines)
