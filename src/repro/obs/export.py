"""Zero-dependency metric exposition: Prometheus text and JSON.

``to_prometheus_text`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
(or one of its snapshots) in the Prometheus text exposition format —
``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` line per
series, histograms expanded into cumulative ``_bucket{le=...}`` series
plus ``_sum`` and ``_count``.  ``to_json_text`` is the same data as the
snapshot JSON.  ``write_metrics`` picks the format from the file
extension and writes atomically.

``parse_prometheus_text`` is the deliberately minimal inverse — enough
to assert in tests and CI that an emitted file is well-formed and that
expected series are present; it is not a general Prometheus client.

>>> from repro.obs.metrics import MetricsRegistry
>>> reg = MetricsRegistry()
>>> c = reg.counter("jobs_total", "Jobs resolved.", ("status",))
>>> c.labels("cached").inc(3)
>>> print(to_prometheus_text(reg))
# HELP jobs_total Jobs resolved.
# TYPE jobs_total counter
jobs_total{status="cached"} 3
<BLANKLINE>
>>> parse_prometheus_text(to_prometheus_text(reg))
{'jobs_total': {(('status', 'cached'),): 3.0}}
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Dict, List, Tuple, Union

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "to_prometheus_text",
    "to_json_text",
    "write_metrics",
    "parse_prometheus_text",
    "atomic_write_text",
]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace`` — the store's atomic-write discipline, so a reader
    (or a crash) can never observe a half-written file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".obs-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _fmt_value(value: float) -> str:
    """Prometheus-style number: integers without the trailing ``.0``."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(names: List[str], values: List[str], extra: str = "") -> str:
    parts = [
        f'{n}="{_escape(str(v))}"' for n, v in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _snapshot_of(source: Union[MetricsRegistry, Dict]) -> Dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def to_prometheus_text(source: Union[MetricsRegistry, Dict]) -> str:
    """Render a registry or snapshot in the Prometheus text format."""
    snap = _snapshot_of(source)
    lines: List[str] = []
    for kind in ("counters", "gauges"):
        ptype = "counter" if kind == "counters" else "gauge"
        for rec in snap.get(kind, ()):
            name = rec["name"]
            if rec.get("help"):
                lines.append(f"# HELP {name} {rec['help']}")
            lines.append(f"# TYPE {name} {ptype}")
            names = rec.get("label_names", [])
            for lv, value in rec.get("samples", ()):
                lines.append(f"{name}{_label_str(names, lv)} {_fmt_value(value)}")
    for rec in snap.get("histograms", ()):
        name = rec["name"]
        if rec.get("help"):
            lines.append(f"# HELP {name} {rec['help']}")
        lines.append(f"# TYPE {name} histogram")
        names = rec.get("label_names", [])
        bounds = list(rec.get("buckets", ()))
        for lv, sample in rec.get("samples", ()):
            running = 0
            counts = sample.get("bucket_counts", [])
            for bound, count in zip(bounds, counts):
                running += count
                le = 'le="%s"' % _fmt_value(float(bound))
                lines.append(
                    f"{name}_bucket{_label_str(names, lv, le)} {running}"
                )
            if len(counts) > len(bounds):
                running += counts[-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_label_str(names, lv, inf)} {running}"
            )
            lines.append(
                f"{name}_sum{_label_str(names, lv)} {_fmt_value(sample.get('sum', 0.0))}"
            )
            lines.append(
                f"{name}_count{_label_str(names, lv)} {sample.get('count', 0)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_text(source: Union[MetricsRegistry, Dict], indent: int = 2) -> str:
    """The snapshot as pretty JSON."""
    return json.dumps(_snapshot_of(source), indent=indent) + "\n"


def write_metrics(path: str, source: Union[MetricsRegistry, Dict]) -> str:
    """Write an exposition file atomically: JSON when ``path`` ends in
    ``.json``, Prometheus text otherwise.  Returns the format used."""
    if str(path).endswith(".json"):
        atomic_write_text(path, to_json_text(source))
        return "json"
    atomic_write_text(path, to_prometheus_text(source))
    return "prom"


def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    """``a="x",b="y"`` -> (("a","x"), ("b","y")) with escapes undone."""
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value at {text[eq:]!r}")
        j = eq + 2
        out: List[str] = []
        while text[j] != '"':
            ch = text[j]
            if ch == "\\":
                j += 1
                nxt = text[j]
                out.append({"n": "\n"}.get(nxt, nxt))
            else:
                out.append(ch)
            j += 1
        labels.append((name, "".join(out)))
        i = j + 1
    return tuple(labels)


def parse_prometheus_text(text: str) -> Dict[str, Dict[tuple, float]]:
    """Parse the text exposition format back into
    ``{series name: {label pairs: value}}``.

    Comments (``# HELP`` / ``# TYPE``) are validated for shape and
    skipped; every sample line must parse or :class:`ValueError` is
    raised — CI uses this as the "file is well-formed" check.
    Histogram expansions come back under their expanded names
    (``name_bucket`` / ``name_sum`` / ``name_count``).
    """
    series: Dict[str, Dict[tuple, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = _parse_labels(label_text)
        else:
            name, value_text = line.split(None, 1)
            labels = ()
        value_text = value_text.strip()
        value = (
            math.inf if value_text == "+Inf"
            else -math.inf if value_text == "-Inf"
            else float(value_text)
        )
        series.setdefault(name.strip(), {})[labels] = value
    return series
