"""The live campaign dashboard: one terminal screen, updated in place.

``repro-campaign --dashboard`` wires a :class:`CampaignDashboard` into
the runner's progress callbacks.  It renders a single-screen summary —
job states (done / running / cached / failed / hung), aggregate
fault-classification rates merged from worker metric snapshots, the
result-cache hit ratio, and an ETA — redrawn in place on a TTY (ANSI
cursor-up) and emitted as throttled plain snapshot lines when the
stream is piped (CI logs stay readable, mirroring
:class:`~repro.flow.consumers.ProgressLine`'s non-TTY discipline).

The runner drives it through three duck-typed hooks, so any object
with the same surface can stand in (tests use a plain recorder):

* ``on_beat(wid, key, snapshot)`` — a worker heartbeat, with its
  per-job metrics snapshot (may be ``None``);
* ``on_outcome(outcome, done, total)`` — a job resolved;
* ``close()`` — campaign over; prints the final summary state.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, IO, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["CampaignDashboard"]

#: Beats older than this are no longer evidence the job is running.
_STALE_BEAT_SECONDS = 5.0


class CampaignDashboard:
    """Aggregates campaign progress into one redrawn terminal screen.

    ``registry`` is the campaign-wide :class:`MetricsRegistry` the
    runner merges worker snapshots into — by default the ambient
    registry (:func:`repro.obs.metrics.get_registry`), which is exactly
    where ``run_campaign(collect_telemetry=True)`` aggregates.  The
    dashboard reads the aggregate fault-classification and cache
    counters from it instead of keeping a parallel ledger.
    """

    def __init__(
        self,
        total_jobs: int,
        registry: Optional[MetricsRegistry] = None,
        stream: Optional[IO] = None,
        min_interval: float = 0.25,
    ):
        self.total = total_jobs
        self.registry = registry if registry is not None else get_registry()
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._t0 = time.monotonic()
        self._last_draw = float("-inf")
        self._drawn_lines = 0
        self.done = 0
        self.counts: Dict[str, int] = {}
        #: job key -> last beat monotonic time (the running set).
        self._beats: Dict[str, float] = {}
        self.n_frames = 0

    # -- runner hooks ----------------------------------------------------

    def on_beat(self, wid: int, key: str, snapshot: Optional[Dict]) -> None:
        self._beats[key] = time.monotonic()
        self._maybe_draw()

    def on_outcome(self, outcome, done: int, total: int) -> None:
        self.done = done
        self.total = total
        self.counts[outcome.status] = self.counts.get(outcome.status, 0) + 1
        self._beats.pop(outcome.job.key, None)
        self._maybe_draw(force=outcome.status not in ("cached", "ran"))

    def close(self) -> None:
        """Final frame (always drawn), then leave the cursor below it."""
        self._draw()
        if self._tty and self._drawn_lines:
            self._drawn_lines = 0  # leave the last frame on screen
        self.stream.flush()

    # -- rendering -------------------------------------------------------

    def _running(self) -> int:
        now = time.monotonic()
        stale = [
            k for k, t in self._beats.items()
            if now - t > _STALE_BEAT_SECONDS
        ]
        for k in stale:
            del self._beats[k]
        return len(self._beats)

    def _classification_rates(self) -> str:
        reg = self.registry
        family = reg.get("repro_flow_faults_classified_total")
        if family is None:
            return "faults: (no samples yet)"
        by_status: Dict[str, float] = {}
        total = 0.0
        for (status, _reason), child in family.children():
            by_status[status] = by_status.get(status, 0.0) + child.value
            total += child.value
        if not total:
            return "faults: (no samples yet)"
        parts = " ".join(
            f"{status}={int(n)} ({100.0 * n / total:.1f}%)"
            for status, n in sorted(by_status.items())
        )
        return f"faults: {parts}"

    def _cache_line(self) -> str:
        reg = self.registry
        hits = reg.value("repro_campaign_cache_requests_total", "hit")
        misses = reg.value("repro_campaign_cache_requests_total", "miss")
        asked = hits + misses
        if not asked:
            return "cache: (disabled)"
        return (
            f"cache: {int(hits)}/{int(asked)} hits "
            f"({100.0 * hits / asked:.1f}%)"
        )

    def _eta_seconds(self) -> Optional[float]:
        if not self.done or self.done >= self.total:
            return None
        elapsed = time.monotonic() - self._t0
        return elapsed / self.done * (self.total - self.done)

    def render(self) -> str:
        """The current frame as text (no cursor control)."""
        elapsed = time.monotonic() - self._t0
        ran = self.counts.get("ran", 0)
        cached = self.counts.get("cached", 0)
        failed = sum(
            n for status, n in self.counts.items()
            if status not in ("ran", "cached")
        )
        hung = self.counts.get("hung", 0)
        eta = self._eta_seconds()
        eta_text = f"{eta:.0f}s" if eta is not None else "-"
        bar_width = 24
        frac = self.done / self.total if self.total else 1.0
        filled = int(round(bar_width * frac))
        bar = "#" * filled + "-" * (bar_width - filled)
        lines = [
            f"campaign [{bar}] {self.done}/{self.total} jobs  "
            f"elapsed {elapsed:.1f}s  eta {eta_text}",
            f"jobs: ran={ran} cached={cached} failed={failed} hung={hung} "
            f"running={self._running()}",
            self._classification_rates(),
            self._cache_line(),
        ]
        return "\n".join(lines)

    def _maybe_draw(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < self.min_interval:
            return
        self._draw()

    def _draw(self) -> None:
        self._last_draw = time.monotonic()
        self.n_frames += 1
        frame = self.render()
        if self._tty:
            if self._drawn_lines:
                # Repaint in place: up N lines, then overwrite each
                # (clearing to end of line) — no full-screen clear.
                self.stream.write(f"\x1b[{self._drawn_lines}F")
            self.stream.write(
                "".join(f"\x1b[2K{line}\n" for line in frame.splitlines())
            )
            self._drawn_lines = len(frame.splitlines())
        else:
            # Piped / CI: one compact snapshot line per draw.
            flat = " | ".join(frame.splitlines())
            self.stream.write(flat + "\n")
        self.stream.flush()
