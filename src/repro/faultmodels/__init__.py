"""Fault models as first-class, registry-dispatched plug-ins.

Four models ship in-tree; registering a fifth is one subclass plus one
:func:`register_model` call (see ``docs/fault-models.md`` for the full
contract and worked examples):

========== =============================== ==============================
model      universe                        faulty semantics
========== =============================== ==============================
input      2 × every gate input pin        pin reads a constant
output     2 × every gate output           gate becomes a constant
bridging   2 × adjacent gate-output pairs  both nets drive ``F_a op F_b``
transition 2 × every gate output           self-sticky ``F∧s`` / ``F∨s``
========== =============================== ==============================

>>> from repro.faultmodels import get_model, model_names
>>> model_names()
['bridging', 'input', 'output', 'transition']
>>> get_model("transition").universe_label
'transition'
"""

from repro.faultmodels.base import (
    FaultModel,
    get_model,
    model_for_kind,
    model_names,
    rebuild_faulty,
    register_model,
    unregister_model,
)
from repro.faultmodels.bridging import WIRED_AND, WIRED_OR, BridgingModel, adjacent_pairs
from repro.faultmodels.stuckat import InputStuckAtModel, OutputStuckAtModel
from repro.faultmodels.transition import SLOW_TO_FALL, SLOW_TO_RISE, TransitionModel

#: The built-in model singletons, registered at import time.
INPUT_STUCK_AT = register_model(InputStuckAtModel())
OUTPUT_STUCK_AT = register_model(OutputStuckAtModel())
BRIDGING = register_model(BridgingModel())
TRANSITION = register_model(TransitionModel())

__all__ = [
    "FaultModel",
    "register_model",
    "unregister_model",
    "get_model",
    "model_for_kind",
    "model_names",
    "rebuild_faulty",
    "adjacent_pairs",
    "InputStuckAtModel",
    "OutputStuckAtModel",
    "BridgingModel",
    "TransitionModel",
    "INPUT_STUCK_AT",
    "OUTPUT_STUCK_AT",
    "BRIDGING",
    "TRANSITION",
    "WIRED_AND",
    "WIRED_OR",
    "SLOW_TO_RISE",
    "SLOW_TO_FALL",
]
