"""Transition (gross gate-delay) faults: slow-to-rise / slow-to-fall.

A transition fault on signal ``s`` models a defect that makes one
polarity of switch slower than the test clock: a **slow-to-rise** (STR)
output can fall normally but never completes a rising transition within
a test cycle; **slow-to-fall** (STF) is the dual.  Under the gross-delay
assumption (defect delay exceeds the remaining test length — the
standard conservative reading) this has an exact combinational
encoding as a *self-sticky* gate:

    STR:  F'(X, s) = F(X) ∧ s        (can fall; needs s=1 to stay 1)
    STF:  F'(X, s) = F(X) ∨ s        (can rise; needs s=0 to stay 0)

which slots straight into every simulator in the package: the exact
machine materializes the self-feedback netlist, the ternary/packed
engine applies a self-read blend mask, and both stay monotone in the
ternary information order, so Algorithms A/B converge exactly as for
the good circuit.

**Two-vector activation.**  In the synchronous framework a transition
fault is tested by an *activate-then-propagate* pair over CSSG edges:
first justify a stable state where ``s`` holds the pre-transition value
(``s = 0`` for STR), then apply a vector whose settling carries ``s``
across — the faulty machine holds the old value and the corrupted state
must be propagated to an output.  :meth:`activation_states` therefore
targets CSSG states with an *outgoing edge that completes the
transition*, falling back to merely-armed states; the product-BFS
differentiation then finds the launch + propagate suffix on its own.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.expr import And, Or, Var
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.faultmodels.base import FaultModel, rebuild_faulty

#: ``Fault.value`` encoding: the transition's *destination* value —
#: 1 = slow-to-rise (never completes 0→1), 0 = slow-to-fall.
SLOW_TO_RISE = 1
SLOW_TO_FALL = 0


class TransitionModel(FaultModel):
    """Slow-to-rise / slow-to-fall faults on every gate output."""

    name = "transition"
    kinds = ("transition",)
    universe_label = "transition"

    def universe(self, circuit: Circuit) -> List[Fault]:
        """Two faults (STR, STF) per gate output (primary-input buffer
        gates included), in gate declaration order."""
        faults: List[Fault] = []
        for gate in circuit.gates:
            for value in (SLOW_TO_RISE, SLOW_TO_FALL):
                faults.append(Fault("transition", gate.index, gate.index, value))
        return faults

    def describe(self, circuit: Circuit, fault: Fault) -> str:
        kind = "STR" if fault.value == SLOW_TO_RISE else "STF"
        return f"{circuit.signal_name(fault.site)} {kind}"

    # -- faulty-circuit semantics --------------------------------------

    def materialize(self, circuit: Circuit, fault: Fault) -> Circuit:
        """The self-sticky netlist: ``F ∧ s`` (STR) / ``F ∨ s`` (STF)."""
        gate = circuit.gate_at(fault.gate)
        self_var = Var(circuit.signal_name(fault.gate))
        if fault.value == SLOW_TO_RISE:
            sticky = And((gate.expr, self_var))
        else:
            sticky = Or((gate.expr, self_var))
        return rebuild_faulty(circuit, fault, {fault.gate: sticky})

    def engine_overlay(self, engine, fault: Fault, bit: int) -> None:
        """Blend the gate's result with its own current value in machine
        ``bit`` (AND-with-self for STR, OR-with-self for STF)."""
        if fault.value == SLOW_TO_RISE:
            engine.self_and[fault.gate] = engine.self_and.get(fault.gate, 0) | (
                1 << bit
            )
        else:
            engine.self_or[fault.gate] = engine.self_or.get(fault.gate, 0) | (
                1 << bit
            )

    # -- structural collapsing -----------------------------------------

    def collapse_signature(self, circuit: Circuit, fault: Fault):
        """Truth table of the sticky function over ``support ∪ {s}``.

        Sound through the same bit-identical-netlist argument as
        stuck-at collapsing — and provably the *identity* partition:
        ``F∧s ≡ F∨s`` would need ``F ≡ 0`` at ``s=0`` and ``F ≡ 1`` at
        ``s=1`` simultaneously, impossible for a function of the other
        inputs alone.  Registered anyway so a collapse-enabled flow
        treats transition universes uniformly (and cheaply: supports are
        small)."""
        from repro._bits import set_bit
        from repro.circuit.expr import eval_binary

        gate = circuit.gate_at(fault.gate)
        signals = sorted(set(gate.support) | {fault.gate})
        rows = []
        for assignment in range(1 << len(signals)):
            state = 0
            for j, sig in enumerate(signals):
                state = set_bit(state, sig, (assignment >> j) & 1)
            fn = eval_binary(gate.program, state)
            own = (state >> fault.gate) & 1
            if fault.value == SLOW_TO_RISE:
                rows.append(fn & own)
            else:
                rows.append(fn | own)
        # Tagged: sticky tables must never alias a stuck-at signature
        # (whose cross-kind sharing is intentional; see collapse_faults).
        return ("transition", gate.index, tuple(rows))

    # -- excitation ----------------------------------------------------

    def excites(self, circuit: Circuit, fault: Fault, state: int) -> bool:
        """*Armed* when the signal holds the pre-transition value (0 for
        STR): only from there can the missing transition be launched."""
        return ((state >> fault.site) & 1) != fault.value

    def activation_states(self, cssg, dist: Dict[int, int], fault: Fault) -> List[int]:
        """Prefer armed states with an outgoing CSSG edge that carries
        the signal across the slow transition — the two-vector
        activate-then-propagate launch points; fall back to all armed
        states when no edge completes the transition (the product BFS
        may still excite it transiently)."""
        site, dest = fault.site, fault.value
        armed = [
            s
            for s in cssg.states
            if s in dist and ((s >> site) & 1) != dest
        ]
        launching = [
            s
            for s in armed
            if any(
                ((t >> site) & 1) == dest for t in cssg.edges.get(s, {}).values()
            )
        ]
        chosen = launching if launching else armed
        chosen.sort(key=lambda s: (dist[s], s))
        return chosen

    # -- a-priori undetectability --------------------------------------

    def never_excited_symbolic(
        self, sym, reachable: int, stable_reachable: int, fault: Fault
    ) -> bool:
        """Sound proof over the *transient-inclusive* reachable set: the
        sticky function differs from ``F`` exactly where the gate is
        excited toward the slow polarity (``¬s ∧ F`` for STR, ``s ∧ ¬F``
        for STF).  If no reachable state — stable or mid-settling — ever
        excites that polarity, the good machine never launches the
        transition and the faulty netlist computes identically along
        every reachable trajectory."""
        from repro.bdd.manager import FALSE

        mgr = sym.mgr
        fn = sym.gate_fn[fault.gate]
        if fault.value == SLOW_TO_RISE:
            launch = mgr.apply_and(mgr.nvar(fault.gate), fn)
        else:
            launch = mgr.apply_and(mgr.var(fault.gate), fn ^ 1)
        return mgr.apply_and(reachable, launch) == FALSE

    # The explicit fallback stays the base class's conservative False:
    # a transition can be launched by a purely transient excitation that
    # a stable-states-only CSSG walk cannot rule out.
