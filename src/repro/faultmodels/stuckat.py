"""The paper's two stuck-at universes as registry models (§1, §5, §6).

* **input stuck-at** — every gate input *pin* (a (gate, source-signal)
  pair, feedback inputs included) stuck at 0 and at 1.  The pin reads a
  constant inside that one gate's evaluation; other readers of the wire
  see the true value.
* **output stuck-at** — every gate output (the primary-input buffer
  gates included) stuck at 0 and at 1.  The gate's function becomes the
  constant, and after the forced reset state the node holds the stuck
  value permanently.

The enumeration, materialization, collapse tables and excitation
predicates here are byte-identical to the pre-registry implementation —
``tests/test_faultmodels_diff.py`` pins the full-flow payloads on every
Table-1 benchmark against recorded golden digests.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

from repro._bits import set_bit
from repro.circuit.expr import Const, eval_binary
from repro.circuit.faults import Fault, substitute_signal
from repro.circuit.netlist import Circuit, Gate
from repro.faultmodels.base import FaultModel, rebuild_faulty


class _StuckAtModel(FaultModel):
    """Shared machinery of the two stuck-at universes."""

    # -- excitation ----------------------------------------------------

    def excites(self, circuit: Circuit, fault: Fault, state: int) -> bool:
        """Excited when the fault-site signal holds the opposite of the
        stuck value (paper §5.1)."""
        return ((state >> fault.site) & 1) != fault.value

    # -- structural collapsing -----------------------------------------

    def collapse_signature(
        self, circuit: Circuit, fault: Fault
    ) -> Optional[Hashable]:
        """``(gate, faulty truth table over the gate's support)`` — two
        same-gate faults with equal tables yield bit-identical faulty
        netlists, so merging them is lossless (classic ATPG collapsing:
        AND-input SA0 ≡ output SA0, inverter chains fold end to end)."""
        gate = circuit.gate_at(fault.gate)
        if gate is None:
            return None  # fault on a gateless signal (defensive): own class
        return (gate.index, self._faulty_table(gate, fault))

    def _faulty_table(self, gate: Gate, fault: Fault) -> Tuple[int, ...]:
        """Truth table of the gate's faulty function over its support."""
        support = gate.support
        rows = []
        for assignment in range(1 << len(support)):
            state = 0
            for j, sig in enumerate(support):
                state = set_bit(state, sig, (assignment >> j) & 1)
            if fault.kind == "output":
                rows.append(fault.value)
            else:
                state = set_bit(state, fault.site, fault.value)
                rows.append(eval_binary(gate.program, state))
        return tuple(rows)

    # -- a-priori undetectability --------------------------------------

    def never_excited_symbolic(
        self, sym, reachable: int, stable_reachable: int, fault: Fault
    ) -> bool:
        """Over every reachable stable state: the site already holds the
        stuck value (never excited) and the faulted gate's function still
        agrees with its output there (the fault does not destabilize the
        state) — then no stable-state divergence can ever start."""
        from repro.bdd.manager import FALSE

        mgr = sym.mgr
        site, stuck = fault.site, fault.value
        stuck_lit = mgr.var(site) if stuck else mgr.nvar(site)
        if mgr.apply_and(stable_reachable, stuck_lit ^ 1) != FALSE:
            return False  # some reachable stable state excites the site
        disagree = mgr.apply_xor(mgr.var(fault.gate), sym.faulty_gate_fn(fault))
        return mgr.apply_and(stable_reachable, disagree) == FALSE

    def never_excited_explicit(self, cssg, fault: Fault) -> bool:
        """The same check walked over the CSSG's states (a subset of the
        TCSG stable set, hence weaker — the ``use_symbolic=False``
        fallback and the differential oracle)."""
        from repro.sim import ternary

        circuit = cssg.circuit
        site, stuck = fault.site, fault.value
        for state in cssg.states:
            if ((state >> site) & 1) != stuck:
                return False
            settled = ternary.settle(
                circuit, ternary.from_binary(state, circuit.n_signals), fault
            )
            if not ternary.is_definite(settled) or ternary.to_binary(settled) != state:
                return False
        return True


class InputStuckAtModel(_StuckAtModel):
    """Single stuck-at faults on gate input pins."""

    name = "input"
    kinds = ("input",)
    universe_label = "input-stuck-at"

    def universe(self, circuit: Circuit) -> List[Fault]:
        """Two faults per gate input pin, in gate declaration order."""
        faults: List[Fault] = []
        for gate in circuit.gates:
            for src in gate.support:
                for value in (0, 1):
                    faults.append(Fault("input", gate.index, src, value))
        return faults

    def describe(self, circuit: Circuit, fault: Fault) -> str:
        return (
            f"{circuit.signal_name(fault.gate)}<-"
            f"{circuit.signal_name(fault.site)} SA{fault.value}"
        )

    def materialize(self, circuit: Circuit, fault: Fault) -> Circuit:
        """The faulted gate's expression reads a constant in place of
        the stuck source signal."""
        gate = circuit.gate_at(fault.gate)
        site_name = circuit.signal_name(fault.site)
        return rebuild_faulty(
            circuit,
            fault,
            {fault.gate: substitute_signal(gate.expr, site_name, fault.value)},
        )

    def engine_overlay(self, engine, fault: Fault, bit: int) -> None:
        """Force the pin's operand reads in machine ``bit``."""
        per_gate = engine.pin_force.setdefault(fault.gate, {})
        f0, f1 = per_gate.get(fault.site, (0, 0))
        if fault.value == 0:
            f0 |= 1 << bit
        else:
            f1 |= 1 << bit
        per_gate[fault.site] = (f0, f1)


class OutputStuckAtModel(_StuckAtModel):
    """Single stuck-at faults on gate outputs."""

    name = "output"
    kinds = ("output",)
    universe_label = "output-stuck-at"

    def universe(self, circuit: Circuit) -> List[Fault]:
        """Two faults per gate output, in gate declaration order."""
        faults: List[Fault] = []
        for gate in circuit.gates:
            for value in (0, 1):
                faults.append(Fault("output", gate.index, gate.index, value))
        return faults

    def describe(self, circuit: Circuit, fault: Fault) -> str:
        return f"{circuit.signal_name(fault.site)} SA{fault.value}"

    def materialize(self, circuit: Circuit, fault: Fault) -> Circuit:
        """The gate's function becomes the constant, and the reset state
        pre-sets the node to its stuck value (the node never held the
        fault-free reset value)."""
        return rebuild_faulty(
            circuit,
            fault,
            {fault.gate: Const(fault.value)},
            reset_overrides={fault.site: fault.value},
        )

    def engine_overlay(self, engine, fault: Fault, bit: int) -> None:
        """Force the gate's result words in machine ``bit``."""
        f0, f1 = engine.out_force.get(fault.gate, (0, 0))
        if fault.value == 0:
            f0 |= 1 << bit
        else:
            f1 |= 1 << bit
        engine.out_force[fault.gate] = (f0, f1)

    def forced_reset(self, circuit: Circuit, fault: Fault, reset_state: int) -> int:
        """Pre-set the stuck node: physically it never held the
        fault-free reset value, and lifting it from the wrong polarity
        would let Algorithm A's lub transient poison feedback loops with
        spurious Φ (see :func:`repro.sim.ternary.settle_from_reset`)."""
        return (reset_state & ~(1 << fault.site)) | (fault.value << fault.site)
