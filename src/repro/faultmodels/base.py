"""The fault-model registry: one :class:`FaultModel` per fault universe.

The paper restricts itself to single stuck-at faults on gate inputs and
outputs, but nothing in its synchronous-test framework depends on that
choice: the CSSG abstraction and the activate / justify / differentiate
search only need, per model,

* a **universe** — which :class:`~repro.circuit.faults.Fault` records
  exist for a circuit;
* **faulty-circuit semantics** — a materialized faulty netlist for the
  exact simulator plus a packed-mask overlay for the compiled engine;
* an **excitation predicate** — which stable states (or CSSG edges) can
  make the fault visible, used by the 3-phase activation step and the
  a-priori undetectability classifier.

Everything downstream (random TPG, fault grading, campaigns, reports,
serialization) treats faults as opaque records and works unchanged.

A model registers itself under a name (the value of
``AtpgOptions.fault_model`` and of the ``--model`` / ``--models`` CLI
flags) and claims one or more :attr:`Fault.kind` strings.  Dispatch
happens two ways:

* by **model name** (:func:`get_model`) when enumerating a universe;
* by **fault kind** (:func:`model_for_kind`) when an individual fault
  record needs its semantics (overlay masks, materialization,
  excitation) — so mixed-universe fault lists are well-defined.

>>> from repro.faultmodels import model_names
>>> model_names()
['bridging', 'input', 'output', 'transition']
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import ReproError


class FaultModel:
    """One fault universe and its faulty-circuit semantics.

    Subclasses override the abstract trio (:meth:`universe`,
    :meth:`describe`, :meth:`materialize`, :meth:`engine_overlay`) and
    whichever predicate hooks their semantics support; the base-class
    defaults are always *sound* (no collapsing, no cheap
    undetectability proof) so a minimal model is immediately correct,
    just not maximally fast.
    """

    #: Registry name: the ``AtpgOptions.fault_model`` / ``--model`` value.
    name: str = ""
    #: The :attr:`Fault.kind` strings this model owns.
    kinds: Tuple[str, ...] = ()
    #: Human label used in result summaries, e.g. ``"input-stuck-at"``.
    universe_label: str = ""

    # -- universe ------------------------------------------------------

    def universe(self, circuit: Circuit) -> List[Fault]:
        """Every fault of this model for ``circuit`` (stable order)."""
        raise NotImplementedError

    def describe(self, circuit: Circuit, fault: Fault) -> str:
        """Human-readable fault name (``Fault.describe`` delegates here
        for this model's kinds)."""
        raise NotImplementedError

    # -- faulty-circuit semantics --------------------------------------

    def materialize(self, circuit: Circuit, fault: Fault) -> Circuit:
        """The faulty circuit as a real netlist, signal-order preserved,
        for the exact settling simulator (:mod:`repro.core.exact_sim`)."""
        raise NotImplementedError

    def engine_overlay(self, engine, fault: Fault, bit: int) -> None:
        """Install ``fault`` as machine ``bit`` of a packed
        :class:`~repro.sim.engine.SimEngine` under construction, by
        updating the engine's mask dictionaries (``pin_force`` /
        ``out_force`` / ``self_and`` / ``self_or`` / ``bridges``).

        These mask tables are the *only* fault contract: the arena fast
        paths (:mod:`repro.sim.arena`) compile their walk and slab
        kernels from the same dictionaries, so a model implemented here
        runs on every simulation path without further work."""
        raise NotImplementedError

    def forced_reset(self, circuit: Circuit, fault: Fault, reset_state: int) -> int:
        """The reset state a tester forces on the *faulty* machine.

        Default: unchanged.  The output stuck-at model pre-sets the
        stuck node (it never held the fault-free reset value)."""
        return reset_state

    # -- structural collapsing -----------------------------------------

    def collapse_signature(
        self, circuit: Circuit, fault: Fault
    ) -> Optional[Hashable]:
        """A hashable signature such that equal signatures imply
        bit-identical faulty circuits (the soundness contract of
        :func:`repro.core.collapse.collapse_faults`).  ``None`` (the
        default) keeps the fault in its own class — always sound."""
        return None

    # -- excitation ----------------------------------------------------

    def excites(self, circuit: Circuit, fault: Fault, state: int) -> bool:
        """Whether stable ``state`` can start fault-effect divergence —
        the 3-phase *activation* condition (paper §5.1)."""
        raise NotImplementedError

    def activation_states(self, cssg, dist: Dict[int, int], fault: Fault) -> List[int]:
        """Justifiable CSSG states to activate ``fault`` from, ordered
        by justification distance from reset.  The default filters the
        CSSG node set through :meth:`excites`; edge-conditioned models
        (transition faults) override with a sharper target set."""
        states = [
            s
            for s in cssg.states
            if s in dist and self.excites(cssg.circuit, fault, s)
        ]
        states.sort(key=lambda s: (dist[s], s))
        return states

    # -- a-priori undetectability --------------------------------------

    def never_excited_symbolic(
        self, sym, reachable: int, stable_reachable: int, fault: Fault
    ) -> bool:
        """Sound sufficient proof that ``fault`` can never start a
        divergence, over the symbolic TCSG reachable sets
        (``reachable`` includes transient states, ``stable_reachable``
        only stable ones — both are rooted BDDs of ``sym.mgr``).
        Default: no proof (conservative ``False``)."""
        return False

    def never_excited_explicit(self, cssg, fault: Fault) -> bool:
        """Explicit (enumerative) counterpart of
        :meth:`never_excited_symbolic` over the CSSG's states.  Default:
        no proof (conservative ``False``)."""
        return False


def rebuild_faulty(
    circuit: Circuit,
    fault: Fault,
    replacements: Dict[int, object],
    reset_overrides: Optional[Dict[int, int]] = None,
) -> Circuit:
    """Materialization helper shared by every model: rebuild ``circuit``
    with the expressions of the gates in ``replacements`` (signal index
    → new :class:`~repro.circuit.expr.Expr`) swapped out, optionally
    overriding reset bits (signal index → value).

    Signal order, outputs and ``k`` are preserved, so states of the good
    and faulty circuits are directly comparable — the property the exact
    faulty simulator (:mod:`repro.core.exact_sim`) relies on."""
    from repro._bits import bit

    faulty = Circuit(
        f"{circuit.name}#{fault.kind}-{fault.gate}-{fault.site}-{fault.value}"
    )
    for name in circuit.input_names:
        faulty.add_input(name)
    for gate in circuit.gates:
        expr = replacements.get(gate.index, gate.expr)
        faulty.add_gate(gate.name, expr=expr)
    for name in circuit.output_names:
        faulty.mark_output(name)
    if circuit.reset_state is not None:
        reset = {s.name: bit(circuit.reset_state, s.index) for s in circuit.signals}
        for index, value in (reset_overrides or {}).items():
            reset[circuit.signal_name(index)] = value
        faulty.set_reset(reset)
    faulty.set_k(circuit.k)
    return faulty.finalize()


_MODELS: Dict[str, FaultModel] = {}
_BY_KIND: Dict[str, FaultModel] = {}


def register_model(model: FaultModel) -> FaultModel:
    """Register ``model`` under its name and claim its fault kinds.

    Re-registering a name or kind raises — universes must stay
    unambiguous for campaign cache keys to mean anything."""
    if not model.name or not model.kinds:
        raise ReproError("fault model needs a name and at least one kind")
    if model.name in _MODELS:
        raise ReproError(f"fault model {model.name!r} already registered")
    for kind in model.kinds:
        if kind in _BY_KIND:
            raise ReproError(f"fault kind {kind!r} already registered")
    _MODELS[model.name] = model
    for kind in model.kinds:
        _BY_KIND[kind] = model
    return model


def unregister_model(name: str) -> None:
    """Remove a registered model and release its kinds.

    For experiments and tests that register throwaway models; the four
    built-ins are part of the serialized-result vocabulary and should
    never be unregistered in production code."""
    model = get_model(name)
    del _MODELS[model.name]
    for kind in model.kinds:
        _BY_KIND.pop(kind, None)


def model_names() -> List[str]:
    """Registered model names, sorted (the valid ``--model`` values)."""
    return sorted(_MODELS)


def get_model(name: str) -> FaultModel:
    """The model registered under ``name``; :class:`ReproError` naming
    the registered models otherwise."""
    model = _MODELS.get(name)
    if model is None:
        raise ReproError(
            f"unknown fault model {name!r} "
            f"(registered models: {', '.join(model_names())})"
        )
    return model


def model_for_kind(kind: str) -> FaultModel:
    """The model owning ``Fault.kind == kind``; :class:`ReproError`
    naming the registered kinds otherwise."""
    model = _BY_KIND.get(kind)
    if model is None:
        raise ReproError(
            f"unknown fault kind {kind!r} "
            f"(registered kinds: {', '.join(sorted(_BY_KIND))})"
        )
    return model
