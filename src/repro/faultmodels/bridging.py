"""Bridging faults: a short between two structurally adjacent nets.

A bridging fault wires two signal nets together; the shorted node
resolves to the AND of the two driven values (**wired-AND**, the
classic CMOS ground-dominant short) or to their OR (**wired-OR**).
Formally, with ``F_a`` / ``F_b`` the two gates' functions, the faulty
circuit drives *both* nets with ``F_a ∧ F_b`` (resp. ``∨``) — every
reader of either net, feedback included, sees the wired value.

**Universe pruning.**  All-pairs bridging is quadratic and mostly
physically meaningless; the universe here is pruned to *structurally
adjacent* nets — unordered pairs of gate-output signals that feed the
same gate (they meet at a gate's input pins, where layout adjacency is
likeliest).  Pairs involving primary-input wires are excluded: input
pads are driven by the tester, and shorts at the pads are the input
stuck-at model's territory.  On a fanout-free circuit whose gates all
have a single input pin (buffer/inverter chains) no two nets ever meet,
so the universe is **empty** — the registry contract callers must
handle (``tests/test_faultmodels.py`` pins it).

**Synchronous testability.**  A bridge is excited exactly in the stable
states where the two nets disagree, so activation states are read
straight off the CSSG node set; justification and differentiation then
run unchanged against the materialized wired netlist (exact semantics)
or the packed blend overlay (ternary semantics).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.circuit.expr import And, Or
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit, Gate
from repro.faultmodels.base import FaultModel, rebuild_faulty

#: ``Fault.value`` encoding: 0 = wired-AND, 1 = wired-OR.
WIRED_AND = 0
WIRED_OR = 1


def adjacent_pairs(circuit: Circuit) -> List[Tuple[int, int]]:
    """The pruned bridging site list: unordered pairs ``(a, b)`` with
    ``a < b`` of gate-output signals that appear together in some gate's
    support, in first-seen order."""
    n_inputs = circuit.n_inputs
    seen: Set[Tuple[int, int]] = set()
    pairs: List[Tuple[int, int]] = []
    for gate in circuit.gates:
        support = [s for s in gate.support if s >= n_inputs]
        for i, a in enumerate(support):
            for b in support[i + 1 :]:
                pair = (a, b) if a < b else (b, a)
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
    return pairs


class BridgingModel(FaultModel):
    """Wired-AND / wired-OR shorts between structurally adjacent nets."""

    name = "bridging"
    kinds = ("bridging",)
    universe_label = "bridging"

    def universe(self, circuit: Circuit) -> List[Fault]:
        """Two faults (wired-AND, wired-OR) per adjacent net pair;
        empty when no two gate outputs meet at a common gate."""
        faults: List[Fault] = []
        for a, b in adjacent_pairs(circuit):
            for value in (WIRED_AND, WIRED_OR):
                faults.append(Fault("bridging", a, b, value))
        return faults

    def describe(self, circuit: Circuit, fault: Fault) -> str:
        op = "AND" if fault.value == WIRED_AND else "OR"
        return (
            f"{circuit.signal_name(fault.gate)}~"
            f"{circuit.signal_name(fault.site)} wired-{op}"
        )

    # -- faulty-circuit semantics --------------------------------------

    def materialize(self, circuit: Circuit, fault: Fault) -> Circuit:
        """Both bridged gates drive the wired function ``F_a op F_b``
        (each still evaluated over the true wire values of its own
        support)."""
        ga = circuit.gate_at(fault.gate)
        gb = circuit.gate_at(fault.site)
        ctor = And if fault.value == WIRED_AND else Or
        wired = ctor((ga.expr, gb.expr))
        return rebuild_faulty(
            circuit, fault, {fault.gate: wired, fault.site: wired}
        )

    def engine_overlay(self, engine, fault: Fault, bit: int) -> None:
        """Blend each bridged gate's result with its partner's function
        in machine ``bit`` (see ``_codegen_ternary``'s bridge blocks)."""
        for g, partner in ((fault.gate, fault.site), (fault.site, fault.gate)):
            per_gate: Dict[int, Tuple[int, int]] = engine.bridges.setdefault(g, {})
            ma, mo = per_gate.get(partner, (0, 0))
            if fault.value == WIRED_AND:
                ma |= 1 << bit
            else:
                mo |= 1 << bit
            per_gate[partner] = (ma, mo)

    # -- excitation ----------------------------------------------------

    def excites(self, circuit: Circuit, fault: Fault, state: int) -> bool:
        """Excited when the two nets disagree (in a stable state the
        wire values equal the driven values, so ``a ≠ b ⟺ F_a ≠ F_b``)."""
        return ((state >> fault.gate) & 1) != ((state >> fault.site) & 1)

    # -- a-priori undetectability --------------------------------------

    def never_excited_symbolic(
        self, sym, reachable: int, stable_reachable: int, fault: Fault
    ) -> bool:
        """Sound proof over the *transient-inclusive* reachable set: the
        wired function differs from a driver exactly where
        ``F_a ⊕ F_b``; if no reachable state (stable or mid-settling)
        ever has the drivers disagreeing, the faulty netlist computes
        identically to the good one along every reachable trajectory."""
        from repro.bdd.manager import FALSE

        mgr = sym.mgr
        disagree = mgr.apply_xor(
            sym.gate_fn[fault.gate], sym.gate_fn[fault.site]
        )
        return mgr.apply_and(reachable, disagree) == FALSE

    # The explicit fallback stays the base class's conservative False:
    # CSSG states are stable-only, and a bridge can be excited by a
    # purely transient driver disagreement mid-settling, which an
    # enumerative stable-state walk cannot rule out.
