"""Simulation engines.

* :mod:`repro.sim.engine` — the compiled, event-driven settle core every
  workload shares: per-circuit code generation, fanout-driven worklist
  Algorithm A/B, pluggable fault overlays (none / scalar / packed /
  chunked).
* :mod:`repro.sim.ternary` — scalar ternary simulation (Eichelberger's
  Algorithms A and B) with optional single-fault injection; this is the
  conservative race/oscillation detector of paper §5.4.  Thin adapter
  over the engine.
* :mod:`repro.sim.arena` — the flat-buffer fast paths: a compiled
  generator walk kernel (state held in generator locals, one ``send``
  per test cycle) and a numpy ``uint64`` slab kernel (levelized
  vectorized settling of very wide fault universes).
* :mod:`repro.sim.batch` — word-parallel ternary simulation of many
  faulty machines at once (parallel fault simulation, Seshu-style);
  large universes ride the arena slab.  Thin adapter over the engine
  and arena kernels.
* :mod:`repro.sim.legacy` — the seed's sweep-based reference
  implementations, kept exclusively as the parity/benchmark oracle.
"""

from repro.sim.ternary import (
    TernaryState,
    from_binary,
    is_definite,
    to_binary,
    settle,
    apply_pattern,
    apply_pattern_settled,
    settle_from_reset,
    detects,
    phi_signals,
)
from repro.sim.arena import ArenaKernel, ArenaWalk, SlabKernel, arena_for, slab_for
from repro.sim.batch import ChunkedFaultSim, FaultBatch
from repro.sim.engine import SimEngine, compiled, engine_for

__all__ = [
    "TernaryState",
    "from_binary",
    "is_definite",
    "to_binary",
    "settle",
    "apply_pattern",
    "apply_pattern_settled",
    "settle_from_reset",
    "detects",
    "phi_signals",
    "ArenaKernel",
    "ArenaWalk",
    "SlabKernel",
    "arena_for",
    "slab_for",
    "FaultBatch",
    "ChunkedFaultSim",
    "SimEngine",
    "compiled",
    "engine_for",
]
