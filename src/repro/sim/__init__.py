"""Simulation engines.

* :mod:`repro.sim.ternary` — scalar ternary simulation (Eichelberger's
  Algorithms A and B) with optional single-fault injection; this is the
  conservative race/oscillation detector of paper §5.4.
* :mod:`repro.sim.batch` — word-parallel ternary simulation of many
  faulty machines at once (parallel fault simulation, Seshu-style).
"""

from repro.sim.ternary import (
    TernaryState,
    from_binary,
    is_definite,
    to_binary,
    settle,
    apply_pattern,
    settle_from_reset,
    detects,
    phi_signals,
)
from repro.sim.batch import FaultBatch

__all__ = [
    "TernaryState",
    "from_binary",
    "is_definite",
    "to_binary",
    "settle",
    "apply_pattern",
    "settle_from_reset",
    "detects",
    "phi_signals",
    "FaultBatch",
]
