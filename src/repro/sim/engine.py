"""The compiled, event-driven simulation engine.

Every workload in this package — scalar ternary settling, word-parallel
fault simulation, exact settling exploration, CSSG construction, the
three-phase generator, the test-set auditor — ultimately runs the same
computation: Eichelberger's Algorithm A/B fixpoint (or, for the exact
explorer, excited-gate enumeration) over one circuit.  The seed tree
implemented that loop three separate times, each as a full-circuit sweep
with per-gate closure dispatch through :func:`repro.circuit.expr.eval_ternary`.
This module replaces all of them with one compiled core:

**Compilation** (once per circuit).  Each gate's postfix program is
translated to a small Python function evaluating the ternary ``(l, h)``
pair straight off per-signal word lists — no AST walk, no stack
interpreter, no ``getv`` closure per operand.  A companion whole-circuit
function enumerates excited gates in the binary domain for the exact
settling explorer.  The circuit additionally provides cached fanout
lists and a levelized schedule (:meth:`Circuit.fanouts`,
:meth:`Circuit.levels`) that the engine consumes.

**Event-driven settling.**  Algorithms A and B are run with a worklist:
only gates whose fan-in changed are re-evaluated, seeded either from the
dirtied inputs/fault sites (when the caller starts from a settled state)
or from every gate (arbitrary states).  Both fixpoints are invariant
under evaluation order (the ternary operators are monotone on a finite
lattice, so chaotic iteration converges to the same least/greatest
fixpoint as the seed's sweeps), which makes the event-driven results
bit-identical to the original implementation — a property
``tests/test_sim_cross.py`` checks against the preserved reference in
:mod:`repro.sim.legacy`.

**Fault overlays.**  One engine instance pairs the compiled circuit with
a fault-injection overlay:

* *none* — plain good-machine simulation;
* *scalar fault* — one fault, as used by per-fault ternary machines;
  implemented as a width-1 packed overlay, which the seed test suite
  already established is bit-for-bit the scalar semantics;
* *packed masks* — W faults simulated in parallel, one machine per bit
  of a Python int (paper §5.4), with the per-fault masks baked into the
  affected gates' compiled code;
* *chunked* — a large fault universe split into fixed-width words (see
  :class:`repro.sim.batch.ChunkedFaultSim`), trading single-word
  bignum arithmetic for cache-sized chunks.

Four mask families cover the registered fault models
(:mod:`repro.faultmodels`); each is the identity outside its machine
mask, so one word freely mixes models:

* **pin forces** (input stuck-at) — the faulted gate's operand reads
  are clamped, ``(l|f0)&~f1`` / ``(h|f1)&~f0``;
* **output forces** (output stuck-at) — the gate's result words are
  clamped the same way;
* **self blends** (transition faults) — the result is AND-ed
  (slow-to-rise) or OR-ed (slow-to-fall) with the gate's *own current
  value*, the self-sticky encoding of a gross delay fault; the engine
  widens its fanout so the self-dependency re-triggers evaluation;
* **bridge blends** (bridging faults) — the result is AND/OR-blended
  with the *partner gate's function*, evaluated inline over the
  partner's true operands; both bridged gates carry the blend and the
  fanout is widened with the partner's support.

A model outside the inlined stuck-at pair installs its masks through
:meth:`repro.faultmodels.FaultModel.engine_overlay`; every downstream
workload (random TPG, fault grading, the three-phase machines, the
auditor) picks the new kind up unchanged.

Engines are cached per ``(circuit, faults, width)`` so repeated
construction (per-fault machines, per-test auditing batches) reuses the
compiled code.  Only gates actually touched by an overlay are recompiled;
the rest share the circuit's clean functions.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._bits import mask
from repro.circuit.expr import (
    OP_AND,
    OP_CONST,
    OP_NOT,
    OP_OR,
    OP_VAR,
    OP_XOR,
    Program,
)
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import ReproError, SimulationError

GateFn = Callable[[List[int], List[int]], Tuple[int, int]]

# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _emit_eval(
    lines: List[str],
    indent: str,
    tag: str,
    program: Program,
    ones: int,
    ref: Callable[[int], Tuple[str, str]],
    lit: Callable[[int], str],
    pin_force: Optional[Dict[int, Tuple[int, int]]] = None,
    out_force: Optional[Tuple[int, int]] = None,
    self_ref: Optional[Tuple[str, str]] = None,
    self_and: int = 0,
    self_or: int = 0,
    bridges: Optional[List[Tuple[Program, int, int]]] = None,
) -> Tuple[str, str]:
    """Append the straight-line evaluation of one gate to ``lines``;
    returns the final ``(l, h)`` result expressions.

    This is the single source of truth for the ternary operator and
    overlay-mask formulas: the per-gate function compiler below and the
    arena kernels (:mod:`repro.sim.arena`) both emit through it, so the
    bignum, generator-walk and numpy-slab paths cannot drift apart.
    ``ref(sig)`` names a signal's (l, h) operand pair in the target
    kernel's vocabulary (list reads, locals, slab rows); ``lit(mask)``
    renders a per-machine mask constant (an int literal, or an interned
    word-array name for the slab).  Overlay hooks, each a per-machine
    mask over the word's bits:

    * ``pin_force[site] = (f0, f1)`` bakes per-pin stuck-at masks into
      the operand reads;
    * ``bridges`` is a list of ``(partner_program, and_mask, or_mask)``
      blocks: the partner's (clean) function is evaluated inline and the
      result blended in — the ternary AND for machines in ``and_mask``
      (wired-AND bridging), the OR for ``or_mask`` machines;
    * ``self_and`` / ``self_or`` blend the gate's **own current value**
      (``self_ref``) into the result — the self-sticky encoding of
      slow-to-rise / slow-to-fall transition faults;
    * ``out_force`` forces the result words (output stuck-at).

    Every blend is the identity outside its mask, and each machine bit
    carries at most one fault, so the application order is immaterial.
    Temporaries are introduced per operator, so the generated code is
    linear in the program length (shared subterms are never
    re-expanded).
    """
    counter = [0]

    def fresh() -> Tuple[str, str]:
        a, b = f"{tag}t{counter[0]}", f"{tag}u{counter[0]}"
        counter[0] += 1
        return a, b

    def emit(prog: Program, forces) -> Tuple[str, str]:
        """Append the evaluation of ``prog`` to ``lines``; returns the
        (l, h) result expressions."""
        stack: List[Tuple[str, str]] = []
        for op, arg in prog:
            if op == OP_VAR:
                force = forces.get(arg) if forces else None
                rl, rh = ref(arg)
                if force is None:
                    stack.append((rl, rh))
                else:
                    f0, f1 = force
                    stack.append(
                        (
                            f"(({rl}|{lit(f0)})&{lit(ones & ~f1)})",
                            f"(({rh}|{lit(f1)})&{lit(ones & ~f0)})",
                        )
                    )
            elif op == OP_NOT:
                l, h = stack.pop()
                stack.append((h, l))
            elif op == OP_AND:
                l2, h2 = stack.pop()
                l1, h1 = stack[-1]
                a, b = fresh()
                lines.append(f"{indent}{a} = {l1}|{l2}; {b} = {h1}&{h2}")
                stack[-1] = (a, b)
            elif op == OP_OR:
                l2, h2 = stack.pop()
                l1, h1 = stack[-1]
                a, b = fresh()
                lines.append(f"{indent}{a} = {l1}&{l2}; {b} = {h1}|{h2}")
                stack[-1] = (a, b)
            elif op == OP_XOR:
                l2, h2 = stack.pop()
                l1, h1 = stack[-1]
                a, b = fresh()
                lines.append(
                    f"{indent}{a} = ({l1}&{l2})|({h1}&{h2}); "
                    f"{b} = ({l1}&{h2})|({h1}&{l2})"
                )
                stack[-1] = (a, b)
            else:  # OP_CONST
                stack.append(
                    (lit(0 if arg else ones), lit(ones if arg else 0))
                )
        return stack.pop()

    l, h = emit(program, pin_force)
    for partner_program, and_mask, or_mask in bridges or ():
        # Masked blend of the partner's driven value: per machine,
        # ternary AND for and_mask bits, ternary OR for or_mask bits,
        # identity elsewhere (the masks never share a bit).
        lb, hb = emit(partner_program, None)
        a, b = fresh()
        lines.append(
            f"{indent}{a} = (({l})|({lb}&{lit(and_mask)}))"
            f"&(({lb})|{lit(ones & ~or_mask)}); "
            f"{b} = (({h})&(({hb})|{lit(ones & ~and_mask)}))"
            f"|(({hb})&{lit(or_mask)})"
        )
        l, h = a, b
    if self_and or self_or:
        sl, sh = self_ref
        a, b = fresh()
        lines.append(
            f"{indent}{a} = (({l})|({sl}&{lit(self_and)}))"
            f"&({sl}|{lit(ones & ~self_or)}); "
            f"{b} = (({h})&({sh}|{lit(ones & ~self_and)}))"
            f"|({sh}&{lit(self_or)})"
        )
        l, h = a, b
    if out_force is not None:
        f0, f1 = out_force
        a, b = fresh()
        lines.append(
            f"{indent}{a} = ({l}|{lit(f0)})&{lit(ones & ~f1)}; "
            f"{b} = ({h}|{lit(f1)})&{lit(ones & ~f0)}"
        )
        l, h = a, b
    return l, h


def _codegen_ternary(
    name: str,
    program: Program,
    ones: int,
    pin_force: Optional[Dict[int, Tuple[int, int]]] = None,
    out_force: Optional[Tuple[int, int]] = None,
    gate_index: Optional[int] = None,
    self_and: int = 0,
    self_or: int = 0,
    bridges: Optional[List[Tuple[Program, int, int]]] = None,
) -> str:
    """Source of one compiled gate evaluator ``name(L, H) -> (l, h)``
    reading per-signal word lists; see :func:`_emit_eval` for the
    overlay-mask vocabulary."""
    lines = [f"def {name}(L, H):"]
    l, h = _emit_eval(
        lines,
        "    ",
        "",
        program,
        ones,
        ref=lambda arg: (f"L[{arg}]", f"H[{arg}]"),
        lit=str,
        pin_force=pin_force,
        out_force=out_force,
        self_ref=(f"L[{gate_index}]", f"H[{gate_index}]"),
        self_and=self_and,
        self_or=self_or,
        bridges=bridges,
    )
    lines.append(f"    return {l}, {h}")
    return "\n".join(lines)


def _codegen_excited(circuit: Circuit) -> str:
    """Source of ``excited(state) -> [gate signal indices]``.

    One straight-line block per gate, binary domain, no per-gate call
    overhead — the hot inner loop of the exact settling explorer."""
    lines = ["def excited(state):", "    ex = []", "    ap = ex.append"]
    for gate in circuit.gates:
        stack: List[str] = []
        tmp = 0
        body: List[str] = []
        for op, arg in gate.program:
            if op == OP_VAR:
                stack.append(f"((state>>{arg})&1)")
            elif op == OP_NOT:
                a = f"b{gate.index}_{tmp}"
                tmp += 1
                body.append(f"    {a} = {stack.pop()}^1")
                stack.append(a)
            elif op in (OP_AND, OP_OR, OP_XOR):
                sym = {OP_AND: "&", OP_OR: "|", OP_XOR: "^"}[op]
                x = stack.pop()
                y = stack.pop()
                a = f"b{gate.index}_{tmp}"
                tmp += 1
                body.append(f"    {a} = {y}{sym}{x}")
                stack.append(a)
            else:  # OP_CONST
                stack.append(str(arg))
        body.append(
            f"    if {stack.pop()} != ((state>>{gate.index})&1): ap({gate.index})"
        )
        lines.extend(body)
    lines.append("    return ex")
    return "\n".join(lines)


def _exec(src: str, filename: str) -> Dict[str, object]:
    ns: Dict[str, object] = {}
    exec(compile(src, filename, "exec"), ns)  # noqa: S102 - trusted codegen
    return ns


# ---------------------------------------------------------------------------
# Per-circuit compilation cache
# ---------------------------------------------------------------------------


class CompiledCircuit:
    """Everything the engine precomputes once per circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.n_inputs = circuit.n_inputs
        self.n_signals = circuit.n_signals
        self.gate_index: Tuple[int, ...] = tuple(g.index for g in circuit.gates)
        self.fanout: Tuple[Tuple[int, ...], ...] = circuit.fanouts()
        self.order: Tuple[int, ...] = circuit.levels()
        #: positions of gates whose program embeds a constant — their
        #: compiled form bakes the all-ones word and must be regenerated
        #: for other widths.
        self.const_positions: Tuple[int, ...] = tuple(
            pos
            for pos, g in enumerate(circuit.gates)
            if any(op == OP_CONST for op, _ in g.program)
        )
        src = "\n".join(
            _codegen_ternary(f"g{pos}", g.program, 1)
            for pos, g in enumerate(circuit.gates)
        )
        ns = _exec(src, f"<engine:{circuit.name}>")
        #: clean width-1 evaluators, one per gate position.
        self.clean_fns: Tuple[GateFn, ...] = tuple(
            ns[f"g{pos}"] for pos in range(len(circuit.gates))
        )
        exc_ns = _exec(_codegen_excited(circuit), f"<excited:{circuit.name}>")
        #: ``excited(state) -> [gate indices]`` in the binary domain.
        self.excited_signals: Callable[[int], List[int]] = exc_ns["excited"]
        self._engines: "OrderedDict[Tuple[Tuple[Fault, ...], int], SimEngine]" = (
            OrderedDict()
        )


def compiled(circuit: Circuit) -> CompiledCircuit:
    """The (cached) compiled form of ``circuit``."""
    cc = getattr(circuit, "_compiled", None)
    if cc is None:
        cc = CompiledCircuit(circuit)
        circuit._compiled = cc
    return cc


#: Engine-cache capacity per circuit.  Reuse-heavy callers (per-fault
#: ternary machines iterating a universe, the auditor rebuilding the
#: same-universe batch per test) fit comfortably; one-shot overlays with
#: ever-changing fault subsets (the ATPG loop's shrinking fault-sim
#: batches) just cycle through and evict, bounding memory.
_ENGINE_CACHE_SIZE = 128


def engine_for(
    circuit: Circuit,
    faults: Sequence[Fault] = (),
    width: Optional[int] = None,
) -> "SimEngine":
    """The (cached) engine for ``circuit`` with a fault overlay.

    ``width`` defaults to ``max(1, len(faults))``: a scalar good-machine
    engine for no faults, one machine per fault otherwise.  Pass
    ``width=0`` explicitly for a degenerate empty batch.  The per-circuit
    cache is LRU-bounded to ``_ENGINE_CACHE_SIZE`` overlays.
    """
    cc = compiled(circuit)
    faults = tuple(faults)
    if width is None:
        width = max(1, len(faults))
    key = (faults, width)
    engine = cc._engines.get(key)
    if engine is None:
        engine = SimEngine(circuit, faults, width)
        cc._engines[key] = engine
        if len(cc._engines) > _ENGINE_CACHE_SIZE:
            cc._engines.popitem(last=False)
    else:
        cc._engines.move_to_end(key)
    return engine


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class SimEngine:
    """One circuit + one fault overlay, at one word width.

    State is a pair of per-signal word lists ``(L, H)``: bit *j* of
    ``L[i]`` means "signal *i* of machine *j* can be 0", likewise ``H``
    for "can be 1" — the exact encoding of the seed simulators.  All
    methods mutate the lists in place.
    """

    def __init__(self, circuit: Circuit, faults: Sequence[Fault] = (), width: int = 1):
        self.circuit = circuit
        self.cc = cc = compiled(circuit)
        self.faults = tuple(faults)
        self.width = width
        self.ones = mask(width)
        # Overlay mask tables, filled per fault (one machine bit each).
        # Registered fault models write these through their
        # ``engine_overlay`` hook; the two stuck-at kinds are inlined as
        # the historical fast path.
        #: pin_force[gate signal index][site] = (force-0 mask, force-1 mask)
        self.pin_force: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: out_force[gate signal index] = (force-0 mask, force-1 mask)
        self.out_force: Dict[int, Tuple[int, int]] = {}
        #: self_and/self_or[gate signal index] = machine mask whose result
        #: is blended with the gate's own current value (transition faults).
        self.self_and: Dict[int, int] = {}
        self.self_or: Dict[int, int] = {}
        #: bridges[gate signal index][partner signal index] =
        #: (wired-AND mask, wired-OR mask) — the gate's result is blended
        #: with the partner gate's (clean) function for those machines.
        self.bridges: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for j, fault in enumerate(self.faults):
            if fault.kind == "input":
                per_gate = self.pin_force.setdefault(fault.gate, {})
                f0, f1 = per_gate.get(fault.site, (0, 0))
                if fault.value == 0:
                    f0 |= 1 << j
                else:
                    f1 |= 1 << j
                per_gate[fault.site] = (f0, f1)
            elif fault.kind == "output":
                f0, f1 = self.out_force.get(fault.gate, (0, 0))
                if fault.value == 0:
                    f0 |= 1 << j
                else:
                    f1 |= 1 << j
                self.out_force[fault.gate] = (f0, f1)
            else:
                from repro.faultmodels import model_for_kind

                try:
                    model = model_for_kind(fault.kind)
                except ReproError as exc:
                    raise SimulationError(str(exc)) from None
                model.engine_overlay(self, fault, j)
        # Compiled evaluators: share the clean width-1 functions wherever
        # possible, regenerate only overlay-touched and const-bearing gates.
        fns = list(cc.clean_fns)
        regen = set(cc.const_positions) if self.ones != 1 else set()
        pos_of = {gi: pos for pos, gi in enumerate(cc.gate_index)}
        gate_at = {g.index: g for g in circuit.gates}
        for gi in (
            set(self.pin_force)
            | set(self.out_force)
            | set(self.self_and)
            | set(self.self_or)
            | set(self.bridges)
        ):
            regen.add(pos_of[gi])
        if regen:
            gates = circuit.gates
            src = "\n".join(
                _codegen_ternary(
                    f"g{pos}",
                    gates[pos].program,
                    self.ones,
                    self.pin_force.get(cc.gate_index[pos]),
                    self.out_force.get(cc.gate_index[pos]),
                    gate_index=cc.gate_index[pos],
                    self_and=self.self_and.get(cc.gate_index[pos], 0),
                    self_or=self.self_or.get(cc.gate_index[pos], 0),
                    bridges=[
                        (gate_at[partner].program, ma, mo)
                        for partner, (ma, mo) in sorted(
                            self.bridges.get(cc.gate_index[pos], {}).items()
                        )
                    ],
                )
                for pos in sorted(regen)
            )
            ns = _exec(src, f"<engine:{circuit.name}:{len(self.faults)}f>")
            for pos in regen:
                fns[pos] = ns[f"g{pos}"]
        self.fns: Tuple[GateFn, ...] = tuple(fns)
        # Overlay-induced extra dependencies: a self-sticky gate reads
        # its own output, a bridged gate reads its partner's support.
        # The worklist must re-examine those gates when the new sources
        # change, so such engines carry a widened per-engine fanout.
        extra: Dict[int, set] = {}
        for gi in set(self.self_and) | set(self.self_or):
            extra.setdefault(gi, set()).add(pos_of[gi])
        for gi, partners in self.bridges.items():
            for partner in partners:
                for src_sig in gate_at[partner].support:
                    extra.setdefault(src_sig, set()).add(pos_of[gi])
        if extra:
            fanout = list(cc.fanout)
            for sig, positions in extra.items():
                fanout[sig] = tuple(sorted(set(fanout[sig]) | positions))
            self.fanout: Tuple[Tuple[int, ...], ...] = tuple(fanout)
        else:
            self.fanout = cc.fanout
        # Scratch per-position eval caches, reused across settle calls.
        n_gates = len(circuit.gates)
        self._evl = [0] * n_gates
        self._evh = [0] * n_gates

    # -- the one settle loop --------------------------------------------

    def settle(
        self,
        L: List[int],
        H: List[int],
        dirty: Optional[Sequence[int]] = None,
    ) -> None:
        """Algorithm A then Algorithm B, event-driven, in place.

        ``dirty`` lists the signal indices whose words were rewritten
        since the state last settled **under this same engine** — then
        only their transitive fanout is re-examined.  Pass None (the
        default) for arbitrary states: every gate is seeded.
        """
        cc = self.cc
        fns = self.fns
        fanout = self.fanout  # cc.fanout unless an overlay widened it
        gate_index = cc.gate_index
        n_gates = len(gate_index)
        evl = self._evl
        evh = self._evh
        if dirty is None:
            seeds = cc.order
            for pos in range(n_gates):
                gi = gate_index[pos]
                evl[pos] = L[gi]
                evh[pos] = H[gi]
        else:
            seen = set()
            seeds = []
            for s in dirty:
                for pos in fanout[s]:
                    if pos not in seen:
                        seen.add(pos)
                        seeds.append(pos)
            seeds.sort()
            for pos in seeds:
                gi = gate_index[pos]
                evl[pos] = L[gi]
                evh[pos] = H[gi]
        if not seeds and dirty is not None:
            return
        changes_cap = 2 * n_gates * max(1, self.width) + 4

        # Algorithm A: value <- lub(value, eval), to the least fixpoint.
        pending = deque(seeds)
        inq = bytearray(n_gates)
        ever = bytearray(n_gates)
        touched = list(seeds)
        for pos in seeds:
            inq[pos] = 1
            ever[pos] = 1
        changes = 0
        while pending:
            pos = pending.popleft()
            inq[pos] = 0
            el, eh = fns[pos](L, H)
            evl[pos] = el
            evh[pos] = eh
            gi = gate_index[pos]
            nl = L[gi] | el
            nh = H[gi] | eh
            if nl != L[gi] or nh != H[gi]:
                changes += 1
                if changes > changes_cap:
                    raise SimulationError(
                        "Algorithm A failed to converge (internal bug)"
                    )
                L[gi] = nl
                H[gi] = nh
                for q in fanout[gi]:
                    if not inq[q]:
                        inq[q] = 1
                        pending.append(q)
                        if not ever[q]:
                            ever[q] = 1
                            touched.append(q)

        # Algorithm B: value <- eval, monotone decreasing to the greatest
        # fixpoint below the Algorithm A result.  Seeded from the cached
        # evaluations of every gate phase A visited: a gate whose eval
        # already equals its value — in particular any gate untouched by
        # phase A when the caller started from a settled state — cannot
        # move until a fan-in does.
        touched.sort()
        pending = deque(
            pos
            for pos in touched
            if evl[pos] != L[gate_index[pos]] or evh[pos] != H[gate_index[pos]]
        )
        for pos in pending:
            inq[pos] = 1
        changes = 0
        while pending:
            pos = pending.popleft()
            inq[pos] = 0
            el, eh = fns[pos](L, H)
            gi = gate_index[pos]
            if el != L[gi] or eh != H[gi]:
                changes += 1
                if changes > changes_cap:
                    raise SimulationError(
                        "Algorithm B failed to converge (internal bug)"
                    )
                L[gi] = el
                H[gi] = eh
                for q in fanout[gi]:
                    if not inq[q]:
                        inq[q] = 1
                        pending.append(q)

    # -- convenience entry points ---------------------------------------

    def apply_pattern(self, L: List[int], H: List[int], pattern: int) -> None:
        """One synchronous test cycle on a settled state: drive every
        input to its definite pattern bit and settle the fanout of the
        inputs that actually changed."""
        ones = self.ones
        dirty = []
        for i in range(self.cc.n_inputs):
            if (pattern >> i) & 1:
                nl, nh = 0, ones
            else:
                nl, nh = ones, 0
            if L[i] != nl or H[i] != nh:
                L[i] = nl
                H[i] = nh
                dirty.append(i)
        self.settle(L, H, dirty)

    def broadcast(self, state: int) -> Tuple[List[int], List[int]]:
        """Per-signal word lists replicating a binary state across all
        machines of this engine's width."""
        ones = self.ones
        L = [(0 if (state >> i) & 1 else ones) for i in range(self.cc.n_signals)]
        H = [(ones if (state >> i) & 1 else 0) for i in range(self.cc.n_signals)]
        return L, H
