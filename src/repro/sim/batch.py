"""Word-parallel ternary fault simulation (paper §5.4).

Random TPG and fault simulation both need "the same input sequence run on
many faulty machines".  Parallel simulation packs one faulty machine per
bit of a Python int: signal *i* of the batch holds a pair of W-bit words
``(L[i], H[i])`` with the same (can-be-0, can-be-1) encoding as
:mod:`repro.sim.ternary`.  Because Python ints are arbitrary precision,
one batch simulates the entire fault universe at once.

Fault injection is compiled into per-gate masks:

* an *input* fault ``(g, site, v)`` owns bit *j*: when gate ``g`` reads
  ``site``, bit *j* of the operand words is forced to ``v``;
* an *output* fault forces bit *j* of gate ``g``'s evaluation result.

The settle loop is the batched Algorithm A / Algorithm B of the scalar
simulator; a ``FaultBatch`` of width 1 is bit-for-bit equivalent to the
scalar engine (a property the test suite checks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._bits import bit, mask
from repro.circuit.expr import eval_ternary
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError

BatchState = Tuple[Tuple[int, ...], Tuple[int, ...]]


class FaultBatch:
    """Simulates one circuit under W simultaneous single-fault hypotheses.

    Usage::

        batch = FaultBatch(circuit, faults)
        state = batch.reset_and_settle()
        state = batch.apply(state, pattern)
        detected |= batch.observe(state, good_state)

    ``observe`` returns a W-bit mask of machines whose outputs *definitely*
    differ from the good circuit.
    """

    def __init__(self, circuit: Circuit, faults: Sequence[Fault]):
        self.circuit = circuit
        self.faults = list(faults)
        self.width = len(self.faults)
        self.ones = mask(self.width) if self.width else 0
        # pin_force[gate_index][site] = (force0, force1) masks
        self.pin_force: Dict[int, Dict[int, Tuple[int, int]]] = {}
        # out_force[gate_index] = (force0, force1) masks
        self.out_force: Dict[int, Tuple[int, int]] = {}
        for j, fault in enumerate(self.faults):
            if fault.kind == "input":
                per_gate = self.pin_force.setdefault(fault.gate, {})
                f0, f1 = per_gate.get(fault.site, (0, 0))
                if fault.value == 0:
                    f0 |= 1 << j
                else:
                    f1 |= 1 << j
                per_gate[fault.site] = (f0, f1)
            elif fault.kind == "output":
                f0, f1 = self.out_force.get(fault.gate, (0, 0))
                if fault.value == 0:
                    f0 |= 1 << j
                else:
                    f1 |= 1 << j
                self.out_force[fault.gate] = (f0, f1)
            else:
                raise SimulationError(f"unknown fault kind {fault.kind!r}")

    # -- state helpers ---------------------------------------------------

    def broadcast(self, state: int) -> BatchState:
        """Replicate a binary circuit state across all W machines."""
        n = self.circuit.n_signals
        ones = self.ones
        low = tuple(0 if bit(state, i) else ones for i in range(n))
        high = tuple(ones if bit(state, i) else 0 for i in range(n))
        return (low, high)

    def _gate_eval(self, gate, low: List[int], high: List[int]) -> Tuple[int, int]:
        overrides = self.pin_force.get(gate.index)
        if overrides:

            def getv(sig: int) -> Tuple[int, int]:
                l, h = low[sig], high[sig]
                force = overrides.get(sig)
                if force is not None:
                    f0, f1 = force
                    l = (l | f0) & ~f1
                    h = (h | f1) & ~f0
                return (l, h)

        else:

            def getv(sig: int) -> Tuple[int, int]:
                return (low[sig], high[sig])

        el, eh = eval_ternary(gate.program, getv, self.ones)
        out = self.out_force.get(gate.index)
        if out is not None:
            f0, f1 = out
            el = (el | f0) & ~f1
            eh = (eh | f1) & ~f0
        return el, eh

    def settle(self, state: BatchState) -> BatchState:
        """Batched Algorithm A then Algorithm B with inputs held."""
        low = list(state[0])
        high = list(state[1])
        gates = self.circuit.gates
        guard = 2 * self.circuit.n_signals * max(1, self.width) + 4
        for _ in range(guard):
            changed = False
            for gate in gates:
                el, eh = self._gate_eval(gate, low, high)
                gi = gate.index
                nl = low[gi] | el
                nh = high[gi] | eh
                if nl != low[gi] or nh != high[gi]:
                    low[gi] = nl
                    high[gi] = nh
                    changed = True
            if not changed:
                break
        else:
            raise SimulationError("batched Algorithm A failed to converge")
        for _ in range(guard):
            changed = False
            for gate in gates:
                el, eh = self._gate_eval(gate, low, high)
                gi = gate.index
                if el != low[gi] or eh != high[gi]:
                    low[gi] = el
                    high[gi] = eh
                    changed = True
            if not changed:
                break
        else:
            raise SimulationError("batched Algorithm B failed to converge")
        return (tuple(low), tuple(high))

    def reset_and_settle(self, reset_state: Optional[int] = None) -> BatchState:
        """Force the reset state on every machine and settle.

        Machines carrying an *output* fault get the stuck node pre-set to
        its stuck value (the node never held the fault-free reset value;
        see :func:`repro.sim.ternary.settle_from_reset`).
        """
        if reset_state is None:
            reset_state = self.circuit.require_reset()
        low, high = (list(w) for w in self.broadcast(reset_state))
        for gate_index, (f0, f1) in self.out_force.items():
            low[gate_index] = (low[gate_index] | f0) & ~f1
            high[gate_index] = (high[gate_index] | f1) & ~f0
        return self.settle((tuple(low), tuple(high)))

    def apply(self, state: BatchState, pattern: int) -> BatchState:
        """One synchronous test cycle: drive inputs, settle every machine."""
        low = list(state[0])
        high = list(state[1])
        ones = self.ones
        for i in range(self.circuit.n_inputs):
            if (pattern >> i) & 1:
                low[i], high[i] = 0, ones
            else:
                low[i], high[i] = ones, 0
        return self.settle((tuple(low), tuple(high)))

    def observe(self, state: BatchState, good_state: int) -> int:
        """W-bit mask of machines with a definite output difference."""
        low, high = state
        detected = 0
        for out in self.circuit.outputs:
            if (good_state >> out) & 1:
                detected |= low[out] & ~high[out]
            else:
                detected |= high[out] & ~low[out]
        return detected

    def machine_state(self, state: BatchState, j: int) -> Tuple[int, int]:
        """Extract machine ``j`` as a scalar ternary (L, H) pair."""
        low, high = state
        sl = 0
        sh = 0
        for i in range(self.circuit.n_signals):
            sl |= ((low[i] >> j) & 1) << i
            sh |= ((high[i] >> j) & 1) << i
        return (sl, sh)
