"""Word-parallel ternary fault simulation (paper §5.4).

Random TPG and fault simulation both need "the same input sequence run on
many faulty machines".  Parallel simulation packs one faulty machine per
bit of a Python int: signal *i* of the batch holds a pair of W-bit words
``(L[i], H[i])`` with the same (can-be-0, can-be-1) encoding as
:mod:`repro.sim.ternary`.  Because Python ints are arbitrary precision,
one batch can simulate the entire fault universe at once; for very large
universes :class:`ChunkedFaultSim` splits the machines into fixed-width
words instead, which keeps each settle operating on machine-word-sized
ints.

Fault injection is compiled into per-gate masks:

* an *input* fault ``(g, site, v)`` owns bit *j*: when gate ``g`` reads
  ``site``, bit *j* of the operand words is forced to ``v``;
* an *output* fault forces bit *j* of gate ``g``'s evaluation result.

The settle loop itself lives in :mod:`repro.sim.engine` — this module is
a thin adapter that owns batch state layout, fault masks, and
observation.  A ``FaultBatch`` of width 1 is bit-for-bit equivalent to
the scalar engine (a property the test suite checks against the
reference implementation in :mod:`repro.sim.legacy`).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.sim.engine import engine_for

BatchState = Tuple[Tuple[int, ...], Tuple[int, ...]]


class FaultBatch:
    """Simulates one circuit under W simultaneous single-fault hypotheses.

    Usage::

        batch = FaultBatch(circuit, faults)
        state = batch.reset_and_settle()
        state = batch.apply(state, pattern)
        detected |= batch.observe(state, good_state)

    ``observe`` returns a W-bit mask of machines whose outputs *definitely*
    differ from the good circuit.  Construction is cheap for a repeated
    (circuit, faults) pair: the compiled engine behind it is cached.
    """

    def __init__(self, circuit: Circuit, faults: Sequence[Fault]):
        self.circuit = circuit
        self.faults = list(faults)
        self.width = len(self.faults)
        self.engine = engine_for(circuit, tuple(self.faults), width=self.width)
        self.ones = self.engine.ones
        self.pin_force = self.engine.pin_force
        self.out_force = self.engine.out_force

    # -- state helpers ---------------------------------------------------

    def broadcast(self, state: int) -> BatchState:
        """Replicate a binary circuit state across all W machines."""
        L, H = self.engine.broadcast(state)
        return (tuple(L), tuple(H))

    def settle(self, state: BatchState) -> BatchState:
        """Batched Algorithm A then Algorithm B with inputs held."""
        low = list(state[0])
        high = list(state[1])
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def reset_and_settle(self, reset_state: Optional[int] = None) -> BatchState:
        """Force the reset state on every machine and settle.

        Machines carrying an *output* fault get the stuck node pre-set to
        its stuck value (the node never held the fault-free reset value;
        see :func:`repro.sim.ternary.settle_from_reset`).
        """
        if reset_state is None:
            reset_state = self.circuit.require_reset()
        low, high = self.engine.broadcast(reset_state)
        for gate_index, (f0, f1) in self.out_force.items():
            low[gate_index] = (low[gate_index] | f0) & ~f1
            high[gate_index] = (high[gate_index] | f1) & ~f0
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def apply(self, state: BatchState, pattern: int) -> BatchState:
        """One synchronous test cycle: drive inputs, settle every machine.

        Accepts arbitrary states, like the historical implementation:
        every gate is re-examined.  Walk-style callers holding states
        this class itself produced should use :meth:`apply_settled`."""
        low = list(state[0])
        high = list(state[1])
        ones = self.ones
        for i in range(self.circuit.n_inputs):
            if (pattern >> i) & 1:
                low[i], high[i] = 0, ones
            else:
                low[i], high[i] = ones, 0
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def apply_settled(self, state: BatchState, pattern: int) -> BatchState:
        """Fast-path test cycle for **settled** states (as produced by
        :meth:`reset_and_settle` / :meth:`settle` / this method): only
        the fanout of the inputs that actually changed is re-examined.
        Feeding an unsettled state here returns garbage."""
        low = list(state[0])
        high = list(state[1])
        self.engine.apply_pattern(low, high, pattern)
        return (tuple(low), tuple(high))

    def observe(self, state: BatchState, good_state: int) -> int:
        """W-bit mask of machines with a definite output difference."""
        low, high = state
        detected = 0
        for out in self.circuit.outputs:
            if (good_state >> out) & 1:
                detected |= low[out] & ~high[out]
            else:
                detected |= high[out] & ~low[out]
        return detected

    def machine_state(self, state: BatchState, j: int) -> Tuple[int, int]:
        """Extract machine ``j`` as a scalar ternary (L, H) pair."""
        low, high = state
        sl = 0
        sh = 0
        for i in range(self.circuit.n_signals):
            sl |= ((low[i] >> j) & 1) << i
            sh |= ((high[i] >> j) & 1) << i
        return (sl, sh)


class ChunkedFaultSim:
    """A fault universe split into fixed-width :class:`FaultBatch` words.

    Identical observable behaviour to one monolithic batch (machines are
    independent, so chunking cannot change any per-machine result), but
    each settle manipulates ``chunk_width``-bit ints instead of one
    universe-wide bignum.  ``observe`` masks are re-assembled into the
    monolithic bit numbering, so callers can swap this in for a
    ``FaultBatch`` without touching their bookkeeping.
    """

    def __init__(
        self, circuit: Circuit, faults: Sequence[Fault], chunk_width: int = 64
    ):
        if chunk_width < 1:
            raise ValueError("chunk_width must be positive")
        self.circuit = circuit
        self.faults = list(faults)
        self.width = len(self.faults)
        self.chunk_width = chunk_width
        self.batches: List[FaultBatch] = [
            FaultBatch(circuit, self.faults[off : off + chunk_width])
            for off in range(0, self.width, chunk_width)
        ]
        self.ones = (1 << self.width) - 1 if self.width else 0

    def _offsets(self) -> Iterator[Tuple[int, FaultBatch]]:
        for n, batch in enumerate(self.batches):
            yield n * self.chunk_width, batch

    def reset_and_settle(self, reset_state: Optional[int] = None) -> List[BatchState]:
        return [b.reset_and_settle(reset_state) for b in self.batches]

    def apply(self, states: List[BatchState], pattern: int) -> List[BatchState]:
        return [b.apply(s, pattern) for b, s in zip(self.batches, states)]

    def apply_settled(self, states: List[BatchState], pattern: int) -> List[BatchState]:
        return [b.apply_settled(s, pattern) for b, s in zip(self.batches, states)]

    def observe(self, states: List[BatchState], good_state: int) -> int:
        detected = 0
        for (off, batch), state in zip(self._offsets(), states):
            detected |= batch.observe(state, good_state) << off
        return detected

    def machine_state(self, states: List[BatchState], j: int) -> Tuple[int, int]:
        batch = self.batches[j // self.chunk_width]
        return batch.machine_state(states[j // self.chunk_width], j % self.chunk_width)
