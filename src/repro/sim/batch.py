"""Word-parallel ternary fault simulation (paper §5.4).

Random TPG and fault simulation both need "the same input sequence run on
many faulty machines".  Parallel simulation packs one faulty machine per
bit of a Python int: signal *i* of the batch holds a pair of W-bit words
``(L[i], H[i])`` with the same (can-be-0, can-be-1) encoding as
:mod:`repro.sim.ternary`.  Because Python ints are arbitrary precision,
one batch can simulate the entire fault universe at once; for very large
universes :class:`ChunkedFaultSim` manages the machines as a numpy
``uint64`` array slab instead (64 machines per lane word), so state
lives in two contiguous buffers rather than ever-larger bignums.

Fault injection is compiled into per-gate masks:

* an *input* fault ``(g, site, v)`` owns bit *j*: when gate ``g`` reads
  ``site``, bit *j* of the operand words is forced to ``v``;
* an *output* fault forces bit *j* of gate ``g``'s evaluation result.

The settle loops live in :mod:`repro.sim.engine` (event-driven worklist,
used by the state-passing methods here) and :mod:`repro.sim.arena` (the
compiled walk and slab kernels) — this module is a thin adapter that
owns batch state layout, fault masks, and observation.  A ``FaultBatch``
of width 1 is bit-for-bit equivalent to the scalar engine (a property
the test suite checks against the reference implementation in
:mod:`repro.sim.legacy`); the arena walk behind :meth:`FaultBatch.walk`
is checked the same way by ``tests/test_arena.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.sim.engine import engine_for

BatchState = Tuple[Tuple[int, ...], Tuple[int, ...]]


class FaultBatch:
    """Simulates one circuit under W simultaneous single-fault hypotheses.

    Usage::

        batch = FaultBatch(circuit, faults)
        state = batch.reset_and_settle()
        state = batch.apply(state, pattern)
        detected |= batch.observe(state, good_state)

    ``observe`` returns a W-bit mask of machines whose outputs *definitely*
    differ from the good circuit.  Construction is cheap for a repeated
    (circuit, faults) pair: the compiled engine behind it is cached.
    """

    def __init__(self, circuit: Circuit, faults: Sequence[Fault]):
        self.circuit = circuit
        self.faults = list(faults)
        self.width = len(self.faults)
        self.engine = engine_for(circuit, tuple(self.faults), width=self.width)
        self.ones = self.engine.ones
        self.pin_force = self.engine.pin_force
        self.out_force = self.engine.out_force

    # -- state helpers ---------------------------------------------------

    def broadcast(self, state: int) -> BatchState:
        """Replicate a binary circuit state across all W machines."""
        L, H = self.engine.broadcast(state)
        return (tuple(L), tuple(H))

    def settle(self, state: BatchState) -> BatchState:
        """Batched Algorithm A then Algorithm B with inputs held."""
        low = list(state[0])
        high = list(state[1])
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def reset_and_settle(self, reset_state: Optional[int] = None) -> BatchState:
        """Force the reset state on every machine and settle.

        Machines carrying an *output* fault get the stuck node pre-set to
        its stuck value (the node never held the fault-free reset value;
        see :func:`repro.sim.ternary.settle_from_reset`).
        """
        if reset_state is None:
            reset_state = self.circuit.require_reset()
        low, high = self.engine.broadcast(reset_state)
        for gate_index, (f0, f1) in self.out_force.items():
            low[gate_index] = (low[gate_index] | f0) & ~f1
            high[gate_index] = (high[gate_index] | f1) & ~f0
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def apply(self, state: BatchState, pattern: int) -> BatchState:
        """One synchronous test cycle: drive inputs, settle every machine.

        Accepts arbitrary states, like the historical implementation:
        every gate is re-examined.  Walk-style callers holding states
        this class itself produced should use :meth:`apply_settled`."""
        low = list(state[0])
        high = list(state[1])
        ones = self.ones
        for i in range(self.circuit.n_inputs):
            if (pattern >> i) & 1:
                low[i], high[i] = 0, ones
            else:
                low[i], high[i] = ones, 0
        self.engine.settle(low, high)
        return (tuple(low), tuple(high))

    def apply_settled(self, state: BatchState, pattern: int) -> BatchState:
        """Fast-path test cycle for **settled** states (as produced by
        :meth:`reset_and_settle` / :meth:`settle` / this method): only
        the fanout of the inputs that actually changed is re-examined.
        Feeding an unsettled state here returns garbage."""
        low = list(state[0])
        high = list(state[1])
        self.engine.apply_pattern(low, high, pattern)
        return (tuple(low), tuple(high))

    def observe(self, state: BatchState, good_state: int) -> int:
        """W-bit mask of machines with a definite output difference."""
        low, high = state
        detected = 0
        for out in self.circuit.outputs:
            if (good_state >> out) & 1:
                detected |= low[out] & ~high[out]
            else:
                detected |= high[out] & ~low[out]
        return detected

    def machine_state(self, state: BatchState, j: int) -> Tuple[int, int]:
        """Extract machine ``j`` as a scalar ternary (L, H) pair."""
        low, high = state
        sl = 0
        sh = 0
        for i in range(self.circuit.n_signals):
            sl |= ((low[i] >> j) & 1) << i
            sh |= ((high[i] >> j) & 1) << i
        return (sl, sh)

    def walk(self, reset_state: Optional[int] = None) -> "ArenaWalk":
        """Start an arena walk over this batch's fault overlay — the
        fast path for walk-shaped workloads (random TPG, test replay):
        state stays inside the compiled kernel and each cycle is one
        ``step(pattern, good)`` call returning the detection mask.
        Results are bit-identical to the state-passing methods above."""
        from repro.sim.arena import arena_for

        return arena_for(self.circuit, tuple(self.faults), self.width).walk(
            reset_state
        )


class SlabWalk:
    """Walk handle over a slab state, protocol-compatible with
    :class:`repro.sim.arena.ArenaWalk`."""

    __slots__ = ("_kernel", "_L", "_H")

    def __init__(self, kernel, reset_state: Optional[int]):
        self._kernel = kernel
        self._L, self._H = kernel.reset_and_settle(reset_state)

    def step(self, pattern: int, good_state: int) -> int:
        kernel = self._kernel
        kernel.drive(self._L, self._H, pattern)
        kernel.settle(self._L, self._H)
        return kernel.observe(self._L, self._H, good_state)

    def observe(self, good_state: int) -> int:
        return self._kernel.observe(self._L, self._H, good_state)

    def state(self) -> BatchState:
        """Snapshot as bignum word tuples (one per signal)."""
        low = []
        high = []
        for i in range(self._kernel.circuit.n_signals):
            wl = 0
            wh = 0
            for k in range(self._kernel.n_words):
                wl |= int(self._L[i][k]) << (64 * k)
                wh |= int(self._H[i][k]) << (64 * k)
            low.append(wl)
            high.append(wh)
        return (tuple(low), tuple(high))


class ChunkedFaultSim:
    """A large fault universe as a numpy ``uint64`` array slab.

    Historically this class split the machines into fixed-width
    :class:`FaultBatch` chunks; it now delegates to the slab kernel
    (:class:`repro.sim.arena.SlabKernel`): state is a pair of contiguous
    ``(n_signals, n_words)`` buffers, 64 machines per lane word, settled
    by levelized vectorized sweeps.  Observable behaviour is identical
    to one monolithic batch (machines are independent), and ``observe``
    masks use the monolithic bit numbering, so callers can swap this in
    for a ``FaultBatch`` without touching their bookkeeping.

    ``chunk_width`` is kept for API compatibility and validation only:
    the slab always packs machines into 64-bit lanes.
    """

    def __init__(
        self, circuit: Circuit, faults: Sequence[Fault], chunk_width: int = 64
    ):
        if chunk_width < 1:
            raise ValueError("chunk_width must be positive")
        from repro.sim.arena import slab_for

        self.circuit = circuit
        self.faults = list(faults)
        self.width = len(self.faults)
        self.chunk_width = chunk_width
        self.kernel = slab_for(circuit, tuple(self.faults), self.width)
        self.ones = (1 << self.width) - 1 if self.width else 0

    def reset_and_settle(self, reset_state: Optional[int] = None):
        return self.kernel.reset_and_settle(reset_state)

    def apply(self, state, pattern: int):
        L, H = state
        L = L.copy()
        H = H.copy()
        self.kernel.drive(L, H, pattern)
        self.kernel.settle(L, H)
        return L, H

    # The slab settle is always a full levelized sweep, so the settled
    # and unsettled entry points coincide.
    apply_settled = apply

    def observe(self, state, good_state: int) -> int:
        L, H = state
        return self.kernel.observe(L, H, good_state)

    def machine_state(self, state, j: int) -> Tuple[int, int]:
        L, H = state
        return self.kernel.machine_state(L, H, j)

    def walk(self, reset_state: Optional[int] = None) -> SlabWalk:
        """Slab-backed walk handle (see :meth:`FaultBatch.walk`)."""
        return SlabWalk(self.kernel, reset_state)
