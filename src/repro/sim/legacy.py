"""Reference (pre-engine) simulators, kept for parity testing.

These are the seed tree's sweep-based Algorithm A/B implementations:
full-circuit passes with per-gate stack interpretation through
:func:`repro.circuit.expr.eval_ternary`.  The compiled event-driven
engine in :mod:`repro.sim.engine` must be **bit-identical** to them on
every state — ``tests/test_sim_cross.py`` and
``benchmarks/bench_ternary_cost.py`` import this module as the ground
truth and the speed baseline.  Production code must not: the engine is
strictly faster and the only supported settle path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.expr import eval_ternary
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit, Gate
from repro.errors import SimulationError
from repro.sim.ternary import TernaryState

BatchState = Tuple[Tuple[int, ...], Tuple[int, ...]]


def _check_kind(fault: Optional[Fault]) -> None:
    """The oracle predates the fault-model registry and implements the
    two stuck-at kinds only; silently mis-simulating a bridging or
    transition fault would poison every differential test, so reject
    anything else loudly."""
    if fault is not None and fault.kind not in ("input", "output"):
        raise SimulationError(
            f"legacy oracle only simulates stuck-at kinds, not {fault.kind!r}"
        )


def _gate_eval(
    circuit: Circuit, gate: Gate, low: int, high: int, fault: Optional[Fault]
) -> Tuple[int, int]:
    """Ternary evaluation of one gate with optional fault injection."""
    if fault is not None and fault.kind == "output" and gate.index == fault.gate:
        return (0, 1) if fault.value else (1, 0)
    if fault is not None and fault.kind == "input" and gate.index == fault.gate:
        site, stuck = fault.site, fault.value

        def getv(sig: int) -> Tuple[int, int]:
            if sig == site:
                return (0, 1) if stuck else (1, 0)
            return ((low >> sig) & 1, (high >> sig) & 1)

    else:

        def getv(sig: int) -> Tuple[int, int]:
            return ((low >> sig) & 1, (high >> sig) & 1)

    return eval_ternary(gate.program, getv, 1)


def settle(
    circuit: Circuit, tstate: TernaryState, fault: Optional[Fault] = None
) -> TernaryState:
    """The seed's sweep-based scalar Algorithm A + B."""
    _check_kind(fault)
    low, high = tstate
    gates = circuit.gates
    sweep_guard = 2 * circuit.n_signals + 4
    for _ in range(sweep_guard):
        changed = False
        for gate in gates:
            el, eh = _gate_eval(circuit, gate, low, high, fault)
            gi = gate.index
            nl = ((low >> gi) & 1) | el
            nh = ((high >> gi) & 1) | eh
            if nl != ((low >> gi) & 1) or nh != ((high >> gi) & 1):
                low = (low & ~(1 << gi)) | (nl << gi)
                high = (high & ~(1 << gi)) | (nh << gi)
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("Algorithm A failed to converge (internal bug)")
    for _ in range(sweep_guard):
        changed = False
        for gate in gates:
            el, eh = _gate_eval(circuit, gate, low, high, fault)
            gi = gate.index
            if el != ((low >> gi) & 1) or eh != ((high >> gi) & 1):
                low = (low & ~(1 << gi)) | (el << gi)
                high = (high & ~(1 << gi)) | (eh << gi)
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("Algorithm B failed to converge (internal bug)")
    return (low, high)


def excited_gates(circuit: Circuit, state: int) -> List[int]:
    """The seed's full-sweep excited-gate enumeration (binary domain)."""
    from repro._bits import bit
    from repro.circuit.expr import eval_binary

    return [
        g.index
        for g in circuit.gates
        if eval_binary(g.program, state) != bit(state, g.index)
    ]


def batch_settle(
    circuit: Circuit, faults: Sequence[Fault], state: BatchState
) -> BatchState:
    """The seed's sweep-based word-parallel Algorithm A + B.

    Force masks are rebuilt per call (this is a test oracle, not a
    production path)."""
    from repro._bits import mask

    width = len(faults)
    ones = mask(width) if width else 0
    pin_force = {}
    out_force = {}
    for fault in faults:
        _check_kind(fault)
    for j, fault in enumerate(faults):
        if fault.kind == "input":
            per_gate = pin_force.setdefault(fault.gate, {})
            f0, f1 = per_gate.get(fault.site, (0, 0))
            if fault.value == 0:
                f0 |= 1 << j
            else:
                f1 |= 1 << j
            per_gate[fault.site] = (f0, f1)
        else:
            f0, f1 = out_force.get(fault.gate, (0, 0))
            if fault.value == 0:
                f0 |= 1 << j
            else:
                f1 |= 1 << j
            out_force[fault.gate] = (f0, f1)

    def gate_eval(gate, low, high):
        overrides = pin_force.get(gate.index)
        if overrides:

            def getv(sig):
                l, h = low[sig], high[sig]
                force = overrides.get(sig)
                if force is not None:
                    f0, f1 = force
                    l = (l | f0) & ~f1
                    h = (h | f1) & ~f0
                return (l, h)

        else:

            def getv(sig):
                return (low[sig], high[sig])

        el, eh = eval_ternary(gate.program, getv, ones)
        out = out_force.get(gate.index)
        if out is not None:
            f0, f1 = out
            el = (el | f0) & ~f1
            eh = (eh | f1) & ~f0
        return el, eh

    low = list(state[0])
    high = list(state[1])
    gates = circuit.gates
    guard = 2 * circuit.n_signals * max(1, width) + 4
    for _ in range(guard):
        changed = False
        for gate in gates:
            el, eh = gate_eval(gate, low, high)
            gi = gate.index
            nl = low[gi] | el
            nh = high[gi] | eh
            if nl != low[gi] or nh != high[gi]:
                low[gi] = nl
                high[gi] = nh
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("batched Algorithm A failed to converge")
    for _ in range(guard):
        changed = False
        for gate in gates:
            el, eh = gate_eval(gate, low, high)
            gi = gate.index
            if el != low[gi] or eh != high[gi]:
                low[gi] = el
                high[gi] = eh
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("batched Algorithm B failed to converge")
    return (tuple(low), tuple(high))
