"""Arena kernels: flat-buffer fast paths for packed fault simulation.

The engine in :mod:`repro.sim.engine` dispatches one compiled function
per gate through a worklist, with batch state living in per-signal lists
of Python-int words.  That shape is ideal for *sparse* re-settles but
pays per-event interpreter overhead on the hot walk loops (random TPG,
test-set audit, flow fault grading), where every cycle is: drive a
handful of inputs, settle, observe.  This module compiles two arena
kernels per ``(circuit, fault overlay)`` pair on top of the same
mask tables and the same operator emitter (:func:`~repro.sim.engine._emit_eval`
— so results are bit-identical by construction):

**The walk kernel** (:class:`ArenaKernel` / :class:`ArenaWalk`) — one
generated *generator* whose locals hold every signal's ``(l, h)`` words
for the whole walk; each cycle is a single ``send`` carrying
``(pattern, good_state)`` and returning the detection mask.  Settling is
the same Algorithm A/B chaotic iteration, driven by an int bitmask of
changed signals: a pass re-evaluates only gates whose baked-in support
mask intersects the changes (the event-driven worklist idea, without a
deque or any per-event allocation), and both fixpoints are unique under
any fair order, so the kernel is bit-identical to the engine and to the
seed sweeps in :mod:`repro.sim.legacy`.  State never leaves the
generator frame between cycles — no tuple packing, no list copies, no
per-gate function calls.

**The slab kernel** (:class:`SlabKernel`) — batch state as two
contiguous numpy ``uint64`` buffers of shape ``(n_signals, n_words)``,
64 machines per lane word.  One generated ``settle`` runs levelized
batch evaluation as vectorized bitwise ops across the word axis;
per-fault masks (pin forces, output forces, self blends, bridge blends)
are interned as indexed ``uint64`` mask arrays in the kernel's
namespace.  This replaces the old :class:`~repro.sim.batch.ChunkedFaultSim`
bignum splitting with array-slab management: one slab holds the whole
universe, and chunk bookkeeping disappears.

When to use which: the walk kernel wins whenever the universe fits a
single bignum comfortably (every bundled benchmark) — CPython bignum
bitwise ops are already C-speed word-parallel and the generator keeps
per-cycle overhead near zero.  The slab kernel is the large-universe
path: numpy's fixed per-op cost amortizes once words number in the
dozens, and the buffers expose machine state without bignum shifting.
Both are exercised against the legacy oracles by ``tests/test_arena.py``.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.obs import metrics as _obs
from repro.sim.engine import SimEngine, _emit_eval, _exec, engine_for

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the package
    _np = None

__all__ = ["ArenaKernel", "ArenaWalk", "SlabKernel", "arena_for", "slab_for"]

_WORD = 64
_WORD_ONES = (1 << _WORD) - 1


def require_numpy():
    """Return numpy or fail with an actionable message."""
    if _np is None:
        raise ImportError(
            "the slab fault-simulation kernel requires numpy, which is a "
            "declared dependency of repro-atpg (see setup.py); install it "
            "with: pip install numpy"
        )
    return _np


# ---------------------------------------------------------------------------
# Shared codegen pieces
# ---------------------------------------------------------------------------


def _overlay_kwargs(engine: SimEngine, pos: int, gate_at) -> dict:
    """The :func:`_emit_eval` overlay arguments for gate ``pos``."""
    gi = engine.cc.gate_index[pos]
    return dict(
        pin_force=engine.pin_force.get(gi),
        out_force=engine.out_force.get(gi),
        self_and=engine.self_and.get(gi, 0),
        self_or=engine.self_or.get(gi, 0),
        bridges=[
            (gate_at[partner].program, ma, mo)
            for partner, (ma, mo) in sorted(engine.bridges.get(gi, {}).items())
        ],
    )


def _exam_mask(engine: SimEngine, pos: int, gate_at) -> int:
    """Signal bitmask that must intersect the changed-set for gate
    ``pos`` to need re-evaluation: its support, any bridge partner's
    support, and its own output (covers self blends and seeding)."""
    gi = engine.cc.gate_index[pos]
    gate = engine.circuit.gates[pos]
    sigs = set(gate.support)
    sigs.add(gi)
    for partner in engine.bridges.get(gi, {}):
        sigs.update(gate_at[partner].support)
    m = 0
    for s in sigs:
        m |= 1 << s
    return m


def _emit_observe(ap, indent: str, circuit: Circuit, good: str, dest: str):
    """Detection mask accumulation: definite output difference vs the
    good state in ``good`` (same formula as ``FaultBatch.observe``)."""
    ap(f"{indent}{dest} = 0")
    for out in circuit.outputs:
        ap(f"{indent}if ({good} >> {out}) & 1:")
        ap(f"{indent}    {dest} |= l{out} & ~h{out}")
        ap(f"{indent}else:")
        ap(f"{indent}    {dest} |= h{out} & ~l{out}")


# ---------------------------------------------------------------------------
# The walk kernel (bignum words, generator state)
# ---------------------------------------------------------------------------


def _codegen_walk(engine: SimEngine) -> str:
    """Source of the arena walk generator for one engine overlay.

    Protocol (after priming with ``next``): ``send((pattern, good))``
    with ``pattern >= 0`` runs one test cycle — drive inputs, Algorithm
    A then B over the changed-signal bitmask, observe — and yields the
    detection word.  Control ops use negative first elements:
    ``(-1, good)`` observes without stepping, ``(-2, 0)`` fully settles
    the current state (used once at walk start), ``(-3, 0)`` yields a
    snapshot ``((l...), (h...))`` of every signal word.
    """
    cc = engine.cc
    circuit = engine.circuit
    ones = engine.ones
    n_signals = cc.n_signals
    gate_at = {g.index: g for g in circuit.gates}
    cap = 2 * n_signals * max(1, engine.width) + 4
    lines: List[str] = ["def walk(low, high):"]
    ap = lines.append
    for i in range(n_signals):
        ap(f"    l{i} = low[{i}]; h{i} = high[{i}]")
    snapshot = (
        "(("
        + ", ".join(f"l{i}" for i in range(n_signals))
        + ",), ("
        + ", ".join(f"h{i}" for i in range(n_signals))
        + ",))"
    )
    ap("    r = None")
    ap("    while True:")
    ap("        a, b = yield r")
    ap("        if a >= 0:")
    ap("            ac = 0")
    for i in range(cc.n_inputs):
        ap(f"            if (a >> {i}) & 1:")
        ap(f"                if l{i} or h{i} != {ones}:")
        ap(f"                    l{i} = 0; h{i} = {ones}; ac |= {1 << i}")
        ap("            else:")
        ap(f"                if l{i} != {ones} or h{i}:")
        ap(f"                    l{i} = {ones}; h{i} = 0; ac |= {1 << i}")
    ap("        elif a == -1:")
    _emit_observe(ap, "            ", circuit, "b", "det")
    ap("            r = det")
    ap("            continue")
    ap("        elif a == -2:")
    ap(f"            ac = {(1 << n_signals) - 1}")
    ap("        else:")
    ap(f"            r = {snapshot}")
    ap("            continue")
    # Algorithm A: value <- lub(value, eval), to the least fixpoint.
    # Each pass re-evaluates exactly the gates whose exam mask meets the
    # signals changed in the previous pass; aev remembers every gate
    # evaluated so Algorithm B can seed from it (a gate A never touched
    # started settled and cannot move until a fan-in does).
    ap("        aev = 0")
    ap("        rounds = 0")
    ap("        while ac:")
    ap("            nc = 0")
    ap("            rounds += 1")
    ap(f"            if rounds > {cap}:")
    ap(
        "                raise SimulationError("
        "'Algorithm A failed to converge (internal bug)')"
    )
    for pos in cc.order:
        gi = cc.gate_index[pos]
        exam = _exam_mask(engine, pos, gate_at)
        ap(f"            if (ac | nc) & {exam}:")
        l, h = _emit_eval(
            lines,
            "                ",
            f"g{pos}_",
            circuit.gates[pos].program,
            ones,
            ref=lambda arg: (f"l{arg}", f"h{arg}"),
            lit=str,
            self_ref=(f"l{gi}", f"h{gi}"),
            **_overlay_kwargs(engine, pos, gate_at),
        )
        ap(f"                aev |= {1 << gi}")
        ap(f"                nl = ({l}) | l{gi}; nh = ({h}) | h{gi}")
        ap(f"                if nl != l{gi} or nh != h{gi}:")
        ap(f"                    l{gi} = nl; h{gi} = nh; nc |= {1 << gi}")
    ap("            ac = nc")
    # Algorithm B: value <- eval, monotone decreasing to the greatest
    # fixpoint below the Algorithm A result.
    ap("        bc = aev")
    ap("        rounds = 0")
    ap("        while bc:")
    ap("            nc = 0")
    ap("            rounds += 1")
    ap(f"            if rounds > {cap}:")
    ap(
        "                raise SimulationError("
        "'Algorithm B failed to converge (internal bug)')"
    )
    for pos in cc.order:
        gi = cc.gate_index[pos]
        exam = _exam_mask(engine, pos, gate_at)
        ap(f"            if (bc | nc) & {exam}:")
        l, h = _emit_eval(
            lines,
            "                ",
            f"b{pos}_",
            circuit.gates[pos].program,
            ones,
            ref=lambda arg: (f"l{arg}", f"h{arg}"),
            lit=str,
            self_ref=(f"l{gi}", f"h{gi}"),
            **_overlay_kwargs(engine, pos, gate_at),
        )
        ap(f"                if ({l}) != l{gi} or ({h}) != h{gi}:")
        ap(f"                    l{gi} = ({l}); h{gi} = ({h}); nc |= {1 << gi}")
    ap("            bc = nc")
    _emit_observe(ap, "        ", circuit, "b", "det")
    ap("        r = det")
    return "\n".join(lines)


class _WalkMeter:
    """Throughput accounting for one walk, when metrics are enabled.

    ``units`` is lane-words × gates — the amount of word-parallel work
    one test cycle performs — so the published rate is the packed-sim
    ``words·gates/sec`` figure of merit.  Registry updates are batched
    (one flush per :data:`_BATCH` steps): the per-step cost is two
    ``perf_counter`` calls and two float adds."""

    __slots__ = ("units", "_steps", "_seconds", "_ctr_steps",
                 "_ctr_seconds", "_rate")

    _BATCH = 64

    def __init__(self, engine: SimEngine):
        reg = _obs.get_registry()
        words = (max(1, engine.width) + _WORD - 1) // _WORD
        self.units = words * max(1, len(engine.circuit.gates))
        self._steps = 0
        self._seconds = 0.0
        self._ctr_steps = reg.counter(
            "repro_sim_walk_steps_total", "Arena walk test cycles executed."
        )
        self._ctr_seconds = reg.counter(
            "repro_sim_walk_seconds_total",
            "Wall-clock seconds inside arena walk steps.",
        )
        self._rate = reg.gauge(
            "repro_sim_words_gates_per_sec",
            "Arena walk throughput: lane words x gates per second "
            "(last flushed batch).",
        )

    def record(self, seconds: float) -> None:
        self._steps += 1
        self._seconds += seconds
        if self._steps >= self._BATCH:
            self.flush()

    def flush(self) -> None:
        if not self._steps:
            return
        self._ctr_steps.inc(self._steps)
        self._ctr_seconds.inc(self._seconds)
        if self._seconds > 0.0:
            self._rate.set(self._steps * self.units / self._seconds)
        self._steps = 0
        self._seconds = 0.0


class ArenaWalk:
    """One in-flight walk over a packed fault batch.

    Thin handle over the kernel's generator: :meth:`step` is one test
    cycle returning the detection mask, :meth:`observe` re-observes the
    current state (observation 0 after reset), :meth:`state` snapshots
    the per-signal words as a ``FaultBatch``-compatible state tuple.
    With metrics disabled (the default) stepping pays a single ``is
    None`` check on top of the generator send.
    """

    __slots__ = ("_gen", "_meter")

    def __init__(self, gen, meter: Optional[_WalkMeter] = None):
        self._gen = gen
        self._meter = meter

    def step(self, pattern: int, good_state: int) -> int:
        """Drive ``pattern``, settle, observe against ``good_state``."""
        meter = self._meter
        if meter is None:
            return self._gen.send((pattern, good_state))
        t0 = perf_counter()
        det = self._gen.send((pattern, good_state))
        meter.record(perf_counter() - t0)
        return det

    def observe(self, good_state: int) -> int:
        """Detection mask of the current (already settled) state."""
        return self._gen.send((-1, good_state))

    def state(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Snapshot ``(low words, high words)`` of every signal."""
        return self._gen.send((-3, 0))


class ArenaKernel:
    """The compiled walk kernel for one ``(circuit, fault overlay)``."""

    def __init__(self, engine: SimEngine):
        self.engine = engine
        self.circuit = engine.circuit
        ns = _exec(
            _codegen_walk(engine),
            f"<arena:{engine.circuit.name}:{len(engine.faults)}f>",
        )
        ns["SimulationError"] = SimulationError
        self._walk_fn = ns["walk"]

    def walk(self, reset_state: Optional[int] = None) -> ArenaWalk:
        """Start a walk: force the reset state (output-stuck nodes
        pre-set to their stuck value, as in ``reset_and_settle``),
        fully settle, return the stepping handle."""
        engine = self.engine
        if reset_state is None:
            reset_state = self.circuit.require_reset()
        low, high = engine.broadcast(reset_state)
        for gate_index, (f0, f1) in engine.out_force.items():
            low[gate_index] = (low[gate_index] | f0) & ~f1
            high[gate_index] = (high[gate_index] | f1) & ~f0
        gen = self._walk_fn(low, high)
        next(gen)
        gen.send((-2, 0))
        meter = _WalkMeter(engine) if _obs.enabled() else None
        return ArenaWalk(gen, meter)


def arena_for(
    circuit: Circuit,
    faults: Sequence[Fault] = (),
    width: Optional[int] = None,
) -> ArenaKernel:
    """The (cached) arena walk kernel for a fault overlay; rides the
    engine cache, so eviction policies stay in one place."""
    engine = engine_for(circuit, tuple(faults), width)
    kernel = getattr(engine, "_arena_kernel", None)
    if kernel is None:
        kernel = ArenaKernel(engine)
        engine._arena_kernel = kernel
    return kernel


# ---------------------------------------------------------------------------
# The slab kernel (numpy uint64 buffers)
# ---------------------------------------------------------------------------


def _codegen_slab(engine: SimEngine) -> Tuple[str, dict]:
    """Source of ``settle(L, H)`` over ``(n_signals, n_words)`` uint64
    slabs, plus the interned mask-array table ``{name: int}`` the exec
    namespace must provide as word arrays.

    Levelized batch evaluation: Algorithm A sweeps every gate in
    levelized order (vectorized across the word axis) until a pass
    changes nothing, then Algorithm B the same with plain assignment —
    full sweeps rather than a worklist, because one numpy op already
    touches the whole slab and per-gate change tracking would cost more
    than it saves.
    """
    cc = engine.cc
    circuit = engine.circuit
    ones = engine.ones
    gate_at = {g.index: g for g in circuit.gates}
    cap = 2 * cc.n_signals * max(1, engine.width) + 4
    masks = {}

    def lit(val: int) -> str:
        if val == 0:
            return "0"
        name = masks.get(val)
        if name is None:
            name = f"M{len(masks)}"
            masks[val] = name
        return name

    lines: List[str] = ["def settle(L, H):"]
    ap = lines.append
    for phase in ("A", "B"):
        ap("    rounds = 0")
        ap("    while True:")
        ap("        ch = False")
        ap("        rounds += 1")
        ap(f"        if rounds > {cap}:")
        ap(
            "            raise SimulationError("
            f"'Algorithm {phase} failed to converge (internal bug)')"
        )
        for pos in cc.order:
            gi = cc.gate_index[pos]
            l, h = _emit_eval(
                lines,
                "        ",
                f"{phase.lower()}{pos}_",
                circuit.gates[pos].program,
                ones,
                ref=lambda arg: (f"L[{arg}]", f"H[{arg}]"),
                lit=lit,
                self_ref=(f"L[{gi}]", f"H[{gi}]"),
                **_overlay_kwargs(engine, pos, gate_at),
            )
            if phase == "A":
                ap(f"        nl = ({l}) | L[{gi}]; nh = ({h}) | H[{gi}]")
            else:
                ap(f"        nl = ({l}); nh = ({h})")
            ap(f"        if (nl != L[{gi}]).any() or (nh != H[{gi}]).any():")
            ap(f"            L[{gi}] = nl; H[{gi}] = nh; ch = True")
        ap("        if not ch:")
        ap("            break")
    return "\n".join(lines), masks


def _to_words(np, value: int, n_words: int):
    """Split a bignum mask into little-endian 64-bit lane words."""
    return np.array(
        [(value >> (_WORD * k)) & _WORD_ONES for k in range(n_words)],
        dtype=np.uint64,
    )


class SlabKernel:
    """Word-slab packed fault simulation over numpy uint64 buffers.

    One slab state is a pair of ``(n_signals, n_words)`` arrays with the
    usual (can-be-0, can-be-1) encoding, machine *j* living in bit
    ``j % 64`` of lane word ``j // 64``.  All fault-mask families are
    pre-split into lane-word arrays and baked into the generated settle.
    """

    def __init__(self, engine: SimEngine):
        np = require_numpy()
        self.np = np
        self.engine = engine
        self.circuit = engine.circuit
        self.width = engine.width
        self.n_words = (self.width + _WORD - 1) // _WORD
        self.ones = engine.ones
        #: all-ones lane words (partial final word) — the slab's ``ones``.
        self.ones_row = _to_words(np, self.ones, self.n_words)
        src, masks = _codegen_slab(engine)
        ns = _exec(src, f"<slab:{self.circuit.name}:{len(engine.faults)}f>")
        ns["SimulationError"] = SimulationError
        for value, name in masks.items():
            ns[name] = _to_words(np, value, self.n_words)
        self._settle = ns["settle"]
        #: output-force masks as lane arrays, for reset pre-setting.
        self._out_force_rows = {
            gi: (_to_words(np, f0, self.n_words), _to_words(np, f1, self.n_words))
            for gi, (f0, f1) in engine.out_force.items()
        }

    # -- state management ------------------------------------------------

    def broadcast(self, state: int):
        """Fresh slab replicating a binary state across every machine."""
        np = self.np
        n = self.circuit.n_signals
        L = np.empty((n, self.n_words), dtype=np.uint64)
        H = np.empty((n, self.n_words), dtype=np.uint64)
        for i in range(n):
            if (state >> i) & 1:
                L[i] = 0
                H[i] = self.ones_row
            else:
                L[i] = self.ones_row
                H[i] = 0
        return L, H

    def settle(self, L, H) -> None:
        """Algorithm A then B, vectorized, in place.  One settle sweeps
        the whole slab, so (unlike the walk kernel) per-call metric
        publication is already coarse enough."""
        if not _obs.enabled():
            self._settle(L, H)
            return
        t0 = perf_counter()
        self._settle(L, H)
        dt = perf_counter() - t0
        reg = _obs.get_registry()
        reg.counter(
            "repro_sim_slab_settles_total", "Slab kernel settle calls."
        ).inc()
        reg.counter(
            "repro_sim_slab_seconds_total",
            "Wall-clock seconds inside slab settles.",
        ).inc(dt)
        if dt > 0.0:
            units = self.n_words * max(1, len(self.circuit.gates))
            reg.gauge(
                "repro_sim_slab_words_gates_per_sec",
                "Slab settle throughput: lane words x gates per second "
                "(last settle).",
            ).set(units / dt)

    def reset_and_settle(self, reset_state: Optional[int] = None):
        """Force the reset state on every machine and settle; machines
        with an output fault get the stuck node pre-set to its stuck
        value (exactly like ``FaultBatch.reset_and_settle``)."""
        if reset_state is None:
            reset_state = self.circuit.require_reset()
        L, H = self.broadcast(reset_state)
        for gi, (f0, f1) in self._out_force_rows.items():
            L[gi] = (L[gi] | f0) & ~f1
            H[gi] = (H[gi] | f1) & ~f0
        self._settle(L, H)
        return L, H

    def drive(self, L, H, pattern: int) -> None:
        """Drive every input to its definite pattern bit, in place."""
        for i in range(self.circuit.n_inputs):
            if (pattern >> i) & 1:
                L[i] = 0
                H[i] = self.ones_row
            else:
                L[i] = self.ones_row
                H[i] = 0

    def observe(self, L, H, good_state: int) -> int:
        """Monolithic detection mask (bit *j* = machine *j* caught)."""
        np = self.np
        det = np.zeros(self.n_words, dtype=np.uint64)
        for out in self.circuit.outputs:
            if (good_state >> out) & 1:
                det |= L[out] & ~H[out]
            else:
                det |= H[out] & ~L[out]
        detected = 0
        for k in range(self.n_words):
            detected |= int(det[k]) << (_WORD * k)
        return detected

    def machine_state(self, L, H, j: int) -> Tuple[int, int]:
        """Extract machine ``j`` as a scalar ternary (L, H) pair."""
        word, bit = divmod(j, _WORD)
        sl = 0
        sh = 0
        for i in range(self.circuit.n_signals):
            sl |= ((int(L[i][word]) >> bit) & 1) << i
            sh |= ((int(H[i][word]) >> bit) & 1) << i
        return (sl, sh)


def slab_for(
    circuit: Circuit,
    faults: Sequence[Fault] = (),
    width: Optional[int] = None,
) -> SlabKernel:
    """The (cached) slab kernel for a fault overlay."""
    engine = engine_for(circuit, tuple(faults), width)
    kernel = getattr(engine, "_slab_kernel", None)
    if kernel is None:
        kernel = SlabKernel(engine)
        engine._slab_kernel = kernel
    return kernel
