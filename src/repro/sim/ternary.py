"""Scalar ternary simulation — Eichelberger's Algorithms A and B.

A ternary state assigns each signal one of {0, 1, Φ}; Φ is "uncertain".
We pack a state as a pair of ints ``(L, H)``: bit *i* of ``L`` means
"signal *i* can be 0", bit *i* of ``H`` means "signal *i* can be 1".
So 0 = (1,0), 1 = (0,1) and Φ = (1,1) per signal.  Packing keeps states
hashable, which the state-differentiation search (paper §5.3) relies on.

**Algorithm A** repeatedly lifts every gate to the least upper bound of
its current value and its evaluation; unstable signals rise to Φ and
uncertainty propagates until a fixpoint.  **Algorithm B** then repeatedly
re-evaluates every gate; values can only resolve downward (Φ → 0/1).
Both fixpoints exist because the ternary gate operators are monotone in
the information order; because they are *unique* for any fair evaluation
order, this module is a thin adapter over the compiled event-driven
engine (:mod:`repro.sim.engine`) — it contains no settle loop of its
own, and its results are bit-identical to the historical sweep
implementation preserved in :mod:`repro.sim.legacy`.

If the final state is fully definite it is the *unique* stable successor
under the unbounded gate-delay model; any remaining Φ conservatively
signals possible non-confluence or oscillation.

A single fault of any registered model can be injected: an ``input``
pin force, an ``output`` constant, a ``bridging`` wired blend, or a
``transition`` self-sticky blend (see :mod:`repro.faultmodels` for the
overlay semantics).  Per-fault engines are cached, so per-fault
machines (three-phase generation) pay the overlay compilation once.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro._bits import mask
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.errors import SimulationError
from repro.sim.engine import SimEngine, engine_for

TernaryState = Tuple[int, int]


def from_binary(state: int, n_signals: int) -> TernaryState:
    """Lift a packed binary state to a definite ternary state."""
    m = mask(n_signals)
    return (~state & m, state & m)


def is_definite(tstate: TernaryState) -> bool:
    """True when no signal is Φ."""
    low, high = tstate
    return (low & high) == 0


def to_binary(tstate: TernaryState) -> int:
    """Convert a definite ternary state back to a packed binary state."""
    low, high = tstate
    if low & high:
        raise SimulationError("state contains uncertain (phi) signals")
    return high


def phi_signals(tstate: TernaryState) -> int:
    """Bit mask of the signals whose value is Φ."""
    low, high = tstate
    return low & high


def _engine(circuit: Circuit, fault: Optional[Fault]) -> SimEngine:
    return engine_for(circuit, (fault,) if fault is not None else ())


def _unpack(tstate: TernaryState, n: int) -> Tuple[List[int], List[int]]:
    low, high = tstate
    return (
        [(low >> i) & 1 for i in range(n)],
        [(high >> i) & 1 for i in range(n)],
    )


def _pack(L: List[int], H: List[int]) -> TernaryState:
    low = 0
    high = 0
    for i in range(len(L) - 1, -1, -1):
        low = (low << 1) | L[i]
        high = (high << 1) | H[i]
    return (low, high)


def settle(
    circuit: Circuit, tstate: TernaryState, fault: Optional[Fault] = None
) -> TernaryState:
    """Run Algorithm A then Algorithm B with primary inputs held.

    Returns the ternary settling result; definite iff the circuit has a
    unique stable successor reached without races (conservatively).
    Accepts arbitrary start states (every gate is re-examined).
    """
    engine = _engine(circuit, fault)
    L, H = _unpack(tstate, circuit.n_signals)
    engine.settle(L, H)
    return _pack(L, H)


def apply_pattern(
    circuit: Circuit,
    tstate: TernaryState,
    pattern: int,
    fault: Optional[Fault] = None,
) -> TernaryState:
    """One synchronous test cycle: drive the inputs to ``pattern``
    (definite values) and let the circuit settle.

    Accepts arbitrary ``tstate`` values, exactly like the historical
    implementation: every gate is re-examined, so an unsettled start
    state is fully settled rather than silently preserved.  Callers
    that can guarantee a settled state (the per-fault machines of the
    three-phase generator, batched walks) use the engine's dirty-seeded
    fast path instead."""
    imask = mask(circuit.n_inputs)
    low, high = tstate
    low = (low & ~imask) | (~pattern & imask)
    high = (high & ~imask) | (pattern & imask)
    return settle(circuit, (low, high), fault)


def apply_pattern_settled(
    circuit: Circuit,
    tstate: TernaryState,
    pattern: int,
    fault: Optional[Fault] = None,
) -> TernaryState:
    """Fast-path test cycle for **settled** states.

    ``tstate`` must be a fixpoint produced by :func:`settle`,
    :func:`settle_from_reset`, or this function under the same fault —
    the engine then only re-examines the fanout of the inputs that
    actually changed.  Feeding an unsettled state here returns garbage;
    use :func:`apply_pattern` when in doubt."""
    engine = _engine(circuit, fault)
    L, H = _unpack(tstate, circuit.n_signals)
    engine.apply_pattern(L, H, pattern)
    return _pack(L, H)


def settle_from_reset(
    circuit: Circuit, reset_state: int, fault: Optional[Fault] = None
) -> TernaryState:
    """Force the reset state (as a tester would) and settle.

    The fault's model may adjust the forced state first
    (:meth:`~repro.faultmodels.FaultModel.forced_reset`): an *output*
    stuck-at pre-sets the stuck node to its stuck value — physically it
    never held the fault-free reset value, and lifting it from the
    wrong polarity would let Algorithm A's lub transient poison
    feedback loops with spurious Φ.  The rest of the circuit is forced
    to the reset values and then settles (paper §4: "forcing s1 as
    reset state").
    """
    if fault is not None:
        from repro.faultmodels import model_for_kind

        reset_state = model_for_kind(fault.kind).forced_reset(
            circuit, fault, reset_state
        )
    return settle(circuit, from_binary(reset_state, circuit.n_signals), fault)


def detects(circuit: Circuit, good_state: int, faulty: TernaryState) -> bool:
    """True when some primary output *definitely* differs.

    The paper (§5.2) requires corruption to show in **all** terminal
    stable states, which is exactly "the faulty output is definite and
    opposite": a Φ output might still match the good machine for some
    delay assignment.
    """
    low, high = faulty
    for out in circuit.outputs:
        good = (good_state >> out) & 1
        fl = (low >> out) & 1
        fh = (high >> out) & 1
        if good == 1 and fl and not fh:
            return True
        if good == 0 and fh and not fl:
            return True
    return False
