"""Scalar ternary simulation — Eichelberger's Algorithms A and B.

A ternary state assigns each signal one of {0, 1, Φ}; Φ is "uncertain".
We pack a state as a pair of ints ``(L, H)``: bit *i* of ``L`` means
"signal *i* can be 0", bit *i* of ``H`` means "signal *i* can be 1".
So 0 = (1,0), 1 = (0,1) and Φ = (1,1) per signal.  Packing keeps states
hashable, which the state-differentiation search (paper §5.3) relies on.

**Algorithm A** repeatedly lifts every gate to the least upper bound of
its current value and its evaluation; unstable signals rise to Φ and
uncertainty propagates until a fixpoint.  **Algorithm B** then repeatedly
re-evaluates every gate; values can only resolve downward (Φ → 0/1).
Both fixpoints exist because the ternary gate operators are monotone in
the information order, and are reached in O(n) sweeps, giving the O(n²)
bound the paper quotes from [6].

If the final state is fully definite it is the *unique* stable successor
under the unbounded gate-delay model; any remaining Φ conservatively
signals possible non-confluence or oscillation.

A single stuck-at fault can be injected: an ``input`` fault forces one
source pin of one gate, an ``output`` fault replaces a gate's function by
a constant (see :mod:`repro.circuit.faults`).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro._bits import mask
from repro.circuit.expr import eval_ternary
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit, Gate
from repro.errors import SimulationError

TernaryState = Tuple[int, int]


def from_binary(state: int, n_signals: int) -> TernaryState:
    """Lift a packed binary state to a definite ternary state."""
    m = mask(n_signals)
    return (~state & m, state & m)


def is_definite(tstate: TernaryState) -> bool:
    """True when no signal is Φ."""
    low, high = tstate
    return (low & high) == 0


def to_binary(tstate: TernaryState) -> int:
    """Convert a definite ternary state back to a packed binary state."""
    low, high = tstate
    if low & high:
        raise SimulationError("state contains uncertain (phi) signals")
    return high


def phi_signals(tstate: TernaryState) -> int:
    """Bit mask of the signals whose value is Φ."""
    low, high = tstate
    return low & high


def _gate_eval(
    circuit: Circuit, gate: Gate, low: int, high: int, fault: Optional[Fault]
) -> Tuple[int, int]:
    """Ternary evaluation of one gate with optional fault injection."""
    if fault is not None and fault.kind == "output" and gate.index == fault.gate:
        return (0, 1) if fault.value else (1, 0)
    if fault is not None and fault.kind == "input" and gate.index == fault.gate:
        site, stuck = fault.site, fault.value

        def getv(sig: int) -> Tuple[int, int]:
            if sig == site:
                return (0, 1) if stuck else (1, 0)
            return ((low >> sig) & 1, (high >> sig) & 1)

    else:

        def getv(sig: int) -> Tuple[int, int]:
            return ((low >> sig) & 1, (high >> sig) & 1)

    return eval_ternary(gate.program, getv, 1)


def settle(
    circuit: Circuit, tstate: TernaryState, fault: Optional[Fault] = None
) -> TernaryState:
    """Run Algorithm A then Algorithm B with primary inputs held.

    Returns the ternary settling result; definite iff the circuit has a
    unique stable successor reached without races (conservatively).
    """
    low, high = tstate
    gates = circuit.gates
    # Algorithm A: value <- lub(value, eval), until fixpoint.
    sweep_guard = 2 * circuit.n_signals + 4
    for _ in range(sweep_guard):
        changed = False
        for gate in gates:
            el, eh = _gate_eval(circuit, gate, low, high, fault)
            gi = gate.index
            nl = ((low >> gi) & 1) | el
            nh = ((high >> gi) & 1) | eh
            if nl != ((low >> gi) & 1) or nh != ((high >> gi) & 1):
                low = (low & ~(1 << gi)) | (nl << gi)
                high = (high & ~(1 << gi)) | (nh << gi)
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("Algorithm A failed to converge (internal bug)")
    # Algorithm B: value <- eval, until fixpoint (monotone decreasing).
    for _ in range(sweep_guard):
        changed = False
        for gate in gates:
            el, eh = _gate_eval(circuit, gate, low, high, fault)
            gi = gate.index
            if el != ((low >> gi) & 1) or eh != ((high >> gi) & 1):
                low = (low & ~(1 << gi)) | (el << gi)
                high = (high & ~(1 << gi)) | (eh << gi)
                changed = True
        if not changed:
            break
    else:
        raise SimulationError("Algorithm B failed to converge (internal bug)")
    return (low, high)


def apply_pattern(
    circuit: Circuit,
    tstate: TernaryState,
    pattern: int,
    fault: Optional[Fault] = None,
) -> TernaryState:
    """One synchronous test cycle: drive the inputs to ``pattern``
    (definite values) and let the circuit settle."""
    imask = mask(circuit.n_inputs)
    low, high = tstate
    low = (low & ~imask) | (~pattern & imask)
    high = (high & ~imask) | (pattern & imask)
    return settle(circuit, (low, high), fault)


def settle_from_reset(
    circuit: Circuit, reset_state: int, fault: Optional[Fault] = None
) -> TernaryState:
    """Force the reset state (as a tester would) and settle.

    For an *output* fault the stuck node is pre-set to its stuck value —
    physically it never held the fault-free reset value, and lifting it
    from the wrong polarity would let Algorithm A's lub transient poison
    feedback loops with spurious Φ.  The rest of the circuit is forced to
    the reset values and then settles (paper §4: "forcing s1 as reset
    state").
    """
    if fault is not None and fault.kind == "output":
        reset_state = (reset_state & ~(1 << fault.site)) | (fault.value << fault.site)
    return settle(circuit, from_binary(reset_state, circuit.n_signals), fault)


def detects(circuit: Circuit, good_state: int, faulty: TernaryState) -> bool:
    """True when some primary output *definitely* differs.

    The paper (§5.2) requires corruption to show in **all** terminal
    stable states, which is exactly "the faulty output is definite and
    opposite": a Φ output might still match the good machine for some
    delay assignment.
    """
    low, high = faulty
    for out in circuit.outputs:
        good = (good_state >> out) & 1
        fl = (low >> out) & 1
        fh = (high >> out) & 1
        if good == 1 and fl and not fh:
            return True
        if good == 0 and fh and not fl:
            return True
    return False
