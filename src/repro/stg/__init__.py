"""Signal Transition Graph (STG) front end.

The paper's benchmarks are asynchronous controllers synthesized from STG
specifications by Petrify (speed-independent, Table 1) and SIS
(hazard-free bounded-delay, Table 2).  Neither tool is available offline,
so this subpackage implements the required slice from scratch:

* :mod:`repro.stg.petrinet` — STGs as labeled safe Petri nets;
* :mod:`repro.stg.parser` — the textual ``.g`` (astg) format;
* :mod:`repro.stg.reachability` — token-game state graph with safeness,
  consistency and CSC (Complete State Coding) checks;
* :mod:`repro.stg.twolevel` — Quine–McCluskey two-level minimization
  with don't-cares (irredundant and complete-sum covers);
* :mod:`repro.stg.synthesis` — gate-level implementations: atomic
  complex gates (speed-independent, the Petrify stand-in) and structural
  two-level networks with complete-sum covers (the redundant SIS
  stand-in).
"""

from repro.stg.petrinet import Stg, Transition
from repro.stg.parser import parse_stg, load_stg
from repro.stg.reachability import StateGraph, build_state_graph, check_csc
from repro.stg.synthesis import synthesize
from repro.stg.analysis import StgReport, analyse_stg
from repro.stg.twolevel import (
    Cube,
    compute_primes,
    irredundant_cover,
    cover_eval,
)

__all__ = [
    "Stg",
    "Transition",
    "parse_stg",
    "load_stg",
    "StateGraph",
    "build_state_graph",
    "check_csc",
    "synthesize",
    "Cube",
    "compute_primes",
    "irredundant_cover",
    "cover_eval",
    "StgReport",
    "analyse_stg",
]
