"""Gate-level synthesis from a state graph — the Petrify/SIS stand-ins.

Two back ends, selected by ``style``:

* ``"complex"`` — **speed-independent complex gates** (Table 1's circuit
  class).  Every non-input signal becomes one atomic gate implementing
  its next-state function NS(z) as a DC-minimized irredundant SOP; the
  gate's inertial delay sits at its output, so the circuit's unbounded-
  delay behaviour restricted to specified input sequences equals the STG
  state graph.  Primary inputs get identity buffers, exactly like the
  paper's figure 1 circuits.

* ``"two-level"`` — **structural SOP networks** (Table 2's stand-in).
  Each product term is its own AND gate (inverting pins where needed)
  feeding a per-signal OR gate.  The default cover is *hazard-aware*:
  beyond covering the ON set it keeps one cube spanning every
  state-graph edge across which the function stays 1, so the OR gate
  never glitches while products hand off.  Those spanning cubes are
  *functionally redundant* — exactly the "logic redundancies added by
  the synthesis tools in order to avoid spurious pulses" the paper
  blames for the poor Table 2 coverage of some benchmarks — and their
  stuck-at faults are largely untestable.  ``cover="complete"`` (every
  prime) and ``cover="irredundant"`` are available as ablations.

The reset state of the synthesized circuit is the STG's initial code
(buffers included), which is stable by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.expr import And, Const, Expr, Not, Or, Var, and_all, or_all
from repro.circuit.netlist import Circuit
from repro.errors import SynthesisError
from repro.stg.petrinet import Stg
from repro.stg.reachability import StateGraph, build_state_graph, require_csc
from repro.stg.twolevel import (
    Cube,
    compute_primes,
    hazard_aware_cover,
    irredundant_cover,
)

BUFFER_SUFFIX = "$buf"


def buffer_name(signal: str) -> str:
    """Name of the identity buffer for primary input ``signal``."""
    return signal + BUFFER_SUFFIX


def next_state_cover(
    sg: StateGraph,
    signal: str,
    cover: str = "irredundant",
    dc_policy: str = "dc",
) -> Tuple[List[Cube], List[int], List[int]]:
    """Two-level cover of NS(signal) plus its ON/OFF minterm lists.

    Variables are the STG signals in ``stg.signals`` order.  ``dc_policy``
    decides the fate of unreachable codes: ``"dc"`` leaves them as
    don't-cares (maximal prime expansion — the atomic complex-gate back
    end wants the smallest gates), ``"off"`` folds them into the OFF set
    (the structural two-level back end wants covers without cross-signal
    don't-care artifacts, which would otherwise create hazards between
    separately-delayed product gates).
    """
    nv = len(sg.stg.signals)
    on: List[int] = []
    off: List[int] = []
    seen: Dict[int, int] = {}
    for sid in range(sg.n_states):
        code = sg.code_of(sid)
        value = sg.next_state_value(sid, signal)
        previous = seen.get(code)
        if previous is not None and previous != value:
            raise SynthesisError(
                f"CSC violation on {signal!r} (code {code:0{nv}b})"
            )
        seen[code] = value
        if previous is None:
            (on if value else off).append(code)
    if dc_policy == "dc":
        dc = set(range(1 << nv)) - set(on) - set(off)
    elif dc_policy == "off":
        dc = set()
    else:
        raise SynthesisError(f"unknown dc_policy {dc_policy!r}")
    primes = compute_primes(on, dc, nv)
    if cover == "irredundant":
        return irredundant_cover(primes, on), on, off
    if cover == "complete":
        return list(primes), on, off
    if cover == "hazard-aware":
        chosen, _ = hazard_aware_cover(primes, on, hold_pairs(sg, signal))
        return chosen, on, off
    raise SynthesisError(f"unknown cover {cover!r}")


def hold_pairs(sg: StateGraph, signal: str) -> List[Tuple[int, int]]:
    """Static-1 hand-off pairs of NS(signal) (see hazard_aware_cover).

    One pair per state-graph edge across which the function stays 1 —
    including the edge where ``signal`` itself rises, whose firing cube
    must keep covering the new code once the feedback input flips.
    """
    pairs = set()
    for sid in range(sg.n_states):
        f_pre = sg.next_state_value(sid, signal)
        if not f_pre:
            continue
        for _t, nid in sg.edges[sid]:
            if sg.next_state_value(nid, signal):
                a, b = sg.code_of(sid), sg.code_of(nid)
                if a != b:
                    pairs.add((a, b))
    return sorted(pairs)


def _cube_expr(cube: Cube, var_names: Sequence[str], nv: int) -> Expr:
    """Expression for one product term."""
    lits: List[Expr] = []
    for var, polarity in cube.literals(nv):
        v: Expr = Var(var_names[var])
        lits.append(v if polarity else Not(v))
    if not lits:
        return Const(1)
    return and_all(lits)


def _cover_expr(cover: Sequence[Cube], var_names: Sequence[str], nv: int) -> Expr:
    if not cover:
        return Const(0)
    return or_all([_cube_expr(c, var_names, nv) for c in cover])


def synthesize(
    stg: Stg,
    style: str = "complex",
    cover: Optional[str] = None,
    sg: Optional[StateGraph] = None,
    k: Optional[int] = None,
    dc_policy: Optional[str] = None,
) -> Circuit:
    """Synthesize a gate-level circuit from an STG.

    ``style`` is ``"complex"`` (speed-independent, default cover
    ``"irredundant"``) or ``"two-level"`` (structural SOP, default cover
    ``"hazard-aware"`` — the redundant hazard-free covers modelling the
    SIS flow).  Unreachable codes are don't-cares by default
    (``dc_policy="dc"``).  Raises :class:`~repro.errors.CscError` when
    the STG lacks complete state coding, like Petrify would.
    """
    if sg is None:
        sg = build_state_graph(stg)
    require_csc(sg)
    if cover is None:
        cover = "irredundant" if style == "complex" else "hazard-aware"
    if dc_policy is None:
        dc_policy = "dc"
    signals = stg.signals
    nv = len(signals)
    # Logic reads buffered inputs and gate outputs:
    var_names = [
        buffer_name(s) if stg.is_input(s) else s for s in signals
    ]
    circuit = Circuit(f"{stg.name}-{style}")
    for s in stg.inputs:
        circuit.add_input(s)
    for s in stg.inputs:
        circuit.add_gate(buffer_name(s), gtype="BUF", inputs=[s])

    for signal in stg.non_input_signals:
        cubes, on, off = next_state_cover(sg, signal, cover, dc_policy)
        if style == "complex":
            circuit.add_gate(signal, expr=_cover_expr(cubes, var_names, nv))
        elif style == "two-level":
            if not cubes:
                circuit.add_gate(signal, expr=Const(0))
                continue
            product_names: List[str] = []
            for i, cube in enumerate(cubes):
                pname = f"{signal}$p{i}"
                circuit.add_gate(pname, expr=_cube_expr(cube, var_names, nv))
                product_names.append(pname)
            if len(product_names) == 1:
                # Keep the single product as the signal's own gate name by
                # adding an OR-buffer; a plain buffer keeps fault sites
                # comparable across signals.
                circuit.add_gate(signal, gtype="BUF", inputs=product_names)
            else:
                circuit.add_gate(signal, gtype="OR", inputs=product_names)
        else:
            raise SynthesisError(f"unknown synthesis style {style!r}")

    for s in stg.outputs:
        circuit.mark_output(s)

    # Reset state: the STG's initial code, buffers tracking their inputs.
    code0 = sg.code_of(sg.initial)
    reset: Dict[str, int] = {}
    for i, s in enumerate(signals):
        value = (code0 >> i) & 1
        if stg.is_input(s):
            reset[s] = value
            reset[buffer_name(s)] = value
        else:
            reset[s] = value
    if "two-level" == style:
        # Product gates settle to their function value at the reset code.
        full_code = {var_names[i]: (code0 >> i) & 1 for i in range(nv)}
        for gate_name, cube_expr_pairs in _product_resets(circuit, full_code):
            reset[gate_name] = cube_expr_pairs
    circuit.set_reset(reset)
    if k is not None:
        circuit.set_k(k)
    circuit.finalize()
    if not circuit.is_stable(circuit.require_reset()):
        raise SynthesisError(
            f"internal error: synthesized reset state of {stg.name} is unstable"
        )
    return circuit


def _product_resets(circuit: Circuit, values: Dict[str, int]):
    """Evaluate product-gate expressions at the reset code.

    Product gates only read buffered inputs and signal gates, whose reset
    values are already known, so one bottom-free pass suffices.
    """
    # Temporarily build an index map covering the known names.
    pending = []
    for name, expr, _ in circuit._gate_defs:  # noqa: SLF001 (pre-finalize peek)
        if "$p" in name:
            pending.append((name, expr))
    results = []
    for name, expr in pending:
        results.append((name, _eval_expr(expr, values)))
    return results


def _eval_expr(expr: Expr, values: Dict[str, int]) -> int:
    from repro.circuit.expr import And, Const, Not, Or, Var, Xor

    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return values[expr.name]
    if isinstance(expr, Not):
        return 1 - _eval_expr(expr.arg, values)
    if isinstance(expr, And):
        return int(all(_eval_expr(a, values) for a in expr.args))
    if isinstance(expr, Or):
        return int(any(_eval_expr(a, values) for a in expr.args))
    if isinstance(expr, Xor):
        return _eval_expr(expr.a, values) ^ _eval_expr(expr.b, values)
    raise SynthesisError(f"unknown expression node {expr!r}")
