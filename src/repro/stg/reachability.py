"""Token-game reachability and the specification state graph.

Builds the reachable state graph of an STG.  Each state is a (marking,
code) pair where the code packs signal values in ``stg.signals`` order.
During the BFS we enforce:

* **safeness** — no place ever carries two tokens;
* **consistency** — ``s+`` only fires when ``s`` is 0 and ``s-`` when 1.

Initial signal values come from the ``.initial`` directive or are
inferred: for every signal, the direction of the *first* of its
transitions reached by a BFS over markings fixes the initial value
(a `+` first edge means it starts at 0).  Inference is validated by the
labeled BFS afterwards, so an inconsistent guess cannot go unnoticed.

:func:`check_csc` verifies Complete State Coding — the condition the
paper's benchmarks satisfy by construction (Petrify inserts internal
signals for it).  Synthesis refuses STGs that fail it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import ConsistencyError, CscError, StgError
from repro.stg.petrinet import Marking, Stg, Transition


@dataclass
class StateGraph:
    """Reachable states of an STG under the token game."""

    stg: Stg
    # state id -> (marking, code)
    states: List[Tuple[Marking, int]] = field(default_factory=list)
    index: Dict[Tuple[Marking, int], int] = field(default_factory=dict)
    # edges[i] = list of (transition, successor state id)
    edges: List[List[Tuple[Transition, int]]] = field(default_factory=list)
    initial: int = 0

    @property
    def n_states(self) -> int:
        return len(self.states)

    def code_of(self, state_id: int) -> int:
        return self.states[state_id][1]

    def marking_of(self, state_id: int) -> Marking:
        return self.states[state_id][0]

    def signal_bit(self, signal: str) -> int:
        return self.stg.signals.index(signal)

    def enabled_signals(self, state_id: int) -> Set[str]:
        return {t.signal for t, _ in self.edges[state_id]}

    def next_state_value(self, state_id: int, signal: str) -> int:
        """NS(signal) at a state: where the signal is headed.

        1 when the signal is 0 with a rise enabled, or 1 with no fall
        enabled; 0 otherwise.  This is the function the gate for
        ``signal`` must implement (the implied value of [3]).
        """
        bitpos = self.signal_bit(signal)
        value = (self.code_of(state_id) >> bitpos) & 1
        for t, _ in self.edges[state_id]:
            if t.signal == signal:
                return 1 if t.direction > 0 else 0
        return value

    def codes(self) -> Set[int]:
        return {code for _, code in self.states}


def _infer_initial_values(stg: Stg, cap: int) -> Dict[str, int]:
    """BFS over markings alone; first edge direction fixes initial value."""
    values: Dict[str, int] = {}
    seen: Set[Marking] = {stg.initial_marking}
    queue = deque([stg.initial_marking])
    steps = 0
    while queue and len(values) < len(stg.signals) and steps < cap:
        marking = queue.popleft()
        for t in stg.enabled(marking):
            values.setdefault(t.signal, 0 if t.direction > 0 else 1)
            nxt = stg.fire(marking, t)
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
            steps += 1
    missing = [s for s in stg.signals if s not in values]
    if missing:
        raise StgError(
            f"cannot infer initial values for {missing} (signals never fire); "
            "add an .initial directive"
        )
    return values


def build_state_graph(stg: Stg, cap: int = 1_000_000) -> StateGraph:
    """Reachability with safeness and consistency checking."""
    if stg.initial_values is not None:
        values = dict(stg.initial_values)
        missing = [s for s in stg.signals if s not in values]
        if missing:
            raise StgError(f".initial missing signals {missing}")
    else:
        values = _infer_initial_values(stg, cap)
    code0 = 0
    for i, sig in enumerate(stg.signals):
        if values[sig]:
            code0 |= 1 << i
    sg = StateGraph(stg=stg)
    start = (stg.initial_marking, code0)
    sg.states.append(start)
    sg.index[start] = 0
    sg.edges.append([])
    queue = deque([0])
    bit_of = {sig: i for i, sig in enumerate(stg.signals)}
    while queue:
        sid = queue.popleft()
        marking, code = sg.states[sid]
        for t in stg.enabled(marking):
            bitpos = bit_of[t.signal]
            value = (code >> bitpos) & 1
            if t.direction > 0 and value == 1:
                raise ConsistencyError(
                    f"{stg.name}: {t} fires with {t.signal}=1 "
                    f"(state code {code:0{len(stg.signals)}b})"
                )
            if t.direction < 0 and value == 0:
                raise ConsistencyError(
                    f"{stg.name}: {t} fires with {t.signal}=0 "
                    f"(state code {code:0{len(stg.signals)}b})"
                )
            nmarking = stg.fire(marking, t)  # raises SafenessError if unsafe
            ncode = code ^ (1 << bitpos)
            key = (nmarking, ncode)
            nid = sg.index.get(key)
            if nid is None:
                if len(sg.states) >= cap:
                    raise StgError(f"{stg.name}: state graph exceeds {cap} states")
                nid = len(sg.states)
                sg.states.append(key)
                sg.index[key] = nid
                sg.edges.append([])
                queue.append(nid)
            sg.edges[sid].append((t, nid))
    return sg


def check_csc(sg: StateGraph) -> List[Tuple[int, int, str]]:
    """Return CSC conflicts as (state_id, state_id, signal) triples.

    Two reachable states conflict when they share a binary code but
    disagree on the next-state value of some non-input signal — then no
    logic function of the signal values can implement that signal.
    """
    conflicts: List[Tuple[int, int, str]] = []
    by_code: Dict[int, List[int]] = {}
    for sid in range(sg.n_states):
        by_code.setdefault(sg.code_of(sid), []).append(sid)
    for code, sids in by_code.items():
        if len(sids) < 2:
            continue
        for signal in sg.stg.non_input_signals:
            values = {sg.next_state_value(sid, signal) for sid in sids}
            if len(values) > 1:
                # Report one representative pair per (code, signal).
                lo = min(s for s in sids if sg.next_state_value(s, signal) == 0)
                hi = min(s for s in sids if sg.next_state_value(s, signal) == 1)
                conflicts.append((lo, hi, signal))
    return conflicts


def require_csc(sg: StateGraph) -> None:
    """Raise :class:`CscError` when the state graph violates CSC."""
    conflicts = check_csc(sg)
    if conflicts:
        nbits = len(sg.stg.signals)
        lines = [
            f"code {sg.code_of(a):0{nbits}b}: NS({sig}) differs "
            f"(states {a} vs {b})"
            for a, b, sig in conflicts[:5]
        ]
        raise CscError(
            f"{sg.stg.name}: {len(conflicts)} CSC conflict(s); e.g. "
            + "; ".join(lines)
        )
