"""STGs as labeled safe Petri nets.

An STG is a Petri net whose transitions are labeled with signal edges
(``a+`` / ``a-``).  We keep the net explicit: named places connect
transitions; arcs written directly between two transitions in a ``.g``
file get an *implicit* place named ``<t,t'>``, following astg convention.

Only safe (1-bounded) nets are supported — firing into a marked place
raises :class:`~repro.errors.SafenessError` during reachability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import SafenessError, StgError

Marking = FrozenSet[int]


@dataclass(frozen=True)
class Transition:
    """A signal edge occurrence: ``a+``, ``b-``, possibly ``a+/2``."""

    label: str  # full label including instance suffix
    signal: str
    direction: int  # +1 for rise, -1 for fall
    index: int

    def __str__(self):
        return self.label


def parse_transition_label(label: str) -> Tuple[str, int]:
    """Split ``a+/2`` into ("a", +1).  Raises StgError on bad labels."""
    base = label.split("/", 1)[0]
    if base.endswith("+"):
        return base[:-1], +1
    if base.endswith("-"):
        return base[:-1], -1
    raise StgError(f"transition label {label!r} must end in + or - (before /n)")


class Stg:
    """A finalized STG.  Build with :class:`StgBuilder` or the parser."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        internal: Sequence[str],
        transitions: Sequence[Transition],
        place_names: Sequence[str],
        t_in_places: Sequence[FrozenSet[int]],
        t_out_places: Sequence[FrozenSet[int]],
        initial_marking: Marking,
        initial_values: Optional[Dict[str, int]] = None,
    ):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.internal = tuple(internal)
        self.transitions = tuple(transitions)
        self.place_names = tuple(place_names)
        self.t_in_places = tuple(t_in_places)
        self.t_out_places = tuple(t_out_places)
        self.initial_marking = initial_marking
        self.initial_values = dict(initial_values) if initial_values else None
        self._validate()

    # -- structure -------------------------------------------------------

    @property
    def signals(self) -> Tuple[str, ...]:
        """All signals: inputs, then outputs, then internal.  This order
        defines bit positions of state-graph codes."""
        return self.inputs + self.outputs + self.internal

    @property
    def non_input_signals(self) -> Tuple[str, ...]:
        return self.outputs + self.internal

    def is_input(self, signal: str) -> bool:
        return signal in self.inputs

    @property
    def n_places(self) -> int:
        return len(self.place_names)

    def transitions_of(self, signal: str) -> List[Transition]:
        return [t for t in self.transitions if t.signal == signal]

    def _validate(self) -> None:
        sigs = set(self.signals)
        if len(sigs) != len(self.signals):
            raise StgError(f"duplicate signal declarations in {self.name}")
        for t in self.transitions:
            if t.signal not in sigs:
                raise StgError(f"transition {t} on undeclared signal {t.signal!r}")
            if not self.t_in_places[t.index]:
                raise StgError(f"transition {t} has no input places (always enabled)")
        used = set()
        for s in self.t_in_places:
            used |= s
        for s in self.t_out_places:
            used |= s
        for p in self.initial_marking:
            used.add(p)
        if used != set(range(self.n_places)):
            orphan = set(range(self.n_places)) - used
            names = [self.place_names[p] for p in orphan]
            raise StgError(f"disconnected places in {self.name}: {names}")

    # -- token game --------------------------------------------------------

    def enabled(self, marking: Marking) -> List[Transition]:
        """Transitions whose every input place is marked."""
        return [
            t
            for t in self.transitions
            if self.t_in_places[t.index] <= marking
        ]

    def fire(self, marking: Marking, t: Transition) -> Marking:
        """Fire ``t``; raises SafenessError if a token lands on a marked
        place (the net would not be 1-bounded)."""
        pre = self.t_in_places[t.index]
        post = self.t_out_places[t.index]
        if not pre <= marking:
            raise StgError(f"transition {t} is not enabled")
        after_remove = marking - pre
        clash = after_remove & post
        if clash:
            names = [self.place_names[p] for p in clash]
            raise SafenessError(
                f"firing {t} puts a second token on place(s) {names}"
            )
        return after_remove | post


class StgBuilder:
    """Incremental STG construction used by the parser and by tests."""

    def __init__(self, name: str = "stg"):
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.internal: List[str] = []
        self._transitions: Dict[str, int] = {}
        self._t_list: List[Transition] = []
        self._places: Dict[str, int] = {}
        self._t_in: List[set] = []
        self._t_out: List[set] = []
        self._p_declared: List[str] = []
        self.initial_marking_tokens: List[str] = []
        self.initial_values: Optional[Dict[str, int]] = None

    def add_signal(self, name: str, kind: str) -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise StgError(f"invalid signal name {name!r}")
        target = {"input": self.inputs, "output": self.outputs,
                  "internal": self.internal}.get(kind)
        if target is None:
            raise StgError(f"unknown signal kind {kind!r}")
        if name in self.inputs or name in self.outputs or name in self.internal:
            raise StgError(f"duplicate signal declaration {name!r}")
        target.append(name)

    def _transition(self, label: str) -> int:
        idx = self._transitions.get(label)
        if idx is None:
            signal, direction = parse_transition_label(label)
            idx = len(self._t_list)
            self._transitions[label] = idx
            self._t_list.append(Transition(label, signal, direction, idx))
            self._t_in.append(set())
            self._t_out.append(set())
        return idx

    def _place(self, name: str) -> int:
        idx = self._places.get(name)
        if idx is None:
            idx = len(self._p_declared)
            self._places[name] = idx
            self._p_declared.append(name)
        return idx

    def is_transition_token(self, token: str) -> bool:
        """A ``.graph`` token is a transition iff its base ends in +/-."""
        base = token.split("/", 1)[0]
        return base.endswith("+") or base.endswith("-")

    def add_arc(self, src: str, dst: str) -> None:
        """Arc between two ``.graph`` tokens; transition->transition arcs
        get an implicit place named ``<src,dst>``."""
        s_trans = self.is_transition_token(src)
        d_trans = self.is_transition_token(dst)
        if s_trans and d_trans:
            p = self._place(f"<{src},{dst}>")
            self._t_out[self._transition(src)].add(p)
            self._t_in[self._transition(dst)].add(p)
        elif s_trans and not d_trans:
            self._t_out[self._transition(src)].add(self._place(dst))
        elif not s_trans and d_trans:
            self._t_in[self._transition(dst)].add(self._place(src))
        else:
            raise StgError(f"arc {src} -> {dst} connects two places")

    def set_marking(self, tokens: Sequence[str]) -> None:
        self.initial_marking_tokens = list(tokens)

    def set_initial_values(self, values: Dict[str, int]) -> None:
        self.initial_values = dict(values)

    def build(self) -> Stg:
        marking = set()
        for token in self.initial_marking_tokens:
            if token not in self._places:
                raise StgError(f"marking references unknown place {token!r}")
            marking.add(self._places[token])
        return Stg(
            name=self.name,
            inputs=self.inputs,
            outputs=self.outputs,
            internal=self.internal,
            transitions=self._t_list,
            place_names=self._p_declared,
            t_in_places=[frozenset(s) for s in self._t_in],
            t_out_places=[frozenset(s) for s in self._t_out],
            initial_marking=frozenset(marking),
            initial_values=self.initial_values,
        )
