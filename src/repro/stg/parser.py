"""Parser for the textual ``.g`` (astg) STG format.

Supported directives::

    .model NAME            # optional
    .inputs a b ...
    .outputs c d ...
    .internal x ...        # CSC helper signals
    .graph                 # then one line per arc fan-out:
    a+ b+ c-               #   arcs a+ -> b+ and a+ -> c-
    p0 a+                  #   explicit place p0 -> a+
    b+ p0
    .marking { p0 <a+,b+> }
    .initial a=0 b=1 ...   # extension: initial signal values (else inferred)
    .end

Transition tokens end in ``+``/``-`` with an optional ``/n`` instance
suffix; anything else in ``.graph`` is an explicit place name.  Implicit
places in the marking use the astg ``<src,dst>`` syntax.  Dummy
transitions are not supported (they never occur in our benchmark set).
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import ParseError, StgError
from repro.stg.petrinet import Stg, StgBuilder

_MARK_TOKEN = re.compile(r"<[^<>]+>|[^\s<>]+")


def _marking_tokens(body: str) -> List[str]:
    """Tokenize a ``.marking`` body, rejecting unbalanced ``<``/``>``.

    ``_MARK_TOKEN`` alone would silently *drop* a stray angle bracket
    (``<a+,b+`` tokenizes as ``a+,b+``), turning a syntax error into a
    baffling unknown-place complaint downstream.  Any character the
    token regex does not cover is therefore a syntax error, reported
    with the whitespace-delimited chunk it sits in.
    """
    covered = bytearray(len(body))
    tokens: List[str] = []
    for m in _MARK_TOKEN.finditer(body):
        tokens.append(m.group())
        for i in range(*m.span()):
            covered[i] = 1
    for i, ch in enumerate(body):
        if ch.isspace() or covered[i]:
            continue
        start, end = i, i
        while start > 0 and not body[start - 1].isspace():
            start -= 1
        while end < len(body) and not body[end].isspace():
            end += 1
        raise StgError(f"unbalanced marking token {body[start:end]!r}")
    return tokens


def parse_stg(text: str, filename: str = "<string>") -> Stg:
    """Parse ``.g`` source text into a validated :class:`Stg`."""
    builder = StgBuilder()
    in_graph = False
    saw_marking = False
    marking_lineno = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        try:
            if head == ".model":
                builder.name = tokens[1] if len(tokens) > 1 else builder.name
            elif head in (".inputs", ".outputs", ".internal"):
                kind = {".inputs": "input", ".outputs": "output",
                        ".internal": "internal"}[head]
                for name in tokens[1:]:
                    builder.add_signal(name, kind)
            elif head == ".dummy":
                raise StgError("dummy transitions are not supported")
            elif head == ".graph":
                in_graph = True
            elif head == ".marking":
                body = line[len(".marking"):].strip()
                if not (body.startswith("{") and body.endswith("}")):
                    raise StgError(".marking expects { ... }")
                builder.set_marking(_marking_tokens(body[1:-1]))
                saw_marking = True
                marking_lineno = lineno
            elif head == ".initial":
                values = {}
                for tok in tokens[1:]:
                    if "=" not in tok:
                        raise StgError(f"bad .initial assignment {tok!r}")
                    sig, val = tok.split("=", 1)
                    if val not in ("0", "1"):
                        raise StgError(f".initial value must be 0/1 in {tok!r}")
                    values[sig] = int(val)
                builder.set_initial_values(values)
            elif head == ".end":
                break
            elif head.startswith("."):
                raise StgError(f"unknown directive {head!r}")
            else:
                if not in_graph:
                    raise StgError(f"arc line before .graph: {line!r}")
                if len(tokens) < 2:
                    raise StgError(f"arc line needs a source and targets: {line!r}")
                for dst in tokens[1:]:
                    builder.add_arc(head, dst)
        except StgError as exc:
            raise ParseError(str(exc), filename, lineno) from None
    if not saw_marking:
        raise ParseError("missing .marking", filename, 0)
    try:
        return builder.build()
    except StgError as exc:
        # Unknown-place complaints come from the marking tokens, so
        # point at the .marking line rather than "somewhere".
        at = marking_lineno if "marking references" in str(exc) else 0
        raise ParseError(str(exc), filename, at) from None


def load_stg(path) -> Stg:
    """Parse a ``.g`` file from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_stg(f.read(), filename=str(path))


def stg_to_text(stg: Stg) -> str:
    """Serialize an STG back to ``.g`` text (round-trip aid for tests)."""
    lines: List[str] = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internal:
        lines.append(".internal " + " ".join(stg.internal))
    lines.append(".graph")
    # Emit arcs through places; implicit places print as bare arcs.
    implicit = re.compile(r"^<([^<>]+),([^<>]+)>$")
    for p, name in enumerate(stg.place_names):
        producers = [t.label for t in stg.transitions if p in stg.t_out_places[t.index]]
        consumers = [t.label for t in stg.transitions if p in stg.t_in_places[t.index]]
        if implicit.match(name) and len(producers) == 1 and len(consumers) == 1:
            lines.append(f"{producers[0]} {consumers[0]}")
        else:
            for src in producers:
                lines.append(f"{src} {name}")
            for dst in consumers:
                lines.append(f"{name} {dst}")
    marked = " ".join(stg.place_names[p] for p in sorted(stg.initial_marking))
    lines.append(".marking { " + marked + " }")
    if stg.initial_values is not None:
        parts = " ".join(f"{s}={v}" for s, v in sorted(stg.initial_values.items()))
        lines.append(".initial " + parts)
    lines.append(".end")
    return "\n".join(lines) + "\n"
