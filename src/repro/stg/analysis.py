"""Structural and behavioural health analysis of STGs.

Used by the benchmark validator and available to users designing their
own specifications.  Checks beyond the hard errors of reachability:

* **free-choice** — every conflict place (more than one consumer) is the
  *sole* input place of each of its consumers, so choices are never
  entangled with synchronization (all our benchmarks are free-choice);
* **input-choice** — conflict places feed transitions of input signals
  only: the *environment* resolves choices, the circuit stays
  deterministic (required for the deterministic CSSG abstraction);
* **output persistency** — on the reachable state graph, an enabled
  non-input transition is never disabled by firing another transition
  (the speed-independence condition of [3]; violating it means even the
  specification itself races);
* **autonomy** — signals that never fire (dead logic in the making).

``analyse_stg`` bundles everything into one report object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.stg.petrinet import Stg, Transition
from repro.stg.reachability import StateGraph, build_state_graph, check_csc


@dataclass
class StgReport:
    """Bundled analysis results (empty lists mean 'healthy')."""

    stg: Stg
    n_states: int
    non_free_choice_places: List[str] = field(default_factory=list)
    non_input_choice_places: List[str] = field(default_factory=list)
    persistency_violations: List[Tuple[str, str]] = field(default_factory=list)
    dead_signals: List[str] = field(default_factory=list)
    csc_conflicts: int = 0

    @property
    def healthy(self) -> bool:
        return not (
            self.non_free_choice_places
            or self.non_input_choice_places
            or self.persistency_violations
            or self.dead_signals
            or self.csc_conflicts
        )

    def summary(self) -> str:
        if self.healthy:
            return (
                f"{self.stg.name}: healthy ({self.n_states} states, "
                "free-choice, input-resolved, persistent, CSC)"
            )
        issues = []
        if self.non_free_choice_places:
            issues.append(f"non-free-choice places {self.non_free_choice_places}")
        if self.non_input_choice_places:
            issues.append(f"output-resolved choices {self.non_input_choice_places}")
        if self.persistency_violations:
            issues.append(f"persistency violations {self.persistency_violations[:3]}")
        if self.dead_signals:
            issues.append(f"dead signals {self.dead_signals}")
        if self.csc_conflicts:
            issues.append(f"{self.csc_conflicts} CSC conflicts")
        return f"{self.stg.name}: " + "; ".join(issues)


def _consumers(stg: Stg, place: int) -> List[Transition]:
    return [t for t in stg.transitions if place in stg.t_in_places[t.index]]


def check_free_choice(stg: Stg) -> List[str]:
    """Places violating the free-choice condition."""
    bad = []
    for place in range(stg.n_places):
        consumers = _consumers(stg, place)
        if len(consumers) > 1:
            for t in consumers:
                if stg.t_in_places[t.index] != frozenset([place]):
                    bad.append(stg.place_names[place])
                    break
    return bad


def check_input_choice(stg: Stg) -> List[str]:
    """Conflict places resolved by non-input transitions."""
    bad = []
    for place in range(stg.n_places):
        consumers = _consumers(stg, place)
        if len(consumers) > 1:
            if any(not stg.is_input(t.signal) for t in consumers):
                bad.append(stg.place_names[place])
    return bad


def check_persistency(sg: StateGraph) -> List[Tuple[str, str]]:
    """(disabled, by) label pairs where a non-input enabled transition
    is disabled by firing another transition."""
    stg = sg.stg
    violations: Set[Tuple[str, str]] = set()
    for sid in range(sg.n_states):
        enabled_here = {t.label: t for t, _ in sg.edges[sid]}
        for t, nid in sg.edges[sid]:
            enabled_next = {u.label for u, _ in sg.edges[nid]}
            for label, other in enabled_here.items():
                if label == t.label:
                    continue
                if stg.is_input(other.signal):
                    continue  # environment may withdraw its own offers
                if label not in enabled_next:
                    violations.add((label, t.label))
    return sorted(violations)


def check_dead_signals(sg: StateGraph) -> List[str]:
    """Signals with no transition anywhere in the reachable graph."""
    fired: Set[str] = set()
    for sid in range(sg.n_states):
        for t, _ in sg.edges[sid]:
            fired.add(t.signal)
    return [s for s in sg.stg.signals if s not in fired]


def analyse_stg(stg: Stg, sg: Optional[StateGraph] = None) -> StgReport:
    """Run the full battery and return a report."""
    if sg is None:
        sg = build_state_graph(stg)
    return StgReport(
        stg=stg,
        n_states=sg.n_states,
        non_free_choice_places=check_free_choice(stg),
        non_input_choice_places=check_input_choice(stg),
        persistency_violations=check_persistency(sg),
        dead_signals=check_dead_signals(sg),
        csc_conflicts=len(check_csc(sg)),
    )
