"""Two-level logic minimization: Quine–McCluskey with don't-cares.

Small and exact — our next-state functions have at most ~10 variables, so
the classic algorithm is entirely adequate (Espresso would be overkill).

Cubes are (ones, dashes) pairs over ``nv`` variables: a dash bit means
the variable is absent from the product term; otherwise the ``ones`` bit
gives its polarity.  Three cover flavours are offered:

* ``compute_primes`` — all prime implicants (the *complete sum*); used by
  the SIS-style back end, whose extra primes model the redundancy SIS
  introduces for hazard freedom (paper §6: redundant circuits test badly);
* ``irredundant_cover`` — essential primes plus a greedy set cover; used
  by the speed-independent complex-gate back end;
* ``exact_cover`` — branch-and-bound minimum cover, practical for the
  benchmark sizes and used by tests as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True, order=True)
class Cube:
    """A product term: variable i is absent when dash bit i is set,
    otherwise it appears with polarity (ones >> i) & 1."""

    ones: int
    dashes: int

    def covers(self, minterm: int) -> bool:
        return (minterm & ~self.dashes) == (self.ones & ~self.dashes)

    def literals(self, nv: int) -> List[Tuple[int, int]]:
        """(variable index, polarity) pairs of this product."""
        out = []
        for i in range(nv):
            if not (self.dashes >> i) & 1:
                out.append((i, (self.ones >> i) & 1))
        return out

    def __str__(self):
        # LSB-first dash notation, e.g. "1-0" for x0 & ~x2.
        return "cube(ones={:b}, dashes={:b})".format(self.ones, self.dashes)


def compute_primes(on: Iterable[int], dc: Iterable[int], nv: int) -> List[Cube]:
    """All prime implicants of the (ON, DC) incompletely-specified
    function, filtered to those covering at least one ON minterm.

    The merge loop works on raw ``(ones, dashes)`` int pairs grouped by
    dash mask; ``Cube`` objects are only materialized for the surviving
    primes.  Dataclass hashing in the inner loop dominated synthesis of
    the larger benchmarks (millions of throwaway cubes on vbe10b).
    """
    on = set(on)
    dc = set(dc) - on
    bits = [1 << i for i in range(nv)]
    current: Dict[int, Set[int]] = {0: set(on | dc)}
    primes: List[Tuple[int, int]] = []
    while current:
        next_level: Dict[int, Set[int]] = {}
        for dashes, values in current.items():
            free = [b for b in bits if not (dashes & b)]
            combined: Set[int] = set()
            for ones in values:
                for b in free:
                    if ones & b:
                        continue
                    partner = ones | b
                    if partner in values:
                        next_level.setdefault(dashes | b, set()).add(ones)
                        combined.add(ones)
                        combined.add(partner)
            for ones in values - combined:
                primes.append((ones, dashes))
        current = next_level
    return sorted(
        c
        for c in (Cube(ones, dashes) for ones, dashes in primes)
        if any(c.covers(m) for m in on)
    )


def _coverage(primes: Sequence[Cube], on: Set[int]) -> Dict[Cube, FrozenSet[int]]:
    return {p: frozenset(m for m in on if p.covers(m)) for p in primes}


def irredundant_cover(
    primes: Sequence[Cube], on: Iterable[int]
) -> List[Cube]:
    """Essential primes + greedy completion, then redundancy pruning.

    The result covers every ON minterm and contains no cube whose removal
    leaves the cover complete (it is irredundant, not necessarily
    minimum).
    """
    on = set(on)
    if not on:
        return []
    cov = _coverage(primes, on)
    chosen: List[Cube] = []
    covered: Set[int] = set()
    # Essential primes: sole cover of some minterm.
    for m in on:
        owners = [p for p in primes if m in cov[p]]
        if len(owners) == 1 and owners[0] not in chosen:
            chosen.append(owners[0])
            covered |= cov[owners[0]]
    # Greedy for the rest.
    remaining = on - covered
    pool = [p for p in primes if p not in chosen]
    while remaining:
        best = max(pool, key=lambda p: (len(cov[p] & remaining), -bin(p.dashes).count("0")))
        gain = cov[best] & remaining
        if not gain:
            raise ValueError("prime set cannot cover the ON set (internal bug)")
        chosen.append(best)
        covered |= gain
        remaining -= gain
        pool.remove(best)
    # Prune now-redundant cubes (later greedy picks can obsolete earlier ones).
    pruned = list(chosen)
    for cube in sorted(chosen, key=lambda p: len(cov[p])):
        rest = [c for c in pruned if c != cube]
        if rest and set().union(*(cov[c] for c in rest)) >= on:
            pruned = rest
    return sorted(pruned)


def hazard_aware_cover(
    primes: Sequence[Cube],
    on: Iterable[int],
    pairs: Iterable[Tuple[int, int]],
) -> Tuple[List[Cube], List[Tuple[int, int]]]:
    """Greedy cover of ON minterms *and* static-1 hand-off pairs.

    ``pairs`` are (code, code') endpoints of single-signal transitions
    across which the function stays 1; a hazard-free SOP realization with
    per-product gates needs one cube covering *both* endpoints, else the
    OR gate can glitch while products hand off (Eichelberger/Unger).

    Returns ``(cover, uncoverable_pairs)`` — pairs no prime spans are
    reported rather than fatal (such functions admit no hazard-free
    two-level cover; the CSSG will simply prune the affected vectors).
    """
    on = set(on)
    pairs = set(pairs)
    coverable = {
        pair: [p for p in primes if p.covers(pair[0]) and p.covers(pair[1])]
        for pair in pairs
    }
    uncoverable = sorted(pair for pair, owners in coverable.items() if not owners)
    items: Set[object] = set(on) | {
        ("pair",) + pair for pair in pairs if coverable[pair]
    }

    def items_of(p: Cube) -> Set[object]:
        got: Set[object] = {m for m in on if p.covers(m)}
        for pair in pairs:
            if p.covers(pair[0]) and p.covers(pair[1]):
                got.add(("pair",) + pair)
        return got

    cov = {p: frozenset(items_of(p)) for p in primes}
    chosen: List[Cube] = []
    covered: Set[object] = set()
    for item in items:
        owners = [p for p in primes if item in cov[p]]
        if len(owners) == 1 and owners[0] not in chosen:
            chosen.append(owners[0])
            covered |= cov[owners[0]]
    remaining = items - covered
    pool = [p for p in primes if p not in chosen]
    while remaining:
        best = max(pool, key=lambda p: (len(cov[p] & remaining), p.dashes))
        gain = cov[best] & remaining
        if not gain:
            raise ValueError("prime set cannot cover required items (internal bug)")
        chosen.append(best)
        covered |= gain
        remaining -= gain
        pool.remove(best)
    pruned = list(chosen)
    for cube in sorted(chosen, key=lambda p: len(cov[p])):
        rest = [c for c in pruned if c != cube]
        if rest and set().union(*(cov[c] for c in rest)) >= items:
            pruned = rest
    return sorted(pruned), uncoverable


def exact_cover(primes: Sequence[Cube], on: Iterable[int]) -> List[Cube]:
    """Minimum-cardinality prime cover via branch and bound (test oracle)."""
    on = sorted(set(on))
    if not on:
        return []
    cov = _coverage(primes, set(on))
    best: Optional[List[Cube]] = None

    def search(remaining: FrozenSet[int], chosen: List[Cube]):
        nonlocal best
        if best is not None and len(chosen) >= len(best):
            return
        if not remaining:
            best = list(chosen)
            return
        # Branch on the hardest minterm (fewest covering primes).
        m = min(remaining, key=lambda x: sum(1 for p in primes if x in cov[p]))
        for p in primes:
            if m in cov[p]:
                search(remaining - cov[p], chosen + [p])

    search(frozenset(on), [])
    assert best is not None
    return sorted(best)


def cover_eval(cover: Sequence[Cube], minterm: int) -> int:
    """Evaluate a cover at a minterm (1 when any cube covers it)."""
    return 1 if any(c.covers(minterm) for c in cover) else 0


def verify_cover(
    cover: Sequence[Cube], on: Iterable[int], off: Iterable[int]
) -> bool:
    """True when the cover is 1 on all of ON and 0 on all of OFF."""
    return all(cover_eval(cover, m) for m in on) and not any(
        cover_eval(cover, m) for m in off
    )
