"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Malformed circuit construction (bad names, undriven signals...)."""


class ParseError(ReproError):
    """Syntactic error in a netlist (.net) or STG (.g) source file."""

    def __init__(self, message: str, filename: str = "<string>", line: int = 0):
        self.filename = filename
        self.line = line
        super().__init__(f"{filename}:{line}: {message}" if line else message)


class SimulationError(ReproError):
    """Simulation invoked with inconsistent state or options."""


class StateGraphError(ReproError):
    """TCSG/CSSG construction failure (unstable reset, explosion...)."""


class StgError(ReproError):
    """Semantic error in a signal transition graph."""


class ConsistencyError(StgError):
    """The STG fires s+ when s=1 or s- when s=0 on some reachable path."""


class SafenessError(StgError):
    """Token count on some place exceeds one (the net is not safe)."""


class CscError(StgError):
    """Complete State Coding violation: two reachable states share a
    binary code but disagree on the next-state function of an output."""


class SynthesisError(StgError):
    """Logic synthesis could not produce a circuit."""


class BddError(ReproError):
    """BDD manager misuse (foreign nodes, bad variable indices...)."""
