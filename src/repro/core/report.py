"""Result tables in the layout of the paper's Tables 1 and 2.

Each row: benchmark name, output stuck-at tot/cov, input stuck-at
tot/cov, then the input-model detections split into the random ("rnd"),
3-phase ("3-ph") and fault-simulation ("sim") steps, and CPU seconds.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.atpg import AtpgResult


@dataclass
class TableRow:
    """One benchmark line of a Table 1/2-style report.

    ``aborted`` and ``abort_reasons`` surface the flow's abort ledger
    (input-model run): how many faults were given up on and why, e.g.
    ``"budget:3,product-states:1"`` — empty when nothing aborted.

    ``cssg_states`` / ``cssg_edges`` are the constructed graph's size
    and ``cssg_method`` the resolved construction method;
    ``tcsg_states`` is the total test-mode reachable state count (the
    paper-table metric, computed by the symbolic builder; 0 = not
    computed).  ``peak_bdd_nodes`` / ``gc_passes`` / ``image_iters``
    profile the symbolic kernel, zero for explicit constructions.

    ``models`` carries the coverage of any *non-stuck-at* fault-model
    runs of the variant as compact ``model:covered/total`` entries,
    space-separated — e.g. ``"bridging:140/156 transition:44/46"`` —
    empty when only the paper's two stuck-at universes ran (whose
    counts keep their historical dedicated columns).

    ``stage_seconds`` / ``bdd_cache_hits`` / ``bdd_cache_lookups`` are
    telemetry-derived: per-stage wall times as compact
    ``stage:seconds`` entries and the BDD unique/apply cache traffic of
    the input-model run.  They are filled only when the result carries
    a ``telemetry`` block (runs under ``--metrics`` / an active tracer)
    and stay at their empty/zero defaults otherwise — the columns are
    always present, only the values are opt-in.
    """

    name: str
    out_tot: int
    out_cov: int
    in_tot: int
    in_cov: int
    rnd: int
    three_ph: int
    sim: int
    cpu: float
    aborted: int = 0
    abort_reasons: str = ""
    cssg_method: str = ""
    cssg_states: int = 0
    cssg_edges: int = 0
    tcsg_states: int = 0
    peak_bdd_nodes: int = 0
    gc_passes: int = 0
    reorders: int = 0
    image_iters: int = 0
    models: str = ""
    stage_seconds: str = ""
    bdd_cache_hits: int = 0
    bdd_cache_lookups: int = 0

    @property
    def out_fc(self) -> float:
        return self.out_cov / self.out_tot if self.out_tot else 1.0

    @property
    def in_fc(self) -> float:
        return self.in_cov / self.in_tot if self.in_tot else 1.0

    def to_dict(self) -> Dict:
        """Plain-JSON form, derived coverages included."""
        return {
            "name": self.name,
            "out_tot": self.out_tot,
            "out_cov": self.out_cov,
            "out_fc": self.out_fc,
            "in_tot": self.in_tot,
            "in_cov": self.in_cov,
            "in_fc": self.in_fc,
            "rnd": self.rnd,
            "three_ph": self.three_ph,
            "sim": self.sim,
            "cpu": self.cpu,
            "aborted": self.aborted,
            "abort_reasons": self.abort_reasons,
            "cssg_method": self.cssg_method,
            "cssg_states": self.cssg_states,
            "cssg_edges": self.cssg_edges,
            "tcsg_states": self.tcsg_states,
            "peak_bdd_nodes": self.peak_bdd_nodes,
            "gc_passes": self.gc_passes,
            "reorders": self.reorders,
            "image_iters": self.image_iters,
            "models": self.models,
            "stage_seconds": self.stage_seconds,
            "bdd_cache_hits": self.bdd_cache_hits,
            "bdd_cache_lookups": self.bdd_cache_lookups,
        }


def format_model_counts(counts: Dict[str, Sequence[int]]) -> str:
    """Render extra-model coverage as ``model:covered/total`` entries,
    model-name sorted — the :attr:`TableRow.models` column format.

    >>> format_model_counts({"transition": (44, 46), "bridging": (140, 156)})
    'bridging:140/156 transition:44/46'
    """
    return " ".join(
        f"{model}:{covered}/{total}"
        for model, (covered, total) in sorted(counts.items())
    )


def format_stage_seconds(stage_seconds: Dict[str, float]) -> str:
    """Render the telemetry ``stage_seconds`` map as compact
    ``stage:seconds`` entries in flow order (insertion order of the
    map, which the flow writes stage by stage).

    >>> format_stage_seconds({"collapse": 0.001, "random-tpg": 0.25})
    'collapse:0.001 random-tpg:0.25'
    """
    return " ".join(f"{name}:{dt:g}" for name, dt in stage_seconds.items())


def telemetry_columns(telemetry: Optional[Dict]) -> Dict[str, object]:
    """The :class:`TableRow` fields derived from a result's optional
    ``telemetry`` block; empty defaults when the block is absent.

    >>> telemetry_columns(None)
    {'stage_seconds': '', 'bdd_cache_hits': 0, 'bdd_cache_lookups': 0}
    >>> telemetry_columns({"stage_seconds": {"compaction": 0.02},
    ...                    "bdd": {"cache_hits": 7, "cache_lookups": 9}})
    {'stage_seconds': 'compaction:0.02', 'bdd_cache_hits': 7, 'bdd_cache_lookups': 9}
    """
    tel = telemetry or {}
    bdd = tel.get("bdd") or {}
    return {
        "stage_seconds": format_stage_seconds(tel.get("stage_seconds") or {}),
        "bdd_cache_hits": int(bdd.get("cache_hits", 0)),
        "bdd_cache_lookups": int(bdd.get("cache_lookups", 0)),
    }


def result_row(
    name: str,
    output_result: Optional[AtpgResult],
    input_result: AtpgResult,
    extra_results: Optional[Dict[str, AtpgResult]] = None,
) -> TableRow:
    """Combine the fault-model runs of one benchmark into a row.

    ``extra_results`` maps non-stuck-at model names (``bridging``,
    ``transition``, ...) to their results; they land in the compact
    :attr:`TableRow.models` column."""
    reasons = input_result.abort_reasons()
    cssg = input_result.cssg
    models = format_model_counts(
        {
            model: (res.n_covered, res.n_total)
            for model, res in (extra_results or {}).items()
        }
    )
    return TableRow(
        name=name,
        out_tot=output_result.n_total if output_result else 0,
        out_cov=output_result.n_covered if output_result else 0,
        in_tot=input_result.n_total,
        in_cov=input_result.n_covered,
        rnd=input_result.n_random,
        three_ph=input_result.n_three_phase,
        sim=input_result.n_fault_sim,
        cpu=(input_result.cpu_seconds
             + (output_result.cpu_seconds if output_result else 0.0)
             + sum(r.cpu_seconds for r in (extra_results or {}).values())),
        aborted=input_result.n_aborted,
        abort_reasons=",".join(f"{k}:{v}" for k, v in reasons.items()),
        cssg_method=cssg.method,
        cssg_states=cssg.n_states,
        cssg_edges=cssg.n_edges,
        tcsg_states=cssg.n_tcsg_states,
        peak_bdd_nodes=cssg.peak_bdd_nodes,
        gc_passes=cssg.n_gc_passes,
        reorders=cssg.n_reorders,
        image_iters=cssg.n_image_iterations,
        models=models,
        **telemetry_columns(input_result.telemetry),
    )


def format_table(rows: Sequence[TableRow], title: str = "") -> str:
    """Render rows in the paper's column layout, plus total FC lines."""
    header = (
        f"{'example':<18} {'o-tot':>6} {'o-cov':>6} {'i-tot':>6} {'i-cov':>6} "
        f"{'rnd':>5} {'3-ph':>5} {'sim':>4} {'CPU(s)':>8}"
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        line = (
            f"{r.name:<18} {r.out_tot:>6} {r.out_cov:>6} {r.in_tot:>6} "
            f"{r.in_cov:>6} {r.rnd:>5} {r.three_ph:>5} {r.sim:>4} {r.cpu:>8.2f}"
        )
        if r.models:
            line += f"  {r.models}"  # extra fault-model runs of this variant
        lines.append(line)
    lines.append("-" * len(header))
    out_tot = sum(r.out_tot for r in rows)
    out_cov = sum(r.out_cov for r in rows)
    in_tot = sum(r.in_tot for r in rows)
    in_cov = sum(r.in_cov for r in rows)
    if out_tot:
        lines.append(f"Total output-stuck-at FC: {100.0 * out_cov / out_tot:.2f}%")
    if in_tot:
        lines.append(f"Total input-stuck-at  FC: {100.0 * in_cov / in_tot:.2f}%")
    return "\n".join(lines)


#: Column order of :func:`to_csv`, matching :meth:`TableRow.to_dict` keys.
CSV_COLUMNS = (
    "name", "out_tot", "out_cov", "out_fc", "in_tot", "in_cov", "in_fc",
    "rnd", "three_ph", "sim", "cpu", "aborted", "abort_reasons",
    "cssg_method", "cssg_states", "cssg_edges", "tcsg_states",
    "peak_bdd_nodes", "gc_passes", "reorders", "image_iters", "models",
    "stage_seconds", "bdd_cache_hits", "bdd_cache_lookups",
)


def to_csv(rows: Sequence[TableRow]) -> str:
    """Render rows as CSV with a header line — the machine-readable twin
    of :func:`format_table`; campaign artifacts use it verbatim."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row.to_dict())
    return buf.getvalue()


def to_json(rows: Sequence[TableRow], indent: Optional[int] = 2) -> str:
    """Render rows as a JSON array of :meth:`TableRow.to_dict` objects."""
    return json.dumps([row.to_dict() for row in rows], indent=indent)
