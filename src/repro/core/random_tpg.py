"""Random test pattern generation on the CSSG (paper §5.4).

Random TPG walks the CSSG from the reset state choosing a uniformly random
valid input vector at each step, while a :class:`FaultBatch` simulates all
still-undetected faulty machines in parallel.  The paper reports 40–80%
(average ~45%) of faults falling to this step at negligible CPU cost; the
remainder go to the 3-phase deterministic generator.

Detection is conservative exactly as in the paper: a fault counts as
covered only when some primary output *definitely* differs (ternary
simulation may under-report, never over-report).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.core.sequences import Test
from repro.sgraph.cssg import Cssg
from repro.sim.batch import ChunkedFaultSim, FaultBatch


def random_tpg(
    cssg: Cssg,
    faults: Sequence[Fault],
    n_walks: int = 16,
    walk_len: int = 64,
    seed: int = 0,
    chunk_width: Optional[int] = None,
    rng: Optional[random.Random] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    on_walk: Optional[Callable[[int, int], None]] = None,
) -> Tuple[Dict[Fault, Tuple[int, ...]], List[Test]]:
    """Run random TPG; returns (detected fault -> sequence, kept tests).

    Each walk starts from reset (as a tester would).  A walk is recorded
    as a :class:`Test` — trimmed to its last useful cycle — whenever it
    detects at least one previously undetected fault.

    ``chunk_width`` routes the batch through the numpy array-slab
    kernel (see :class:`repro.sim.batch.ChunkedFaultSim`); detection
    results are identical either way, so the default stays monolithic.
    Both paths walk through the compiled arena kernels — state lives
    inside the kernel and each cycle returns its detection mask
    directly (:meth:`~repro.sim.batch.FaultBatch.walk`).

    Cooperative hooks for the staged flow: ``rng`` supplies the random
    stream (must be freshly seeded for reproducibility; overrides
    ``seed``), ``should_stop`` is polled before each walk so a run
    budget can cut the stage short at a walk boundary (everything
    already detected stays detected), and ``on_walk(walk_index,
    n_detected_so_far)`` reports per-walk progress.
    """
    circuit = cssg.circuit
    if rng is None:
        rng = random.Random(seed)
    if chunk_width is not None:
        batch = ChunkedFaultSim(circuit, faults, chunk_width)
    else:
        batch = FaultBatch(circuit, faults)
    undetected = batch.ones
    detected_by: Dict[Fault, Tuple[int, ...]] = {}
    tests: List[Test] = []

    for walk_index in range(n_walks):
        if not undetected:
            break
        if should_stop is not None and should_stop():
            break
        walk = batch.walk(cssg.reset)
        good = cssg.reset
        patterns: List[int] = []
        walk_new: List[Tuple[int, int]] = []  # (cycle index, new-detections mask)
        # Observation 0: the forced reset state itself may expose faults.
        new = walk.observe(good) & undetected
        if new:
            walk_new.append((0, new))
            undetected &= ~new
        for step in range(walk_len):
            if not undetected:
                break
            choices = sorted(cssg.valid_patterns(good))
            if not choices:
                break
            pattern = rng.choice(choices)
            patterns.append(pattern)
            good = cssg.edges[good][pattern]
            new = walk.step(pattern, good) & undetected
            if new:
                walk_new.append((len(patterns), new))
                undetected &= ~new
        if walk_new:
            last_useful = walk_new[-1][0]
            covered: List[Fault] = []
            for _, mask in walk_new:
                for j in _bits(mask):
                    fault = faults[j]
                    covered.append(fault)
                    detected_by[fault] = tuple(patterns[:last_useful])
            tests.append(
                Test(tuple(patterns[:last_useful]), covered, source="random")
            )
        if on_walk is not None:
            on_walk(walk_index, len(detected_by))
    return detected_by, tests


def _bits(mask: int):
    i = 0
    while mask:
        if mask & 1:
            yield i
        mask >>= 1
        i += 1
