"""Test sequence containers.

A *test* is a sequence of synchronous input patterns applied from the
reset state, one per test cycle; outputs are observed after each cycle.
Every pattern of every stored test is a valid CSSG edge, so it can be
applied by a real-life synchronous tester without risking races.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit


@dataclass
class Test:
    """One input-pattern sequence and the faults it detects."""

    __test__ = False  # not a pytest class, despite the name

    patterns: Tuple[int, ...]
    faults: List[Fault] = field(default_factory=list)
    source: str = "3-phase"  # "random" | "3-phase" | "fault-sim" origin

    def __len__(self) -> int:
        return len(self.patterns)

    def format_patterns(self, circuit: Circuit) -> List[str]:
        """Render each pattern as an input-ordered bit string."""
        m = circuit.n_inputs
        return ["".join(str((p >> i) & 1) for i in range(m)) for p in self.patterns]

    def to_json_dict(self) -> Dict:
        return {
            "patterns": list(self.patterns),
            "faults": [f.to_json() for f in self.faults],
            "source": self.source,
        }

    @staticmethod
    def from_json_dict(data: Dict) -> "Test":
        return Test(
            patterns=tuple(int(p) for p in data["patterns"]),
            faults=[Fault.from_json(f) for f in data["faults"]],
            source=str(data["source"]),
        )


@dataclass
class TestSet:
    """All tests produced by one ATPG run."""

    __test__ = False  # not a pytest class, despite the name

    circuit: Circuit
    tests: List[Test] = field(default_factory=list)

    def add(self, test: Test) -> None:
        self.tests.append(test)

    @property
    def n_vectors(self) -> int:
        return sum(len(t) for t in self.tests)

    def covered_faults(self) -> List[Fault]:
        out: List[Fault] = []
        for t in self.tests:
            out.extend(t.faults)
        return out

    def __iter__(self):
        return iter(self.tests)

    def __len__(self):
        return len(self.tests)
