"""3-phase deterministic ATPG (paper §5.1–5.3).

For one target fault the generator runs:

1. **Fault activation** (§5.1) — collect the reachable stable states that
   *excite* the fault, i.e. where the fault-site signal differs from the
   stuck value.  These are read straight off the CSSG node set.

2. **State justification** (§5.2) — drive the good circuit from reset to
   an activation state along the CSSG's shortest-path tree.  The same
   vectors are simulated on the *faulty* machine: if corruption shows at
   the outputs in **every** possible faulty settling state, the prefix
   already detects the fault (figure 3(a)); if the faulty machine merely
   *may* diverge (figure 3(b)), the full sequence is kept — on silicon
   the fault may be caught earlier, but the generated test cannot rely
   on it.

3. **State differentiation** (§5.3) — breadth-first search over the
   product of (good CSSG state, faulty machine state), trying every
   valid CSSG vector, until the outputs differ for every possible faulty
   behaviour.  BFS yields the shortest differentiating suffix, matching
   the paper's "the sequence resulting in a shorter test length is
   chosen".

Two faulty-machine semantics are available:

* ``"exact"`` (default) — the faulty circuit is materialized as a real
  netlist and simulated with the exhaustive settling explorer; its state
  is a *set* of possible stable states (see :mod:`repro.core.exact_sim`).
  Oscillation or set blow-up falls back to ternary, never the reverse.
* ``"ternary"`` — the paper's machinery: Eichelberger simulation with
  the fault injected, conservative about races.

Faults that are never excited in any stable state (§5.1's
even-number-of-switches case) skip straight to differentiation from the
reset state.  When the product search exhausts its (finite) space the
fault is *undetectable by any valid synchronous sequence* — the fate of
the redundant logic SIS inserts (paper §6); when it hits the node budget
instead, the fault is reported aborted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.circuit.faults import Fault, materialize_fault
from repro.circuit.netlist import Circuit
from repro.core import exact_sim
from repro.sgraph.cssg import Cssg
from repro.sim import ternary

DETECTED = "detected"
UNDETECTABLE = "undetectable"
ABORTED = "aborted"


class _Fallback(Exception):
    """Exact simulation hit a cap; retry the fault with ternary."""


class _TernaryMachine:
    """Faulty machine under the paper's ternary semantics."""

    def __init__(self, circuit: Circuit, fault: Fault):
        self.circuit = circuit
        self.fault = fault

    def reset(self, reset_state: int):
        return ternary.settle_from_reset(self.circuit, reset_state, self.fault)

    def apply(self, state, pattern: int):
        # States here are always fixpoints this machine itself produced,
        # so the dirty-seeded fast path applies.
        return ternary.apply_pattern_settled(
            self.circuit, state, pattern, self.fault
        )

    def detects(self, good_state: int, state) -> bool:
        return ternary.detects(self.circuit, good_state, state)


class _ExactMachine:
    """Faulty machine as a set of possible stable states of the
    materialized faulty netlist."""

    def __init__(self, circuit: Circuit, fault: Fault, cap: int, max_set: int):
        self.circuit = circuit
        self.faulty = materialize_fault(circuit, fault)
        self.cap = cap
        self.max_set = max_set

    def reset(self, reset_state: int):
        if self.faulty.reset_state is not None:
            reset_state = self.faulty.reset_state  # carries output pre-set
        states = exact_sim.faulty_reset_states(
            self.faulty, reset_state, self.cap, self.max_set
        )
        if states is None:
            raise _Fallback
        return states

    def apply(self, states, pattern: int):
        nxt = exact_sim.faulty_apply(
            self.faulty, states, pattern, self.cap, self.max_set
        )
        if nxt is None:
            raise _Fallback
        return nxt

    def detects(self, good_state: int, states) -> bool:
        return exact_sim.faulty_detects(self.circuit, good_state, states)


@dataclass
class GenerationOutcome:
    """Result of 3-phase generation for one fault."""

    fault: Fault
    status: str  # DETECTED / UNDETECTABLE / ABORTED
    patterns: Tuple[int, ...] = ()
    n_activation_states: int = 0
    justification_len: int = 0
    differentiation_len: int = 0
    detected_during_justification: bool = False
    product_states_explored: int = 0
    semantics: str = "exact"  # which machine produced the outcome
    #: Why an ABORTED fault was given up on: "product-states" when the
    #: product-BFS node budget ran out, "activation-tries" when only the
    #: activation-target cap stopped the search short of a proof.
    reason: str = ""

    @property
    def detected(self) -> bool:
        return self.status == DETECTED


class ThreePhaseGenerator:
    """Per-fault deterministic test generation over a fixed CSSG."""

    def __init__(
        self,
        cssg: Cssg,
        max_product_states: int = 200_000,
        faulty_semantics: str = "exact",
        settle_cap: int = 50_000,
        max_faulty_set: int = 64,
    ):
        if faulty_semantics not in ("exact", "ternary"):
            raise ValueError(f"unknown faulty semantics {faulty_semantics!r}")
        self.cssg = cssg
        self.circuit: Circuit = cssg.circuit
        self.max_product_states = max_product_states
        self.faulty_semantics = faulty_semantics
        self.settle_cap = settle_cap
        self.max_faulty_set = max_faulty_set
        # Shortest-path tree from reset, shared by all faults (phase 2).
        self._dist, self._parent = cssg.bfs_tree()

    # -- phase 1 ---------------------------------------------------------

    def activation_states(self, fault: Fault) -> List[int]:
        """Justifiable states the fault's model targets for activation,
        ordered by justification distance from reset.

        Delegated to :meth:`repro.faultmodels.FaultModel.activation_states`:
        for stuck-at kinds these are the reachable stable states where
        the fault site holds the opposite of the stuck value (§5.1); for
        transition faults, the sources of CSSG edges that complete the
        slow transition; for bridging, states where the shorted nets
        disagree."""
        from repro.faultmodels import model_for_kind

        return model_for_kind(fault.kind).activation_states(
            self.cssg, self._dist, fault
        )

    # -- phase 2 ---------------------------------------------------------

    def justification(self, target: int) -> List[int]:
        """Input patterns driving reset to ``target`` along the BFS tree."""
        patterns: List[int] = []
        node = target
        while node != self.cssg.reset:
            prev, pattern = self._parent[node]
            patterns.append(pattern)
            node = prev
        patterns.reverse()
        return patterns

    # -- phase 3 ---------------------------------------------------------

    def differentiate(self, machine, good_start: int, faulty_start, budget: int):
        """BFS for the shortest definitely-differentiating suffix.

        Returns ``(patterns | None, explored)``; None with
        ``explored < budget`` means the reachable product space is
        exhausted (undetectable from here).
        """
        start = (good_start, faulty_start)
        seen: Set[Tuple[int, object]] = {start}
        frontier = [(good_start, faulty_start, ())]
        explored = 0
        while frontier:
            next_frontier = []
            for good, faulty, prefix in frontier:
                for pattern in sorted(self.cssg.valid_patterns(good)):
                    ngood = self.cssg.edges[good][pattern]
                    nfaulty = machine.apply(faulty, pattern)
                    explored += 1
                    if machine.detects(ngood, nfaulty):
                        return list(prefix) + [pattern], explored
                    if explored >= budget:
                        return None, explored
                    key = (ngood, nfaulty)
                    if key not in seen:
                        seen.add(key)
                        next_frontier.append((ngood, nfaulty, prefix + (pattern,)))
            frontier = next_frontier
        return None, explored

    # -- full per-fault flow ----------------------------------------------

    def _machine(self, fault: Fault, semantics: str):
        if semantics == "exact":
            return _ExactMachine(
                self.circuit, fault, self.settle_cap, self.max_faulty_set
            )
        return _TernaryMachine(self.circuit, fault)

    def generate(self, fault: Fault, max_activation_tries: int = 8) -> GenerationOutcome:
        """Run activation -> justification -> differentiation for ``fault``."""
        semantics = self.faulty_semantics
        if semantics == "exact":
            try:
                return self._generate(fault, max_activation_tries, "exact")
            except _Fallback:
                pass
        return self._generate(fault, max_activation_tries, "ternary")

    def _generate(
        self, fault: Fault, max_activation_tries: int, semantics: str
    ) -> GenerationOutcome:
        cssg = self.cssg
        machine = self._machine(fault, semantics)
        activations = self.activation_states(fault)
        budget = self.max_product_states
        explored_total = 0

        # Faulty machine at (forced) reset; observation 0 may already detect.
        faulty_reset = machine.reset(cssg.reset)
        if machine.detects(cssg.reset, faulty_reset):
            return GenerationOutcome(
                fault,
                DETECTED,
                patterns=(),
                n_activation_states=len(activations),
                detected_during_justification=True,
                semantics=semantics,
            )

        tried_targets: List[Optional[int]] = (
            activations[:max_activation_tries] if activations else [None]
        )
        exhausted_everywhere = True
        for target in tried_targets:
            justify: List[int] = [] if target is None else self.justification(target)
            # Replay justification on both machines.
            good = cssg.reset
            faulty = faulty_reset
            for i, pattern in enumerate(justify):
                good = cssg.edges[good][pattern]
                faulty = machine.apply(faulty, pattern)
                if machine.detects(good, faulty):
                    # Figure 3(a): corruption visible on every delay
                    # assignment — the prefix is already a test.
                    return GenerationOutcome(
                        fault,
                        DETECTED,
                        patterns=tuple(justify[: i + 1]),
                        n_activation_states=len(activations),
                        justification_len=i + 1,
                        detected_during_justification=True,
                        semantics=semantics,
                    )
            diff, explored = self.differentiate(
                machine, good, faulty, budget - explored_total
            )
            explored_total += explored
            if diff is not None:
                return GenerationOutcome(
                    fault,
                    DETECTED,
                    patterns=tuple(justify) + tuple(diff),
                    n_activation_states=len(activations),
                    justification_len=len(justify),
                    differentiation_len=len(diff),
                    product_states_explored=explored_total,
                    semantics=semantics,
                )
            if explored_total >= budget:
                exhausted_everywhere = False
                break
        # The product BFS from reset covers every reachable (good, faulty)
        # pair, so a single exhausted search from reset proves
        # undetectability; searches from deeper activation states are
        # subsumed by it.  We re-run from reset only if needed.
        if exhausted_everywhere and tried_targets != [None]:
            diff, explored = self.differentiate(
                machine, cssg.reset, faulty_reset, budget - explored_total
            )
            explored_total += explored
            if diff is not None:
                return GenerationOutcome(
                    fault,
                    DETECTED,
                    patterns=tuple(diff),
                    n_activation_states=len(activations),
                    differentiation_len=len(diff),
                    product_states_explored=explored_total,
                    semantics=semantics,
                )
            if explored_total >= budget:
                exhausted_everywhere = False
        status = UNDETECTABLE if exhausted_everywhere else ABORTED
        reason = ""
        if status == ABORTED:
            # Today every abort traces to the product-state cap (an
            # exhausted tried-target set always re-proves from reset);
            # the activation-tries label is kept for defensive coverage
            # of future search orders.
            reason = (
                "product-states"
                if explored_total >= budget
                else "activation-tries"
            )
        return GenerationOutcome(
            fault,
            status,
            n_activation_states=len(activations),
            product_states_explored=explored_total,
            semantics=semantics,
            reason=reason,
        )
