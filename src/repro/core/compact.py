"""Static test-set compaction.

The flow accumulates tests greedily (random walks first, then one test
per 3-phase target), so the final set usually contains tests whose every
detection is also achieved by others.  Classic static compaction fixes
that after the fact:

1. re-grade every test against the full fault list with the parallel
   ternary simulator (the auditor's ground truth, so compaction never
   relies on the generator's bookkeeping);
2. keep essential tests (sole detector of some fault);
3. greedily cover the remaining faults, largest contribution first;
4. drop everything else.

Compaction is *guaranteed-coverage preserving*: every fault any kept
grading detected is still detected.  Faults only the exact-semantics
3-phase generator could certify (ternary replay shows Φ) keep their
original dedicated test — they are treated as essential.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.circuit.faults import Fault
from repro.core.sequences import Test, TestSet
from repro.core.verify import verify_test_set
from repro.sgraph.cssg import Cssg


def compact_test_set(
    cssg: Cssg,
    tests: Sequence[Test],
    faults: Sequence[Fault],
) -> Tuple[TestSet, Dict[str, int]]:
    """Return (compacted set, stats).

    Stats keys: ``n_before``/``n_after`` (test counts),
    ``vectors_before``/``vectors_after``, ``n_essential``, and
    ``kept_indices`` — the original indices of the kept tests in order,
    so callers holding per-fault ``test_index`` references (the flow's
    :class:`~repro.flow.stages.CompactionStage`) can remap them.
    """
    tests = list(tests)
    report = verify_test_set(cssg, tests, faults)
    per_test: List[Set[Fault]] = [set(s) for s in report.per_test]

    # Faults certified only by exact semantics (empty ternary grading
    # everywhere) pin their original test as essential.
    claimed: Dict[int, Set[Fault]] = {i: set() for i in range(len(tests))}
    for i, test in enumerate(tests):
        for fault in test.faults:
            if not any(fault in hits for hits in per_test):
                claimed[i].add(fault)

    target: Set[Fault] = set().union(*per_test) if per_test else set()
    chosen: List[int] = []
    covered: Set[Fault] = set()

    # Essential tests: sole ternary detector of some fault, or carrier of
    # an exact-only certification.
    for fault in sorted(target):
        owners = [i for i, hits in enumerate(per_test) if fault in hits]
        if len(owners) == 1 and owners[0] not in chosen:
            chosen.append(owners[0])
            covered |= per_test[owners[0]]
    for i, extra in claimed.items():
        if extra and i not in chosen:
            chosen.append(i)
            covered |= per_test[i]
    n_essential = len(chosen)

    remaining = target - covered
    pool = [i for i in range(len(tests)) if i not in chosen]
    while remaining:
        best = max(pool, key=lambda i: (len(per_test[i] & remaining), -len(tests[i])))
        gain = per_test[best] & remaining
        if not gain:
            break  # ternary-undetectable leftovers: nothing more to do
        chosen.append(best)
        covered |= gain
        remaining -= gain
        pool.remove(best)

    chosen.sort()
    compacted = TestSet(cssg.circuit)
    for i in chosen:
        kept = Test(tests[i].patterns, sorted(per_test[i] | claimed[i]),
                    source=tests[i].source)
        compacted.add(kept)
    stats = {
        "n_before": len(tests),
        "n_after": len(compacted.tests),
        "vectors_before": sum(len(t) for t in tests),
        "vectors_after": compacted.n_vectors,
        "n_essential": n_essential,
        "kept_indices": list(chosen),
    }
    return compacted, stats
