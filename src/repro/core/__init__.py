"""The paper's ATPG building blocks (§5).

The pipeline itself lives in :mod:`repro.flow` (``Flow.default()``:
collapse → random TPG → 3-phase → compaction, over one
``RunContext``).  This package holds the algorithms the stages call —

1. CSSG construction lives in :mod:`repro.sgraph` (§4);
2. **random TPG** with parallel-ternary fault simulation (§5.4) —
   :mod:`repro.core.random_tpg`;
3. **3-phase deterministic ATPG** — activation, justification,
   differentiation (§5.1–5.3) — :mod:`repro.core.three_phase`;
4. **fault simulation** of generated sequences (§5.4) —
   :func:`repro.flow.stages.fault_simulate` over :mod:`repro.sim`;

— plus the shared data contract (:mod:`repro.core.atpg`:
``AtpgOptions`` / ``AtpgResult`` / deprecated ``AtpgEngine`` facade),
collapsing, compaction, verification, and reporting.
"""

from repro.core.sequences import Test, TestSet
from repro.core.atpg import AtpgEngine, AtpgOptions, AtpgResult, FaultStatus
from repro.core.random_tpg import random_tpg
from repro.core.three_phase import ThreePhaseGenerator, GenerationOutcome
from repro.core.report import format_table, result_row
from repro.core.verify import VerificationReport, audit_result, verify_test_set
from repro.core.compact import compact_test_set
from repro.core.collapse import collapse_faults

__all__ = [
    "Test",
    "TestSet",
    "AtpgEngine",
    "AtpgOptions",
    "AtpgResult",
    "FaultStatus",
    "random_tpg",
    "ThreePhaseGenerator",
    "GenerationOutcome",
    "format_table",
    "result_row",
    "VerificationReport",
    "audit_result",
    "verify_test_set",
    "compact_test_set",
    "collapse_faults",
]
