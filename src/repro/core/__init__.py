"""The paper's ATPG flow (§5).

Pipeline implemented by :class:`repro.core.atpg.AtpgEngine`:

1. build the CSSG (synchronous abstraction, §4);
2. **random TPG** on the CSSG with parallel-ternary fault simulation to
   cheaply cover a large fraction of faults (§5.4);
3. **3-phase deterministic ATPG** per remaining fault — fault activation,
   state justification, state differentiation (§5.1–5.3);
4. **fault simulation** of every generated sequence against the still
   undetected faults (§5.4).
"""

from repro.core.sequences import Test, TestSet
from repro.core.atpg import AtpgEngine, AtpgOptions, AtpgResult, FaultStatus
from repro.core.random_tpg import random_tpg
from repro.core.three_phase import ThreePhaseGenerator, GenerationOutcome
from repro.core.report import format_table, result_row
from repro.core.verify import VerificationReport, audit_result, verify_test_set
from repro.core.compact import compact_test_set
from repro.core.collapse import collapse_faults

__all__ = [
    "Test",
    "TestSet",
    "AtpgEngine",
    "AtpgOptions",
    "AtpgResult",
    "FaultStatus",
    "random_tpg",
    "ThreePhaseGenerator",
    "GenerationOutcome",
    "format_table",
    "result_row",
    "VerificationReport",
    "audit_result",
    "verify_test_set",
    "compact_test_set",
    "collapse_faults",
]
