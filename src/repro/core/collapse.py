"""Structural fault collapsing.

Classic ATPG front-end step: faults whose faulty circuits are *identical*
need only one test.  Two faults collapse when they perturb the same gate
and the perturbed gate functions are equal:

* an input pin stuck-at turns gate function ``F`` into the cofactor
  ``F[site := v]``;
* an output stuck-at turns it into the constant ``v``.

Equality is decided by truth-table comparison over the gate's support
(complex gates here have small support, so this is exact and cheap).
Because equivalent faults yield bit-identical faulty netlists, running
ATPG on one representative per class and copying its verdict to the
class is *lossless* — coverage numbers over the full universe are
unchanged, only the per-fault work shrinks.  The classic examples fall
out automatically: every AND input SA0 ≡ the output SA0, every inverter
input SA-v ≡ output SA-(1-v), buffer chains collapse end to end.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro._bits import set_bit
from repro.circuit.expr import eval_binary
from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit, Gate


def _faulty_table(circuit: Circuit, gate: Gate, fault: Fault) -> Tuple[int, ...]:
    """Truth table of the gate's faulty function over its support."""
    support = gate.support
    rows = []
    for assignment in range(1 << len(support)):
        state = 0
        for j, sig in enumerate(support):
            state = set_bit(state, sig, (assignment >> j) & 1)
        if fault.kind == "output":
            rows.append(fault.value)
        else:
            state = set_bit(state, fault.site, fault.value)
            rows.append(eval_binary(gate.program, state))
    return tuple(rows)


def collapse_faults(
    circuit: Circuit, faults: Sequence[Fault]
) -> Tuple[List[Fault], Dict[Fault, Fault]]:
    """Partition ``faults`` into equivalence classes.

    Returns ``(representatives, representative_of)`` where
    ``representative_of[f]`` maps every fault to its class
    representative (representatives map to themselves).  Faults on
    different gates are never merged — only same-gate functional
    equivalence is structural and therefore sound without further
    analysis.
    """
    gate_by_index = {g.index: g for g in circuit.gates}
    representative_of: Dict[Fault, Fault] = {}
    representatives: List[Fault] = []
    # Group by gate, then by faulty truth table.
    by_signature: Dict[Tuple[int, Tuple[int, ...]], Fault] = {}
    for fault in faults:
        gate = gate_by_index.get(fault.gate)
        if gate is None:
            # Fault on a signal with no gate (defensive): its own class.
            representative_of[fault] = fault
            representatives.append(fault)
            continue
        signature = (gate.index, _faulty_table(circuit, gate, fault))
        rep = by_signature.get(signature)
        if rep is None:
            by_signature[signature] = fault
            representative_of[fault] = fault
            representatives.append(fault)
        else:
            representative_of[fault] = rep
    return representatives, representative_of


def collapse_ratio(n_total: int, n_representatives: int) -> float:
    """Fraction of per-fault work saved by collapsing."""
    if n_total == 0:
        return 0.0
    return 1.0 - n_representatives / n_total
