"""Structural fault collapsing.

Classic ATPG front-end step: faults whose faulty circuits are *identical*
need only one test.  Whether two faults qualify is the owning fault
model's call: each model supplies a **collapse signature**
(:meth:`repro.faultmodels.FaultModel.collapse_signature`) such that
equal signatures imply bit-identical faulty netlists — e.g. for the
stuck-at kinds the signature is the perturbed gate plus its faulty
truth table:

* an input pin stuck-at turns gate function ``F`` into the cofactor
  ``F[site := v]``;
* an output stuck-at turns it into the constant ``v``;
* a transition fault's table is taken over ``support ∪ {self}`` (its
  sticky function reads the gate's own output) — provably the identity
  partition, handled uniformly anyway;
* bridging faults return no signature (they perturb two gates; each is
  its own class).

Because equivalent faults yield bit-identical faulty netlists, running
ATPG on one representative per class and copying its verdict to the
class is *lossless* — coverage numbers over the full universe are
unchanged, only the per-fault work shrinks.  The classic examples fall
out automatically: every AND input SA0 ≡ the output SA0, every inverter
input SA-v ≡ output SA-(1-v), buffer chains collapse end to end.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit


def collapse_faults(
    circuit: Circuit, faults: Sequence[Fault]
) -> Tuple[List[Fault], Dict[Fault, Fault]]:
    """Partition ``faults`` into equivalence classes.

    Returns ``(representatives, representative_of)`` where
    ``representative_of[f]`` maps every fault to its class
    representative (representatives map to themselves).  Faults with no
    model signature — and faults on different gates, since every
    signature embeds the gate — are never merged: only local functional
    equivalence is structural and therefore sound without further
    analysis.
    """
    from repro.faultmodels import model_for_kind

    representative_of: Dict[Fault, Fault] = {}
    representatives: List[Fault] = []
    by_signature: Dict[Hashable, Fault] = {}
    for fault in faults:
        signature = model_for_kind(fault.kind).collapse_signature(circuit, fault)
        if signature is None:
            # No structural equivalence claimed: its own class.
            representative_of[fault] = fault
            representatives.append(fault)
            continue
        # Signatures are compared across kinds: the two stuck-at models
        # deliberately share the (gate, faulty-table) shape so an AND
        # input SA0 still collapses with the output SA0; models whose
        # equivalence must stay private tag their signature (the
        # transition model does).
        rep = by_signature.get(signature)
        if rep is None:
            by_signature[signature] = fault
            representative_of[fault] = fault
            representatives.append(fault)
        else:
            representative_of[fault] = rep
    return representatives, representative_of


def _faulty_table(circuit: Circuit, gate, fault: Fault) -> Tuple[int, ...]:
    """Pre-registry helper kept for compatibility: the stuck-at faulty
    truth table over the gate's support (now owned by the stuck-at
    models)."""
    from repro.faultmodels import model_for_kind

    return model_for_kind(fault.kind)._faulty_table(gate, fault)


def collapse_ratio(n_total: int, n_representatives: int) -> float:
    """Fraction of per-fault work saved by collapsing."""
    if n_total == 0:
        return 0.0
    return 1.0 - n_representatives / n_total
