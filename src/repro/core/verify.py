"""Independent verification of a generated test set.

ATPG results deserve an auditor that shares none of the generator's
shortcuts: ``verify_test_set`` replays every test from the reset state
with the word-parallel ternary simulator against an arbitrary fault list
and reports exactly which faults are *guaranteed* caught (definite
output difference at some observation point) — the contract a real
tester needs.  It also revalidates that every applied vector is a legal
CSSG edge, i.e. race-free on the good circuit.

This is what a downstream user runs before committing a pattern set to
silicon, and what the test suite uses to audit the engine's claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.core.sequences import Test
from repro.sgraph.cssg import Cssg
from repro.sim.batch import FaultBatch


@dataclass
class VerificationReport:
    """Outcome of auditing one test set."""

    circuit: Circuit
    n_faults: int
    detected: Set[Fault] = field(default_factory=set)
    per_test: List[Set[Fault]] = field(default_factory=list)
    invalid_tests: List[int] = field(default_factory=list)

    @property
    def n_detected(self) -> int:
        return len(self.detected)

    @property
    def coverage(self) -> float:
        return self.n_detected / self.n_faults if self.n_faults else 1.0

    @property
    def all_tests_valid(self) -> bool:
        return not self.invalid_tests

    def summary(self) -> str:
        valid = "all vectors race-free" if self.all_tests_valid else (
            f"INVALID tests: {self.invalid_tests}"
        )
        return (
            f"{self.circuit.name}: verified {self.n_detected}/{self.n_faults} "
            f"faults ({100.0 * self.coverage:.2f}%) across "
            f"{len(self.per_test)} tests; {valid}"
        )


def verify_test_set(
    cssg: Cssg,
    tests: Iterable[Test],
    faults: Sequence[Fault],
) -> VerificationReport:
    """Replay ``tests`` against ``faults`` and report guaranteed catches.

    Every pattern of every test is validated against the CSSG; a test
    using a pruned (racy) vector is recorded in ``invalid_tests`` and its
    remaining patterns are skipped — a tester could not apply it safely.
    """
    circuit = cssg.circuit
    report = VerificationReport(circuit=circuit, n_faults=len(faults))
    # One batch (and therefore one cached compiled arena kernel) serves
    # every test: the batch holds no cross-test state beyond its fault
    # masks, and each replay is a fresh kernel walk from reset.
    batch = FaultBatch(circuit, faults)
    for index, test in enumerate(tests):
        walk = batch.walk(cssg.reset)
        good = cssg.reset
        caught = walk.observe(good)
        valid = True
        for pattern in test.patterns:
            nxt = cssg.successor(good, pattern)
            if nxt is None:
                valid = False
                break
            good = nxt
            caught |= walk.step(pattern, good)
        if not valid:
            report.invalid_tests.append(index)
        hits = {faults[j] for j in range(len(faults)) if (caught >> j) & 1}
        report.per_test.append(hits)
        report.detected |= hits
    return report


def audit_result(result, faults: Optional[Sequence[Fault]] = None) -> VerificationReport:
    """Audit an :class:`~repro.core.atpg.AtpgResult` against its own
    fault universe (or a caller-supplied list)."""
    if faults is None:
        faults = result.faults
    return verify_test_set(result.cssg, result.tests, faults)
