"""ATPG result/option types and the legacy engine facade.

The flow itself lives in :mod:`repro.flow`: a pipeline of composable
stages (collapse → random TPG → 3-phase + fault sim → compaction) over a
shared :class:`~repro.flow.context.RunContext`, with a run
:class:`~repro.flow.budget.Budget` and a typed event stream.  This
module keeps the *data contract* every consumer shares:

* :class:`AtpgOptions` — the tuning knobs (also the campaign cache key);
* :class:`FaultStatus` / :class:`AtpgResult` — per-fault verdicts and
  the complete Table 1/2 row, JSON round-trippable;
* :class:`AtpgEngine` — **deprecated** thin facade over
  ``Flow.default()``, kept so pre-flow callers keep working; it produces
  byte-identical payloads (modulo ``cpu_seconds``).
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ReproError

from repro.circuit.faults import Fault
from repro.circuit.netlist import Circuit
from repro.core.sequences import Test, TestSet
from repro.core.three_phase import DETECTED, UNDETECTABLE
from repro.sgraph.cssg import Cssg, build_cssg


#: Version of the :meth:`AtpgResult.to_json_dict` schema.  Bump whenever
#: the serialized layout changes shape; the campaign result cache treats
#: any other version as a miss, so stale entries are recomputed rather
#: than misread.  Version 2 added :attr:`FaultStatus.reason` (why a
#: fault aborted) and the ``deadline_seconds`` / ``compact`` options.
#: Version 3 added the resolved CSSG construction method and the
#: symbolic-kernel facts (TCSG state count, peak BDD nodes, GC passes,
#: image iterations) to the ``cssg`` block.  Version 4 admits the
#: registry fault kinds (``bridging`` / ``transition``) in the
#: ``faults`` / ``statuses`` / ``tests`` arrays — same ``[kind, gate,
#: site, value]`` element shape, new ``kind`` vocabulary — so caches
#: written by stuck-at-only readers are never asked to hold records
#: they cannot interpret.  Version 5 added the *optional* ``telemetry``
#: block (per-stage wall times, BDD cache counters, metrics snapshot) —
#: present only when the run executed under an active tracer or with
#: metrics enabled, absent (not null) otherwise, so default payloads
#: keep their historical byte-exact form.
RESULT_SCHEMA_VERSION = 5


@dataclass
class AtpgOptions:
    """Tuning knobs for the full flow (paper defaults where stated).

    ``AtpgOptions()`` is a valid everyday configuration; every field
    has the paper's (or the implementation's calibrated) default.  The
    dataclass doubles as the campaign cache key — any field change
    yields a different :func:`repro.campaign.plan.job_key` — and
    round-trips through :meth:`to_json_dict` / :meth:`from_json_dict`.

    >>> opts = AtpgOptions(fault_model="transition", seed=3)
    >>> AtpgOptions.from_json_dict(opts.to_json_dict()) == opts
    True
    """

    #: Fault universe to run: any name registered in
    #: :mod:`repro.faultmodels` — ``"input"`` / ``"output"`` stuck-at
    #: (the paper's models), ``"bridging"`` (wired-AND/OR shorts of
    #: adjacent nets), or ``"transition"`` (slow-to-rise/fall).
    fault_model: str = "input"
    k: Optional[int] = None  # test-cycle transition bound (None: circuit.k)
    max_input_changes: Optional[int] = None  # None = any subset may switch
    # CSSG validity analysis: "exact" (formal TCR_k, exponential),
    # "ternary" (GMW/Eichelberger, polynomial), "hybrid" (union of both
    # sound acceptances), "symbolic" (exact TCR_k semantics by BDD image
    # computation — the large-state-space path), or "auto" (hybrid up to
    # `auto_exact_limit` signals, i.e. 2^limit states; symbolic above —
    # enumeration is off the table there, image computation is not).
    cssg_method: str = "auto"
    auto_exact_limit: int = 20
    random_walks: int = 16
    walk_len: int = 64
    seed: int = 0
    use_random_tpg: bool = True
    use_fault_sim: bool = True
    max_product_states: int = 200_000
    max_activation_tries: int = 8
    # Faulty-machine semantics for the 3-phase generator: "exact" tracks
    # the set of possible stable states of the materialized faulty
    # netlist (recovers tests ternary conservatism would miss and makes
    # "undetectable" verdicts exact); "ternary" is the paper's original
    # machinery.  Exact falls back to ternary per fault when analysis
    # caps are hit.
    faulty_semantics: str = "exact"
    # Structural fault collapsing: run the flow on one representative
    # per same-gate equivalence class and copy verdicts to the class.
    # Lossless for coverage; reduces per-fault work.
    collapse: bool = False
    # Static test-set compaction after generation (CompactionStage):
    # re-grade, keep essential tests, greedily cover the rest.
    compact: bool = False
    # Wall-clock budget for the whole run (None = unbounded).  Stages
    # honor it cooperatively: when it expires, the untried remainder is
    # classified aborted with reason "budget" and the partial result is
    # still fully valid.
    deadline_seconds: Optional[float] = None

    def to_json_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json_dict(data: Dict) -> "AtpgOptions":
        known = {f.name for f in fields(AtpgOptions)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError(f"unknown AtpgOptions fields: {unknown}")
        return AtpgOptions(**data)


@dataclass
class FaultStatus:
    """Final classification of one fault.

    ``reason`` records *why* an aborted fault was given up on:
    ``"budget"`` (run deadline expired before/while processing it),
    ``"product-states"`` (per-fault product-state cap hit),
    ``"activation-tries"`` (activation-target cap hit), or
    ``"unprocessed"`` (no stage of a custom flow classified it).
    Empty for detected / undetectable faults.
    """

    fault: Fault
    status: str  # "detected" / "undetectable" / "aborted"
    phase: str = ""  # "rnd" / "3-ph" / "sim" when detected
    test_index: Optional[int] = None
    reason: str = ""  # abort reason when status == "aborted"

    def to_json_dict(self) -> Dict:
        return {
            "fault": self.fault.to_json(),
            "status": self.status,
            "phase": self.phase,
            "test_index": self.test_index,
            "reason": self.reason,
        }

    @staticmethod
    def from_json_dict(data: Dict) -> "FaultStatus":
        return FaultStatus(
            fault=Fault.from_json(data["fault"]),
            status=str(data["status"]),
            phase=str(data["phase"]),
            test_index=(
                None if data["test_index"] is None else int(data["test_index"])
            ),
            reason=str(data.get("reason", "")),
        )


@dataclass(frozen=True)
class CssgSummary:
    """The CSSG facts a serialized result keeps: enough for reports and
    :meth:`AtpgResult.summary`, without the full state graph.

    ``method`` is the *resolved* construction method ("auto" never
    appears here); the remaining fields are the symbolic-kernel metrics,
    zero when an explicit builder ran."""

    k: int
    reset: int
    n_states: int
    n_edges: int
    method: str = ""
    n_tcsg_states: int = 0
    peak_bdd_nodes: int = 0
    n_gc_passes: int = 0
    n_reorders: int = 0
    n_image_iterations: int = 0


@dataclass
class AtpgResult:
    """Everything one Table 1/2 row needs, plus the tests themselves."""

    circuit: Circuit
    options: AtpgOptions
    cssg: Union[Cssg, CssgSummary]
    faults: List[Fault]
    statuses: Dict[Fault, FaultStatus]
    tests: TestSet
    cpu_seconds: float
    n_random: int = 0
    n_three_phase: int = 0
    n_fault_sim: int = 0
    n_undetectable: int = 0
    n_aborted: int = 0
    #: Opt-in observability block (see :mod:`repro.obs`): per-stage wall
    #: times, BDD cache counters, and — when metrics are enabled — a
    #: registry snapshot.  ``None`` (and absent from the JSON form) for
    #: default runs, so cached payload digests are unaffected.
    telemetry: Optional[Dict] = None

    @property
    def n_total(self) -> int:
        return len(self.faults)

    @property
    def n_covered(self) -> int:
        return self.n_random + self.n_three_phase + self.n_fault_sim

    @property
    def coverage(self) -> float:
        return self.n_covered / self.n_total if self.faults else 1.0

    def summary(self) -> str:
        """One-line headline: coverage, per-phase split, CSSG size."""
        from repro.faultmodels import get_model

        label = get_model(self.options.fault_model).universe_label
        return (
            f"{self.circuit.name}: {self.n_covered}/{self.n_total} "
            f"{label} faults covered "
            f"({100.0 * self.coverage:.2f}%) — rnd {self.n_random}, "
            f"3-ph {self.n_three_phase}, sim {self.n_fault_sim}, "
            f"undetectable {self.n_undetectable}, aborted {self.n_aborted}; "
            f"CSSG {self.cssg.n_states} states / {self.cssg.n_edges} edges; "
            f"{self.cpu_seconds:.2f}s"
        )

    def undetected_faults(self) -> List[Fault]:
        return [f for f in self.faults if self.statuses[f].status != DETECTED]

    def abort_reasons(self) -> Dict[str, int]:
        """Histogram of :attr:`FaultStatus.reason` over aborted faults,
        e.g. ``{"budget": 12, "product-states": 1}``."""
        counts: Dict[str, int] = {}
        for status in self.statuses.values():
            if status.status != DETECTED and status.status != UNDETECTABLE:
                key = status.reason or "unknown"
                counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    # -- JSON contract (the campaign result cache stores exactly this) --

    def to_json_dict(self) -> Dict:
        """Canonical JSON form: the whole Table 1/2 row plus every test
        and per-fault verdict.  ``from_json_dict`` inverts it; two runs
        are *the same result* iff these dicts agree up to
        ``cpu_seconds`` (and the opt-in ``telemetry`` block, which
        carries wall-clock data and is only present for observed
        runs)."""
        doc = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "circuit": {
                "name": self.circuit.name,
                "n_inputs": self.circuit.n_inputs,
                "n_signals": self.circuit.n_signals,
            },
            "options": self.options.to_json_dict(),
            "cssg": {
                "k": self.cssg.k,
                "reset": self.cssg.reset,
                "n_states": self.cssg.n_states,
                "n_edges": self.cssg.n_edges,
                "method": self.cssg.method,
                "n_tcsg_states": self.cssg.n_tcsg_states,
                "peak_bdd_nodes": self.cssg.peak_bdd_nodes,
                "n_gc_passes": self.cssg.n_gc_passes,
                "n_reorders": self.cssg.n_reorders,
                "n_image_iterations": self.cssg.n_image_iterations,
            },
            "faults": [f.to_json() for f in self.faults],
            "statuses": [self.statuses[f].to_json_dict() for f in self.faults],
            "tests": [t.to_json_dict() for t in self.tests],
            "cpu_seconds": self.cpu_seconds,
            # Derived, but stored so payload consumers (campaign
            # artifacts, dashboards) read the headline numbers instead
            # of re-deriving the coverage arithmetic.
            "n_total": self.n_total,
            "n_covered": self.n_covered,
            "n_random": self.n_random,
            "n_three_phase": self.n_three_phase,
            "n_fault_sim": self.n_fault_sim,
            "n_undetectable": self.n_undetectable,
            "n_aborted": self.n_aborted,
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        return doc

    @staticmethod
    def from_json_dict(data: Dict, circuit: Circuit) -> "AtpgResult":
        """Rebuild a result against ``circuit`` (the CSSG comes back as a
        :class:`CssgSummary`).  Raises :class:`ReproError` on a schema
        version or circuit mismatch."""
        version = data.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ReproError(
                f"result schema version {version!r} != {RESULT_SCHEMA_VERSION}"
            )
        shape = data["circuit"]
        if (shape["name"], shape["n_signals"]) != (circuit.name, circuit.n_signals):
            raise ReproError(
                f"serialized result is for {shape['name']!r} "
                f"({shape['n_signals']} signals), not {circuit.name!r} "
                f"({circuit.n_signals} signals)"
            )
        faults = [Fault.from_json(f) for f in data["faults"]]
        statuses = [FaultStatus.from_json_dict(s) for s in data["statuses"]]
        tests = TestSet(circuit, [Test.from_json_dict(t) for t in data["tests"]])
        g = data["cssg"]
        return AtpgResult(
            circuit=circuit,
            options=AtpgOptions.from_json_dict(data["options"]),
            cssg=CssgSummary(
                k=int(g["k"]),
                reset=int(g["reset"]),
                n_states=int(g["n_states"]),
                n_edges=int(g["n_edges"]),
                method=str(g.get("method", "")),
                n_tcsg_states=int(g.get("n_tcsg_states", 0)),
                peak_bdd_nodes=int(g.get("peak_bdd_nodes", 0)),
                n_gc_passes=int(g.get("n_gc_passes", 0)),
                n_reorders=int(g.get("n_reorders", 0)),
                n_image_iterations=int(g.get("n_image_iterations", 0)),
            ),
            faults=faults,
            statuses={s.fault: s for s in statuses},
            tests=tests,
            cpu_seconds=float(data["cpu_seconds"]),
            n_random=int(data["n_random"]),
            n_three_phase=int(data["n_three_phase"]),
            n_fault_sim=int(data["n_fault_sim"]),
            n_undetectable=int(data["n_undetectable"]),
            n_aborted=int(data["n_aborted"]),
            telemetry=data.get("telemetry"),
        )


def resolve_cssg_method(circuit: Circuit, opts: AtpgOptions) -> str:
    """The concrete construction method ``opts`` selects for ``circuit``.

    ``"auto"`` picks by state-space size: the hybrid enumerative
    analysis up to ``2**auto_exact_limit`` states (``n_signals <=
    auto_exact_limit``), the symbolic builder above — explicit
    enumeration is hopeless there, BDD image computation is the paper's
    answer."""
    method = opts.cssg_method
    if method == "auto":
        return (
            "hybrid"
            if circuit.n_signals <= opts.auto_exact_limit
            else "symbolic"
        )
    return method


def cssg_for(circuit: Circuit, opts: AtpgOptions) -> Cssg:
    """Build the CSSG exactly as the flow would, resolving the
    ``"auto"`` method by circuit size (:func:`resolve_cssg_method`).
    Exposed so callers that run several option variants of one circuit
    (both fault models, many seeds — the campaign runner) can share one
    construction."""
    return build_cssg(
        circuit,
        k=opts.k,
        max_input_changes=opts.max_input_changes,
        method=resolve_cssg_method(circuit, opts),
    )


class AtpgEngine:
    """**Deprecated** facade over :meth:`repro.flow.Flow.default`.

    ``AtpgEngine(circuit, options).run()`` is exactly
    ``Flow.default().run(circuit, options)`` — same stages, same seeds,
    identical :meth:`AtpgResult.to_json_dict` payload (modulo
    ``cpu_seconds``).  New code should use the flow API directly: it
    exposes the stage list, the run budget, and the event stream this
    facade hides.
    """

    def __init__(self, circuit: Circuit, options: Optional[AtpgOptions] = None):
        warnings.warn(
            "AtpgEngine is deprecated; use "
            "repro.flow.Flow.default().run(circuit, options) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.circuit = circuit
        self.options = options or AtpgOptions()

    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        cssg: Optional[Cssg] = None,
    ) -> AtpgResult:
        from repro.flow import Flow

        return Flow.default().run(
            self.circuit, self.options, faults=faults, cssg=cssg
        )
