"""Top-level ATPG engine: the paper's complete flow (§2 overview).

``AtpgEngine(circuit).run()`` performs:

1. CSSG construction (synchronous abstraction, §4);
2. random TPG with parallel-ternary fault simulation (§5.4);
3. per-fault 3-phase deterministic generation (§5.1–5.3);
4. fault simulation of each deterministic test against the remaining
   faults (§5.4), crediting extra detections to the "sim" column.

The result mirrors one row of the paper's Tables 1/2: total and covered
fault counts plus the rnd / 3-ph / sim split and CPU time.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError

from repro.circuit.faults import Fault, fault_universe
from repro.circuit.netlist import Circuit
from repro.core.random_tpg import random_tpg
from repro.core.sequences import Test, TestSet
from repro.core.three_phase import (
    ABORTED,
    DETECTED,
    UNDETECTABLE,
    GenerationOutcome,
    ThreePhaseGenerator,
)
from repro.sgraph.cssg import Cssg, build_cssg
from repro.sim.batch import FaultBatch


#: Version of the :meth:`AtpgResult.to_json_dict` schema.  Bump whenever
#: the serialized layout changes shape; the campaign result cache treats
#: any other version as a miss, so stale entries are recomputed rather
#: than misread.
RESULT_SCHEMA_VERSION = 1


@dataclass
class AtpgOptions:
    """Tuning knobs for the full flow (paper defaults where stated)."""

    fault_model: str = "input"  # "input" or "output" stuck-at
    k: Optional[int] = None  # test-cycle transition bound (None: circuit.k)
    max_input_changes: Optional[int] = None  # None = any subset may switch
    # CSSG validity analysis: "exact" (formal TCR_k, exponential),
    # "ternary" (GMW/Eichelberger, polynomial), "hybrid" (union of both
    # sound acceptances), or "auto" (hybrid for small circuits, ternary
    # beyond `auto_exact_limit` signals).
    cssg_method: str = "auto"
    auto_exact_limit: int = 20
    random_walks: int = 16
    walk_len: int = 64
    seed: int = 0
    use_random_tpg: bool = True
    use_fault_sim: bool = True
    max_product_states: int = 200_000
    max_activation_tries: int = 8
    # Faulty-machine semantics for the 3-phase generator: "exact" tracks
    # the set of possible stable states of the materialized faulty
    # netlist (recovers tests ternary conservatism would miss and makes
    # "undetectable" verdicts exact); "ternary" is the paper's original
    # machinery.  Exact falls back to ternary per fault when analysis
    # caps are hit.
    faulty_semantics: str = "exact"
    # Structural fault collapsing: run the flow on one representative
    # per same-gate equivalence class and copy verdicts to the class.
    # Lossless for coverage; reduces per-fault work.
    collapse: bool = False

    def to_json_dict(self) -> Dict:
        return asdict(self)

    @staticmethod
    def from_json_dict(data: Dict) -> "AtpgOptions":
        known = {f.name for f in fields(AtpgOptions)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError(f"unknown AtpgOptions fields: {unknown}")
        return AtpgOptions(**data)


@dataclass
class FaultStatus:
    """Final classification of one fault."""

    fault: Fault
    status: str  # "detected" / "undetectable" / "aborted"
    phase: str = ""  # "rnd" / "3-ph" / "sim" when detected
    test_index: Optional[int] = None

    def to_json_dict(self) -> Dict:
        return {
            "fault": self.fault.to_json(),
            "status": self.status,
            "phase": self.phase,
            "test_index": self.test_index,
        }

    @staticmethod
    def from_json_dict(data: Dict) -> "FaultStatus":
        return FaultStatus(
            fault=Fault.from_json(data["fault"]),
            status=str(data["status"]),
            phase=str(data["phase"]),
            test_index=(
                None if data["test_index"] is None else int(data["test_index"])
            ),
        )


@dataclass(frozen=True)
class CssgSummary:
    """The CSSG facts a serialized result keeps: enough for reports and
    :meth:`AtpgResult.summary`, without the full state graph."""

    k: int
    reset: int
    n_states: int
    n_edges: int


@dataclass
class AtpgResult:
    """Everything one Table 1/2 row needs, plus the tests themselves."""

    circuit: Circuit
    options: AtpgOptions
    cssg: Union[Cssg, CssgSummary]
    faults: List[Fault]
    statuses: Dict[Fault, FaultStatus]
    tests: TestSet
    cpu_seconds: float
    n_random: int = 0
    n_three_phase: int = 0
    n_fault_sim: int = 0
    n_undetectable: int = 0
    n_aborted: int = 0

    @property
    def n_total(self) -> int:
        return len(self.faults)

    @property
    def n_covered(self) -> int:
        return self.n_random + self.n_three_phase + self.n_fault_sim

    @property
    def coverage(self) -> float:
        return self.n_covered / self.n_total if self.faults else 1.0

    def summary(self) -> str:
        return (
            f"{self.circuit.name}: {self.n_covered}/{self.n_total} "
            f"{self.options.fault_model}-stuck-at faults covered "
            f"({100.0 * self.coverage:.2f}%) — rnd {self.n_random}, "
            f"3-ph {self.n_three_phase}, sim {self.n_fault_sim}, "
            f"undetectable {self.n_undetectable}, aborted {self.n_aborted}; "
            f"CSSG {self.cssg.n_states} states / {self.cssg.n_edges} edges; "
            f"{self.cpu_seconds:.2f}s"
        )

    def undetected_faults(self) -> List[Fault]:
        return [f for f in self.faults if self.statuses[f].status != DETECTED]

    # -- JSON contract (the campaign result cache stores exactly this) --

    def to_json_dict(self) -> Dict:
        """Canonical JSON form: the whole Table 1/2 row plus every test
        and per-fault verdict.  ``from_json_dict`` inverts it; two runs
        are *the same result* iff these dicts agree up to
        ``cpu_seconds``."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "circuit": {
                "name": self.circuit.name,
                "n_inputs": self.circuit.n_inputs,
                "n_signals": self.circuit.n_signals,
            },
            "options": self.options.to_json_dict(),
            "cssg": {
                "k": self.cssg.k,
                "reset": self.cssg.reset,
                "n_states": self.cssg.n_states,
                "n_edges": self.cssg.n_edges,
            },
            "faults": [f.to_json() for f in self.faults],
            "statuses": [self.statuses[f].to_json_dict() for f in self.faults],
            "tests": [t.to_json_dict() for t in self.tests],
            "cpu_seconds": self.cpu_seconds,
            # Derived, but stored so payload consumers (campaign
            # artifacts, dashboards) read the headline numbers instead
            # of re-deriving the coverage arithmetic.
            "n_total": self.n_total,
            "n_covered": self.n_covered,
            "n_random": self.n_random,
            "n_three_phase": self.n_three_phase,
            "n_fault_sim": self.n_fault_sim,
            "n_undetectable": self.n_undetectable,
            "n_aborted": self.n_aborted,
        }

    @staticmethod
    def from_json_dict(data: Dict, circuit: Circuit) -> "AtpgResult":
        """Rebuild a result against ``circuit`` (the CSSG comes back as a
        :class:`CssgSummary`).  Raises :class:`ReproError` on a schema
        version or circuit mismatch."""
        version = data.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ReproError(
                f"result schema version {version!r} != {RESULT_SCHEMA_VERSION}"
            )
        shape = data["circuit"]
        if (shape["name"], shape["n_signals"]) != (circuit.name, circuit.n_signals):
            raise ReproError(
                f"serialized result is for {shape['name']!r} "
                f"({shape['n_signals']} signals), not {circuit.name!r} "
                f"({circuit.n_signals} signals)"
            )
        faults = [Fault.from_json(f) for f in data["faults"]]
        statuses = [FaultStatus.from_json_dict(s) for s in data["statuses"]]
        tests = TestSet(circuit, [Test.from_json_dict(t) for t in data["tests"]])
        g = data["cssg"]
        return AtpgResult(
            circuit=circuit,
            options=AtpgOptions.from_json_dict(data["options"]),
            cssg=CssgSummary(
                k=int(g["k"]),
                reset=int(g["reset"]),
                n_states=int(g["n_states"]),
                n_edges=int(g["n_edges"]),
            ),
            faults=faults,
            statuses={s.fault: s for s in statuses},
            tests=tests,
            cpu_seconds=float(data["cpu_seconds"]),
            n_random=int(data["n_random"]),
            n_three_phase=int(data["n_three_phase"]),
            n_fault_sim=int(data["n_fault_sim"]),
            n_undetectable=int(data["n_undetectable"]),
            n_aborted=int(data["n_aborted"]),
        )


def cssg_for(circuit: Circuit, opts: AtpgOptions) -> Cssg:
    """Build the CSSG exactly as :meth:`AtpgEngine.run` would, resolving
    the ``"auto"`` method by circuit size.  Exposed so callers that run
    several option variants of one circuit (both fault models, many
    seeds — the campaign runner) can share one construction."""
    method = opts.cssg_method
    if method == "auto":
        method = (
            "hybrid" if circuit.n_signals <= opts.auto_exact_limit else "ternary"
        )
    return build_cssg(
        circuit,
        k=opts.k,
        max_input_changes=opts.max_input_changes,
        method=method,
    )


class AtpgEngine:
    """Run the complete flow on one circuit."""

    def __init__(self, circuit: Circuit, options: Optional[AtpgOptions] = None):
        self.circuit = circuit
        self.options = options or AtpgOptions()

    def run(
        self,
        faults: Optional[Sequence[Fault]] = None,
        cssg: Optional[Cssg] = None,
    ) -> AtpgResult:
        opts = self.options
        start = time.perf_counter()
        if cssg is None:
            cssg = cssg_for(self.circuit, opts)
        if faults is None:
            faults = fault_universe(self.circuit, opts.fault_model)
        faults = list(faults)
        representative_of: Dict[Fault, Fault] = {f: f for f in faults}
        work_list = faults
        if opts.collapse:
            from repro.core.collapse import collapse_faults

            work_list, representative_of = collapse_faults(self.circuit, faults)
        statuses: Dict[Fault, FaultStatus] = {}
        tests = TestSet(self.circuit)

        # -- step 2: random TPG ------------------------------------------
        n_random = 0
        if opts.use_random_tpg and work_list:
            detected_by, random_tests = random_tpg(
                cssg,
                work_list,
                n_walks=opts.random_walks,
                walk_len=opts.walk_len,
                seed=opts.seed,
            )
            for test in random_tests:
                test_index = len(tests.tests)
                tests.add(test)
                for fault in test.faults:
                    statuses[fault] = FaultStatus(fault, DETECTED, "rnd", test_index)
            n_random = len(detected_by)

        # -- step 3: 3-phase + step 4: fault simulation -------------------
        generator = ThreePhaseGenerator(
            cssg,
            opts.max_product_states,
            faulty_semantics=opts.faulty_semantics,
        )
        n_three_phase = 0
        n_fault_sim = 0
        n_undetectable = 0
        n_aborted = 0
        remaining = [f for f in work_list if f not in statuses]
        for fault in remaining:
            if fault in statuses:  # picked up by a previous fault's test
                continue
            outcome = generator.generate(fault, opts.max_activation_tries)
            if outcome.status == DETECTED:
                n_three_phase += 1
                test = Test(outcome.patterns, [fault], source="3-phase")
                test_index = len(tests.tests)
                tests.add(test)
                statuses[fault] = FaultStatus(fault, DETECTED, "3-ph", test_index)
                if opts.use_fault_sim:
                    others = [
                        f for f in remaining if f not in statuses and f is not fault
                    ]
                    extra = _fault_simulate(cssg, others, outcome.patterns)
                    for f in extra:
                        statuses[f] = FaultStatus(f, DETECTED, "sim", test_index)
                        test.faults.append(f)
                        n_fault_sim += 1
            elif outcome.status == UNDETECTABLE:
                statuses[fault] = FaultStatus(fault, UNDETECTABLE)
                n_undetectable += 1
            else:
                statuses[fault] = FaultStatus(fault, ABORTED)
                n_aborted += 1

        # Expand collapsed equivalence classes: members inherit their
        # representative's verdict and test (identical faulty circuits).
        if opts.collapse:
            for fault in faults:
                if fault in statuses:
                    continue
                rep_status = statuses[representative_of[fault]]
                statuses[fault] = FaultStatus(
                    fault, rep_status.status, rep_status.phase, rep_status.test_index
                )
                if (
                    rep_status.status == DETECTED
                    and rep_status.test_index is not None
                ):
                    tests.tests[rep_status.test_index].faults.append(fault)
            # Recompute the per-phase split over the full universe.
            n_random = sum(1 for s in statuses.values() if s.phase == "rnd")
            n_three_phase = sum(1 for s in statuses.values() if s.phase == "3-ph")
            n_fault_sim = sum(1 for s in statuses.values() if s.phase == "sim")
            n_undetectable = sum(
                1 for s in statuses.values() if s.status == UNDETECTABLE
            )
            n_aborted = sum(1 for s in statuses.values() if s.status == ABORTED)

        cpu = time.perf_counter() - start
        return AtpgResult(
            circuit=self.circuit,
            options=opts,
            cssg=cssg,
            faults=faults,
            statuses=statuses,
            tests=tests,
            cpu_seconds=cpu,
            n_random=n_random,
            n_three_phase=n_three_phase,
            n_fault_sim=n_fault_sim,
            n_undetectable=n_undetectable,
            n_aborted=n_aborted,
        )


def _fault_simulate(
    cssg: Cssg, faults: Sequence[Fault], patterns: Sequence[int]
) -> List[Fault]:
    """Parallel-ternary simulation of one test over many faults (§5.4).

    Returns the subset of ``faults`` the sequence definitely detects.
    The conservativeness of ternary simulation may miss detections; the
    paper accepts this because missed faults still get their own 3-phase
    run later (§5.4, last paragraph).
    """
    if not faults:
        return []
    batch = FaultBatch(cssg.circuit, faults)
    state = batch.reset_and_settle(cssg.reset)
    good = cssg.reset
    detected = batch.observe(state, good)
    for pattern in patterns:
        nxt = cssg.successor(good, pattern)
        if nxt is None:
            break
        good = nxt
        state = batch.apply_settled(state, pattern)
        detected |= batch.observe(state, good)
    return [f for j, f in enumerate(faults) if (detected >> j) & 1]
