"""Exact faulty-machine simulation for deterministic test generation.

Ternary simulation is conservative with respect to the unbounded *gate*
delay model: its Φ also covers wire-delay races the model excludes, and
on interlocked complex gates that conservatism can hide perfectly good
tests (the faulty machine dissolves into Φ and no output difference is
ever definite).  The paper accepts the loss during bulk fault simulation
(§5.4) — so do we — but per-fault generation deserves better.

Here the faulty circuit is *materialized* as a real netlist
(:func:`repro.circuit.faults.materialize_fault`) and simulated with the
same exhaustive settling explorer used for the good circuit.  Because a
faulty circuit driven by good-circuit-valid vectors may itself race, the
machine state is a **set** of possible stable states:

* applying a vector maps each member through its settling analysis and
  unions the outcomes;
* a fault is *detected* at a cycle when **every** member disagrees with
  the good circuit on some primary output — the paper's "corruption must
  show in all terminal stable states" (§5.2);
* if any member oscillates, exceeds the exploration cap, or the set
  grows beyond ``max_set``, the simulation reports ``None`` and the
  caller falls back to ternary semantics (sound, never optimistic).

This module owns no settling machinery of its own: all exploration
routes through :func:`repro.sgraph.explore.settle_report`, whose
excited-gate enumeration is the compiled function of
:mod:`repro.sim.engine` — the same engine every other simulation
workload shares.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.circuit.netlist import Circuit
from repro.sgraph.explore import settle_report

FaultyStates = FrozenSet[int]


def faulty_reset_states(
    faulty: Circuit,
    reset_state: int,
    cap: int = 50_000,
    max_set: int = 64,
) -> Optional[FaultyStates]:
    """Possible stable states of the faulty machine after reset forcing.

    ``reset_state`` already carries the output-fault pre-set (see
    ``materialize_fault``).  Returns None when the machine may oscillate
    or the analysis blows the caps.
    """
    report = settle_report(faulty, reset_state, cap)
    if report.oscillating or report.truncated:
        return None
    if len(report.stable_states) > max_set:
        return None
    return report.stable_states


def faulty_apply(
    faulty: Circuit,
    states: FaultyStates,
    pattern: int,
    cap: int = 50_000,
    max_set: int = 64,
) -> Optional[FaultyStates]:
    """Drive the inputs to ``pattern`` on every possible faulty state."""
    out = set()
    for state in states:
        started = faulty.apply_input_pattern(state, pattern)
        report = settle_report(faulty, started, cap)
        if report.oscillating or report.truncated:
            return None
        out |= report.stable_states
        if len(out) > max_set:
            return None
    return frozenset(out)


def faulty_detects(circuit: Circuit, good_state: int, states: FaultyStates) -> bool:
    """True when every possible faulty stable state mismatches the good
    outputs — detection guaranteed for any delay assignment."""
    if not states:
        return False
    for state in states:
        if all(
            ((state >> out) & 1) == ((good_state >> out) & 1)
            for out in circuit.outputs
        ):
            return False
    return True
