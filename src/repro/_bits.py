"""Bit-vector helpers shared across the package.

Circuit states are packed Python ints: bit *i* carries the value of signal
*i*.  Python ints are arbitrary precision, which also lets the parallel
fault simulator use one bit per faulty machine in a single word.
"""

from __future__ import annotations

from typing import Iterator


def bit(state: int, i: int) -> int:
    """Return bit ``i`` of ``state`` as 0 or 1."""
    return (state >> i) & 1


def set_bit(state: int, i: int, value: int) -> int:
    """Return ``state`` with bit ``i`` forced to ``value`` (0 or 1)."""
    if value:
        return state | (1 << i)
    return state & ~(1 << i)


def flip_bit(state: int, i: int) -> int:
    """Return ``state`` with bit ``i`` toggled."""
    return state ^ (1 << i)


def mask(n: int) -> int:
    """Return an ``n``-bit all-ones mask."""
    return (1 << n) - 1


if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(x: int) -> int:
        """Number of set bits in ``x`` (x must be non-negative)."""
        return x.bit_count()

else:  # pragma: no cover - exercised on 3.8/3.9 CI

    def popcount(x: int) -> int:
        """Number of set bits in ``x`` (x must be non-negative)."""
        return bin(x).count("1")


def iter_set_bits(x: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``x`` in increasing order."""
    i = 0
    while x:
        if x & 1:
            yield i
        x >>= 1
        i += 1


def bits_to_str(state: int, n: int) -> str:
    """Render the low ``n`` bits of ``state`` as a string, bit 0 first.

    Matches the paper's convention of writing states as signal-ordered
    binary strings (e.g. ``ABabcdey = 01010000``).
    """
    return "".join(str(bit(state, i)) for i in range(n))


def str_to_bits(text: str) -> int:
    """Inverse of :func:`bits_to_str`: character ``j`` becomes bit ``j``."""
    value = 0
    for i, ch in enumerate(text):
        if ch == "1":
            value |= 1 << i
        elif ch != "0":
            raise ValueError(f"invalid bit character {ch!r} in {text!r}")
    return value


def hamming(a: int, b: int) -> int:
    """Hamming distance between two bit vectors."""
    return popcount(a ^ b)
