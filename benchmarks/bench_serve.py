"""Service throughput: concurrent clients over mixed cold/warm work.

The serving promise is that the daemon in front of the ATPG engine
adds *service* value (queueing, streaming, caching) without becoming
the bottleneck: warm submissions — the common case once a corpus is
cached — must be answered at interactive HTTP latency, and a burst of
concurrent clients must sustain a floor request rate.

The bench runs a real in-process :class:`~repro.serve.server.ReproServer`
(inline back end, so timings measure the service path, not fork
startup) and drives it with ``N_CLIENTS`` threads of the stdlib
:class:`~repro.serve.client.ServeClient` over a mixed workload: every
client hammers the same small benchmark corpus, so the first touches
are cold (executed, cached) and everything after is warm (answered
from the store at submit time).  Asserted floors, deliberately
conservative for CI runners:

* **sustained throughput** ≥ ``MIN_RPS`` requests/second across the
  whole mixed burst (cold execution included);
* **warm-path latency**: median warm submit→answer round trip ≤
  ``MAX_WARM_MS`` milliseconds.

Results land in ``benchmarks/out/BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore
from repro.serve import QosPolicy, ReproServer, ServeClient

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_serve.json"

N_CLIENTS = 8
ROUNDS_PER_CLIENT = 6
CORPUS = ["dff", "chu150", "hazard", "ebergen"]

#: Conservative CI floors (local machines do far better).
MIN_RPS = 25.0
MAX_WARM_MS = 250.0

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


class _LoopThread:
    """The server's asyncio loop on a background thread."""

    def __init__(self, tmp_path):
        self.loop = None
        self.server = None
        self.client = None
        self._ready = threading.Event()
        self._stop = threading.Event()
        self._tmp = tmp_path
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)

        async def main():
            self.server = ReproServer(
                state_dir=self._tmp / "state",
                store=ResultStore(self._tmp / "cache"),
                workers=0,
                qos=QosPolicy(max_queue=256, per_client=256),
            )
            host, port = await self.server.start()
            self.client = ServeClient(f"http://{host}:{port}")
            self._ready.set()
            while not self._stop.is_set():
                await asyncio.sleep(0.02)
            await self.server.shutdown(drain=True, drain_timeout=10)

        self.loop.run_until_complete(main())
        self.loop.close()

    def __enter__(self):
        self.thread.start()
        assert self._ready.wait(15)
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self.thread.join(timeout=30)
        return False


def test_concurrent_mixed_workload_throughput(tmp_path):
    with _LoopThread(tmp_path) as ctx:
        base = ctx.client.base_url
        warm_ms = []
        n_requests = [0] * N_CLIENTS
        errors = []

        def client_loop(cid):
            client = ServeClient(base)
            try:
                for round_no in range(ROUNDS_PER_CLIENT):
                    for name in CORPUS:
                        t0 = time.perf_counter()
                        record = client.submit(
                            benchmark=name, seed=5, client=f"c{cid}"
                        )
                        elapsed = time.perf_counter() - t0
                        n_requests[cid] += 1
                        if record["state"] == "cached":
                            warm_ms.append(elapsed * 1000.0)
                        elif record["state"] in ("queued", "running"):
                            client.wait(record["id"], timeout=120)
                            n_requests[cid] += 1  # the status polls count once
            except Exception as exc:  # surfaced as a test failure below
                errors.append((cid, repr(exc)))

        threads = [
            threading.Thread(target=client_loop, args=(cid,))
            for cid in range(N_CLIENTS)
        ]
        t_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        wall = time.perf_counter() - t_start
        assert not errors, errors

        total_requests = sum(n_requests)
        rps = total_requests / wall
        warm_p50 = statistics.median(warm_ms) if warm_ms else None
        health = ctx.client.healthz()

    _results["mixed_workload"] = {
        "n_clients": N_CLIENTS,
        "rounds_per_client": ROUNDS_PER_CLIENT,
        "corpus": CORPUS,
        "total_requests": total_requests,
        "wall_seconds": round(wall, 3),
        "requests_per_second": round(rps, 1),
        "n_warm_answers": len(warm_ms),
        "warm_p50_ms": round(warm_p50, 3) if warm_p50 is not None else None,
        "warm_p95_ms": round(
            statistics.quantiles(warm_ms, n=20)[-1], 3
        ) if len(warm_ms) >= 20 else None,
        "executed_total": health["executed_total"],
        "floors": {"min_rps": MIN_RPS, "max_warm_ms": MAX_WARM_MS},
    }
    print(
        f"\n{total_requests} requests in {wall:.2f}s = {rps:.0f} req/s; "
        f"{len(warm_ms)} warm answers, p50 {warm_p50:.1f} ms; "
        f"{health['executed_total']} jobs actually executed"
    )

    # The whole corpus executed exactly once — every other submission
    # was a cache answer or coalesced onto an in-flight run.
    assert health["executed_total"] <= len(CORPUS) * 2
    assert len(warm_ms) > N_CLIENTS  # the warm path dominated
    assert rps >= MIN_RPS, f"throughput floor: {rps:.1f} < {MIN_RPS} req/s"
    assert warm_p50 is not None and warm_p50 <= MAX_WARM_MS, (
        f"warm-path latency floor: p50 {warm_p50:.1f} ms > {MAX_WARM_MS} ms"
    )
