"""Experiment E2 — regenerate **Table 2** (hazard-free, bounded delays).

The Table 2 subset is synthesized with the structural two-level back end
whose hazard-aware covers carry functionally redundant cubes — the
stand-in for the redundancy SIS adds against spurious pulses.  The paper
observes that coverage drops relative to Table 1 and that a few circuits
become very poorly testable; the assertions pin exactly that shape.
Rendered table: ``benchmarks/out/table-2.txt``.
"""

import pytest

from repro.benchmarks_data import TABLE2_NAMES, load_benchmark
from benchmarks.conftest import record_row, run_flow
from repro.core.report import result_row

_results = {}


@pytest.mark.parametrize("name", TABLE2_NAMES)
def test_table2_row(benchmark, name):
    load_benchmark(name, "two-level")  # synthesis outside the timed flow

    def flow():
        return run_flow(name, "two-level")

    out_res, in_res = benchmark.pedantic(flow, rounds=1, iterations=1)
    record_row("Table-2: hazard-free two-level (redundant covers)",
               result_row(name, out_res, in_res))
    _results[name] = in_res


def test_table2_shape():
    """Aggregate claims from the paper's §6 discussion of Table 2."""
    assert set(_results) == set(TABLE2_NAMES)
    coverages = {name: r.coverage for name, r in _results.items()}
    # Redundancy makes some circuits very poorly testable...
    assert sum(1 for c in coverages.values() if c < 0.5) >= 2
    # ...while others remain fully or nearly fully covered.
    assert sum(1 for c in coverages.values() if c >= 0.9) >= 3
    # Undetectable faults are *proven* so, not aborted guesses.
    for name, result in _results.items():
        assert result.n_aborted == 0, name
