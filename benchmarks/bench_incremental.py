"""Experiment E-incremental — the edit-rerun warm path.

The dominant real-world workload is edit → re-ATPG: one gate of a
netlist changes and everything else is untouched.  The whole-job cache
(PR 2) is useless there — the content key covers the source bytes, so
any edit is a full cold run.  The per-cohort incremental layer must
turn that into O(changed logic):

* **cold** — ATPG the benchmark from an empty cache (every cohort
  executes, the CSSG is built);
* **edit** — a single-gate edit (an internal signal rename: cohort
  cones that see the name go stale, the name-free CSSG fingerprint
  does not) followed by an incremental rerun.

Asserted floors: the rerun executes only the affected cohorts (reuse
> 0, executed < total, CSSG reused) and beats the cold run by at
least ``SPEEDUP_FLOOR`` wall clock.  The largest bundled benchmark by
state structure (``vbe10b``, 13 signals) with the symbolic CSSG engine
keeps the cold run honest — construction dominates, exactly the cost
an edit-rerun must not pay twice.

Results land in ``benchmarks/out/BENCH_incremental.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.benchmarks_data import load_benchmark
from repro.campaign import CampaignSpec, ResultStore, cohort_plan, expand
from repro.campaign.runner import execute_job_incremental
from repro.circuit.parser import netlist_to_text
from repro.core.atpg import AtpgOptions

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_incremental.json"

BENCH = "vbe10b"  #: largest bundled benchmark by state structure
EDIT = ("r$buf", "r$buf_r")  #: internal-signal rename: one chain stale

#: Asserted wall-clock floor for cold / edit-rerun (CI bar; local
#: machines and the acceptance criterion sit far above it).
SPEEDUP_FLOOR = 5.0

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


def _job_for(net_path):
    spec = CampaignSpec(
        benchmarks=[str(net_path)],
        fault_models=("input",),
        # the symbolic engine makes CSSG construction the honest
        # dominant cold cost on a 13-signal circuit
        options=AtpgOptions(cssg_method="symbolic"),
    )
    return expand(spec)[0]


def test_edit_rerun_speedup(tmp_path, capsys):
    base_text = netlist_to_text(load_benchmark(BENCH, "complex"))
    assert EDIT[0] in base_text and EDIT[1] not in base_text
    net = tmp_path / f"{BENCH}.net"
    net.write_text(base_text)

    # cold: median of fresh-cache runs (refresh re-executes everything)
    store = ResultStore(tmp_path / "cache")
    job = _job_for(net)
    cold_times = []
    cold_payload = cold_stats = None
    for i in range(3):
        t0 = time.perf_counter()
        cold_payload, _live, cold_stats = execute_job_incremental(
            job, store, refresh=i > 0
        )
        cold_times.append(time.perf_counter() - t0)
    cold = statistics.median(cold_times)
    assert cold_stats.cohorts_executed == cold_stats.cohorts_total > 1

    # the single-gate edit: rename an internal signal of one chain
    net.write_text(base_text.replace(EDIT[0], EDIT[1]))
    edited = _job_for(net)
    assert edited.key != job.key  # the whole-job cache would miss

    # Each timed iteration is a true first-rerun-after-edit: the stale
    # cohorts' fresh partials are deleted again between runs.
    stale_keys = [
        c.key for c in cohort_plan(edited) if not store.has_cohort(c.key)
    ]
    assert stale_keys
    warm_times = []
    warm_payload = warm_stats = None
    for _ in range(3):
        for key in stale_keys:
            store.delete_cohort(key)
        t0 = time.perf_counter()
        warm_payload, _live, warm_stats = execute_job_incremental(
            edited, store
        )
        warm_times.append(time.perf_counter() - t0)
    warm = statistics.median(warm_times)

    # only cohorts whose cones see the renamed signal re-executed, and
    # the name-free structural CSSG cache absorbed the rename outright
    assert warm_stats.cohorts_executed == len(stale_keys)
    assert 0 < warm_stats.cohorts_reused < warm_stats.cohorts_total
    assert warm_stats.cssg_reused
    assert warm_payload["n_covered"] == cold_payload["n_covered"]
    assert warm_payload["n_total"] == cold_payload["n_total"]
    first_rerun = _results.setdefault("edit_rerun", {})

    speedup = cold / warm if warm > 0 else float("inf")
    first_rerun.update(
        benchmark=BENCH,
        edit=f"rename {EDIT[0]} -> {EDIT[1]}",
        cold_seconds=round(cold, 6),
        edit_rerun_seconds=round(warm, 6),
        speedup=round(speedup, 2),
        speedup_floor=SPEEDUP_FLOOR,
        cold=cold_stats.to_json_dict(),
        rerun=warm_stats.to_json_dict(),
    )
    with capsys.disabled():
        print(
            f"\n[incremental] {BENCH}: cold {cold * 1e3:.1f}ms, edit-rerun "
            f"{warm * 1e3:.1f}ms, speedup {speedup:.1f}x "
            f"({warm_stats.cohorts_reused}/{warm_stats.cohorts_total} "
            f"cohorts reused, cssg_reused={warm_stats.cssg_reused})"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"edit-rerun only {speedup:.2f}x faster than cold "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
