"""Instrumentation overhead: telemetry must be ≤3% on the hot kernels.

The observability layer's contract is that it is safe to leave in the
code: disabled, instrumented sites cost one switch/None check per
handle; enabled, the meters batch their bookkeeping (see ``_WalkMeter``
in :mod:`repro.sim.arena`) so even armed collection stays within noise
of the uninstrumented timings.  This bench measures exactly that on the
two perf-floor workloads:

* the packed fault-simulation walk at W=2560 on the largest bundled
  benchmark (the :mod:`bench_ternary_cost` workload), and
* the symbolic reachability image microbench on ``wide_handshake(10)``
  (the :mod:`bench_symbolic` workload),

each run alternately with telemetry fully armed (metrics + ambient
tracer) and fully off, comparing *temporally adjacent* sample pairs and
taking the cleanest armed/off ratio (see :func:`interleaved_overhead` —
pairing cancels runner drift, the minimum sheds scheduler spikes the
way best-of timing does).  The asserted ceiling is **3% overhead when
armed** — the acceptance bar for shipping instrumentation inside
kernels.  Results land in ``benchmarks/out/BENCH_observability.json``.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, Tracer, use_tracer
from repro.obs import metrics as obs_metrics

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_observability.json"

#: Armed-vs-off overhead ceiling on kernel workloads.
MAX_OVERHEAD = 0.03

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


@pytest.fixture(autouse=True)
def _telemetry_off_after():
    yield
    obs_metrics.disable()


def interleaved_overhead(run_off, run_on, reps=11, inner=1):
    """Armed-vs-off overhead measured on temporally adjacent pairs.

    Shared runners drift (throttling, neighbours), so comparing a
    global best-of-off against a global best-of-on confounds drift with
    overhead.  Instead each rep times one off and one on sample
    back-to-back and contributes an on/off ratio; the reported overhead
    is the **minimum** ratio — the same noise-free-estimate logic as
    best-of timing (scheduler interference only ever adds time, so the
    cleanest pair is the honest one; a *systematic* overhead shows up
    in every pair and survives the min).  Each sample times ``inner``
    calls to amortize timer resolution.  The within-pair order flips
    every rep — throttling decays monotonically *within* a pair too,
    and a fixed order would bill that decay to whichever mode runs
    second.  Returns ``(t_off_min, t_on_min, overhead_min,
    overhead_median)`` — assert on the min (the noise-free estimate),
    report the median (the typical pair)."""

    def sample(run):
        t0 = time.perf_counter()
        for _ in range(inner):
            run()
        return (time.perf_counter() - t0) / inner

    ratios = []
    t_off = t_on = float("inf")
    for rep in range(reps):
        if rep % 2 == 0:
            off, on = sample(run_off), sample(run_on)
        else:
            on, off = sample(run_on), sample(run_off)
        ratios.append(on / off)
        t_off = min(t_off, off)
        t_on = min(t_on, on)
    ratios.sort()
    return t_off, t_on, ratios[0] - 1.0, ratios[len(ratios) // 2] - 1.0


def test_packed_walk_overhead():
    """Armed telemetry ≤3% on the W=2560 packed-sim walk."""
    from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
    from repro.circuit.faults import fault_universe
    from repro.sgraph.cssg import build_cssg
    from repro.sim.batch import FaultBatch

    circuit = max(
        (load_benchmark(name, "complex") for name in TABLE1_NAMES),
        key=lambda c: c.n_signals,
    )
    base = fault_universe(circuit, "input") + fault_universe(circuit, "output")
    faults = base * -(-2560 // len(base))
    cssg = build_cssg(circuit)
    patterns = cssg.random_walk(random.Random(3), 100)
    goods = []
    good = cssg.reset
    for pattern in patterns:
        good = cssg.edges[good][pattern]
        goods.append(good)
    batch = FaultBatch(circuit, faults)

    def run_walk():
        walk = batch.walk(cssg.reset)
        det = walk.observe(cssg.reset)
        for pattern, g in zip(patterns, goods):
            det |= walk.step(pattern, g)
        return det

    def run_off():
        obs_metrics.disable()
        return run_walk()

    def run_on():
        obs_metrics.enable(MetricsRegistry())
        return run_walk()

    assert run_off() == run_on()  # telemetry never changes detections
    t_off, t_on, overhead, typical = interleaved_overhead(
        run_off, run_on, inner=5
    )
    n = len(patterns)
    print(
        f"\npacked walk W={len(faults)}: off {1e6 * t_off / n:.1f}us/pat "
        f"vs armed {1e6 * t_on / n:.1f}us/pat -> best {100 * overhead:+.2f}% "
        f"/ median {100 * typical:+.2f}%"
    )
    _results["packed_walk"] = {
        "benchmark": circuit.name,
        "width": len(faults),
        "n_patterns": n,
        "off_us_per_pattern": round(1e6 * t_off / n, 2),
        "armed_us_per_pattern": round(1e6 * t_on / n, 2),
        "overhead_fraction": round(overhead, 4),
        "overhead_fraction_median": round(typical, 4),
    }
    assert overhead <= MAX_OVERHEAD, (
        f"armed telemetry costs {100 * overhead:.2f}% on the packed walk "
        f"(ceiling {100 * MAX_OVERHEAD:.0f}%)"
    )


def test_symbolic_image_overhead():
    """Armed telemetry (metrics + spans) ≤3% on reachability images."""
    from bench_symbolic import wide_handshake
    from repro.sgraph.symbolic import SymbolicTcsg

    circuit = wide_handshake(10)

    def run_reach():
        s = SymbolicTcsg(
            circuit, auto_gc_nodes=5_000, auto_reorder_nodes=1_000
        )
        return s.count_states(s.reachable())

    def run_off():
        obs_metrics.disable()
        return run_reach()

    def run_on():
        obs_metrics.enable(MetricsRegistry())
        with use_tracer(Tracer()):
            return run_reach()

    assert run_off() == run_on()  # same reachable state count
    t_off, t_on, overhead, typical = interleaved_overhead(run_off, run_on)
    print(
        f"\nimage m=10: off {1e3 * t_off:.1f}ms vs armed "
        f"{1e3 * t_on:.1f}ms -> best {100 * overhead:+.2f}% "
        f"/ median {100 * typical:+.2f}%"
    )
    _results["symbolic_image"] = {
        "m": 10,
        "off_ms": round(1e3 * t_off, 2),
        "armed_ms": round(1e3 * t_on, 2),
        "overhead_fraction": round(overhead, 4),
        "overhead_fraction_median": round(typical, 4),
    }
    assert overhead <= MAX_OVERHEAD, (
        f"armed telemetry costs {100 * overhead:.2f}% on the image "
        f"microbench (ceiling {100 * MAX_OVERHEAD:.0f}%)"
    )
