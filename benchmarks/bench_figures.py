"""Experiments E3–E6 — the paper's figures as measurable artifacts.

* Figure 1(a): non-confluence detection on the race circuit;
* Figure 1(b): oscillation detection on the two-gate chaser;
* Figure 2: TCSG -> CSSG pruning (valid vs rejected vectors);
* Figures 3/4: justification corruption and differentiation semantics,
  measured through a 3-phase generation run.
"""


from repro.benchmarks_data import load_benchmark, load_figure_circuit
from repro.circuit.faults import input_fault_universe
from repro.core.three_phase import ThreePhaseGenerator
from repro.sgraph.cssg import build_cssg
from repro.sgraph.explore import settle_report
from repro.sim import ternary


def test_fig1a_nonconfluence(benchmark):
    circuit = load_figure_circuit("fig1a")
    started = circuit.apply_input_pattern(circuit.require_reset(), 0b01)

    report = benchmark(lambda: settle_report(circuit, started))
    assert report.nonconfluent
    assert len(report.stable_states) == 2


def test_fig1a_ternary_flags_the_race(benchmark):
    circuit = load_figure_circuit("fig1a")
    reset = ternary.from_binary(circuit.require_reset(), circuit.n_signals)

    result = benchmark(lambda: ternary.apply_pattern(circuit, reset, 0b01))
    assert not ternary.is_definite(result)


def test_fig1b_oscillation(benchmark):
    circuit = load_figure_circuit("fig1b")
    started = circuit.apply_input_pattern(circuit.require_reset(), 1)

    report = benchmark(lambda: settle_report(circuit, started))
    assert report.oscillating


def test_fig2_cssg_prunes_the_tcsg(benchmark):
    """Figure 2's message in numbers: of all input vectors applicable to
    the stable states, only the confluent-and-stable ones survive."""
    circuit = load_benchmark("chu150", "complex")

    cssg = benchmark.pedantic(
        lambda: build_cssg(circuit, method="exact"), rounds=1, iterations=1
    )
    stats = cssg.stats
    assert stats.n_valid == cssg.n_edges
    rejected = stats.n_nonconfluent + stats.n_oscillating + stats.n_too_slow
    assert rejected > 0
    assert stats.n_vectors_tried >= stats.n_valid + rejected


def test_fig3_fig4_three_phase_anatomy(benchmark):
    """A fault whose test needs real justification + differentiation."""
    circuit = load_benchmark("sbuf-send-ctl", "complex")
    cssg = build_cssg(circuit)
    generator = ThreePhaseGenerator(cssg)
    # Find a fault requiring a non-empty sequence.
    target = None
    for fault in input_fault_universe(circuit):
        outcome = generator.generate(fault)
        if outcome.detected and outcome.patterns:
            target = fault
            break
    assert target is not None

    outcome = benchmark(lambda: generator.generate(target))
    assert outcome.detected
    assert outcome.justification_len + outcome.differentiation_len >= 1 \
        or outcome.detected_during_justification
