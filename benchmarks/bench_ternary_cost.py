"""Experiment E7 — ternary simulation cost scaling (paper §5.4).

The paper quotes [6]: ternary simulation is O(n^2) in the number of
gates — at most 2n sweep states with n evaluations each.  We measure
settling time on inverter chains of growing length and check the growth
is polynomial (time ratio bounded by ~cubic in the size ratio, allowing
interpreter noise), not exponential.

A second experiment pits the compiled event-driven engine against the
seed's sweep implementation (preserved in :mod:`repro.sim.legacy`) on
the largest bundled benchmark: ~2.5x measured on an idle machine, with
a 1.5x floor asserted (noise headroom for shared CI runners); the
printed ratio keeps regressions visible in CI logs.
"""

import time

import pytest

from repro.circuit.netlist import Circuit
from repro.sim import legacy, ternary

CHAIN_SIZES = [8, 16, 32, 64]


def inverter_chain(n: int) -> Circuit:
    """A buffered input driving n chained inverters."""
    c = Circuit(f"chain{n}")
    c.add_input("A")
    prev = "A"
    reset = {"A": 0}
    for i in range(n):
        name = f"g{i}"
        c.add_gate(name, gtype="INV", inputs=[prev])
        reset[name] = (i + 1) % 2
        prev = name
    c.mark_output(prev)
    c.set_reset(reset)
    return c.finalize()


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_ternary_settle_chain(benchmark, n):
    circuit = inverter_chain(n)
    reset = circuit.require_reset()
    started = circuit.apply_input_pattern(reset, 1)
    start_ts = ternary.from_binary(started, circuit.n_signals)

    result = benchmark(lambda: ternary.settle(circuit, start_ts))
    assert ternary.is_definite(result)


def test_growth_is_polynomial():
    times = {}
    for n in (16, 64):
        circuit = inverter_chain(n)
        started = circuit.apply_input_pattern(circuit.require_reset(), 1)
        start_ts = ternary.from_binary(started, circuit.n_signals)
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            ternary.settle(circuit, start_ts)
        times[n] = (time.perf_counter() - t0) / reps
    ratio = times[64] / times[16]
    # O(n^2) predicts ~16x; leave generous headroom for noise, but an
    # exponential blow-up (2^48) is firmly excluded.
    assert ratio < 200, f"settling cost ratio {ratio:.1f} looks super-polynomial"


# -- engine vs seed implementation on the largest bundled benchmark ------


def _settle_workload(circuit):
    """The CSSG-style settle workload: every input vector from reset."""
    reset = circuit.require_reset()
    n = circuit.n_signals
    starts = []
    for pattern in range(1 << circuit.n_inputs):
        started = circuit.apply_input_pattern(reset, pattern)
        starts.append(ternary.from_binary(started, n))
    return starts


def test_engine_speedup_vs_seed_on_largest_benchmark():
    from repro.benchmarks_data import TABLE1_NAMES, load_benchmark

    circuit = max(
        (load_benchmark(name, "complex") for name in TABLE1_NAMES),
        key=lambda c: c.n_signals,
    )
    starts = _settle_workload(circuit)
    # Warm both paths (engine compilation happens here, outside timing),
    # and check bit-identical results while at it.
    for ts in starts:
        assert ternary.settle(circuit, ts) == legacy.settle(circuit, ts)

    def measure(fn, reps=20):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(reps):
                for ts in starts:
                    fn(circuit, ts)
            best = min(best, (time.perf_counter() - t0) / reps)
        return best

    t_legacy = measure(legacy.settle)
    t_engine = measure(ternary.settle)
    speedup = t_legacy / t_engine
    print(
        f"\n{circuit.name} (n_signals={circuit.n_signals}): "
        f"seed {1e6 * t_legacy:.1f}us vs engine {1e6 * t_engine:.1f}us "
        f"per {len(starts)}-vector sweep -> {speedup:.1f}x"
    )
    # Measured ~2.6x on an idle machine; the asserted floor leaves
    # headroom for noisy shared CI runners and interpreter-version
    # variance — the printed ratio above is what CI logs watch.
    assert speedup >= 1.5, f"engine speedup {speedup:.2f}x below the 1.5x floor"
