"""Experiment E7 — ternary simulation cost scaling (paper §5.4).

The paper quotes [6]: ternary simulation is O(n^2) in the number of
gates — at most 2n sweep states with n evaluations each.  We measure
settling time on inverter chains of growing length and check the growth
is polynomial (time ratio bounded by ~cubic in the size ratio, allowing
interpreter noise), not exponential.

A second experiment pits the compiled event-driven engine against the
seed's sweep implementation (preserved in :mod:`repro.sim.legacy`) on
the largest bundled benchmark: ~2.5x measured on an idle machine, with
a 1.5x floor asserted (noise headroom for shared CI runners); the
printed ratio keeps regressions visible in CI logs.

A third experiment benchmarks wide packed fault simulation: the arena
walk kernel (:meth:`FaultBatch.walk`) against the PR-5 chunked path,
reconstructed inline as a list of 64-wide ``FaultBatch`` lanes each
re-settling through the per-gate-closure worklist engine.  At a
2560-machine universe the walk kernel measures ~24x (and the gap grows
with width); a ≥10x floor and an absolute words·gates/sec throughput
floor are asserted.  Results land in
``benchmarks/out/BENCH_ternary_cost.json``.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.circuit.netlist import Circuit
from repro.sim import legacy, ternary

CHAIN_SIZES = [8, 16, 32, 64]

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_ternary_cost.json"

# PR-5 reference measurements for the trajectory record (idle machine):
# the chunked splitter at W=2560 on vbe10b, and the monolithic walk it
# replaced at native width.
_PR5_REFERENCE = {
    "chunked_w2560_us_per_pattern": 716.4,
    "monolithic_walk_w40_us_per_pattern": 11.9,
}

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


def inverter_chain(n: int) -> Circuit:
    """A buffered input driving n chained inverters."""
    c = Circuit(f"chain{n}")
    c.add_input("A")
    prev = "A"
    reset = {"A": 0}
    for i in range(n):
        name = f"g{i}"
        c.add_gate(name, gtype="INV", inputs=[prev])
        reset[name] = (i + 1) % 2
        prev = name
    c.mark_output(prev)
    c.set_reset(reset)
    return c.finalize()


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_ternary_settle_chain(benchmark, n):
    circuit = inverter_chain(n)
    reset = circuit.require_reset()
    started = circuit.apply_input_pattern(reset, 1)
    start_ts = ternary.from_binary(started, circuit.n_signals)

    result = benchmark(lambda: ternary.settle(circuit, start_ts))
    assert ternary.is_definite(result)


def test_growth_is_polynomial():
    times = {}
    for n in (16, 64):
        circuit = inverter_chain(n)
        started = circuit.apply_input_pattern(circuit.require_reset(), 1)
        start_ts = ternary.from_binary(started, circuit.n_signals)
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            ternary.settle(circuit, start_ts)
        times[n] = (time.perf_counter() - t0) / reps
    ratio = times[64] / times[16]
    # O(n^2) predicts ~16x; leave generous headroom for noise, but an
    # exponential blow-up (2^48) is firmly excluded.
    assert ratio < 200, f"settling cost ratio {ratio:.1f} looks super-polynomial"


# -- engine vs seed implementation on the largest bundled benchmark ------


def _settle_workload(circuit):
    """The CSSG-style settle workload: every input vector from reset."""
    reset = circuit.require_reset()
    n = circuit.n_signals
    starts = []
    for pattern in range(1 << circuit.n_inputs):
        started = circuit.apply_input_pattern(reset, pattern)
        starts.append(ternary.from_binary(started, n))
    return starts


def test_engine_speedup_vs_seed_on_largest_benchmark():
    from repro.benchmarks_data import TABLE1_NAMES, load_benchmark

    circuit = max(
        (load_benchmark(name, "complex") for name in TABLE1_NAMES),
        key=lambda c: c.n_signals,
    )
    starts = _settle_workload(circuit)
    # Warm both paths (engine compilation happens here, outside timing),
    # and check bit-identical results while at it.
    for ts in starts:
        assert ternary.settle(circuit, ts) == legacy.settle(circuit, ts)

    def measure(fn, reps=20):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(reps):
                for ts in starts:
                    fn(circuit, ts)
            best = min(best, (time.perf_counter() - t0) / reps)
        return best

    t_legacy = measure(legacy.settle)
    t_engine = measure(ternary.settle)
    speedup = t_legacy / t_engine
    print(
        f"\n{circuit.name} (n_signals={circuit.n_signals}): "
        f"seed {1e6 * t_legacy:.1f}us vs engine {1e6 * t_engine:.1f}us "
        f"per {len(starts)}-vector sweep -> {speedup:.1f}x"
    )
    _results["engine_settle"] = {
        "benchmark": circuit.name,
        "n_signals": circuit.n_signals,
        "seed_us_per_sweep": round(1e6 * t_legacy, 1),
        "engine_us_per_sweep": round(1e6 * t_engine, 1),
        "speedup": round(speedup, 2),
    }
    # Measured ~2.6x on an idle machine; the asserted floor leaves
    # headroom for noisy shared CI runners and interpreter-version
    # variance — the printed ratio above is what CI logs watch.
    assert speedup >= 1.5, f"engine speedup {speedup:.2f}x below the 1.5x floor"


# -- packed fault simulation: arena walk vs the PR-5 chunked kernel ------


class Pr5ChunkedSim:
    """The PR-5 wide-universe path, reconstructed: split the fault list
    into 64-machine :class:`FaultBatch` lanes and run each through the
    per-gate-closure worklist engine with bignum state tuples.  This is
    byte-for-byte the control flow the old ``ChunkedFaultSim`` used, so
    the benchmark measures exactly what the arena walk replaced."""

    def __init__(self, circuit, faults, chunk_width=64):
        from repro.sim.batch import FaultBatch

        self.batches = [
            FaultBatch(circuit, faults[o:o + chunk_width])
            for o in range(0, len(faults), chunk_width)
        ]
        self.chunk_width = chunk_width

    def run(self, reset, patterns, goods):
        cw = self.chunk_width
        states = [b.reset_and_settle(reset) for b in self.batches]
        det = 0
        for off, (b, s) in enumerate(zip(self.batches, states)):
            det |= b.observe(s, reset) << (off * cw)
        for p, g in zip(patterns, goods):
            states = [
                b.apply_settled(s, p) for b, s in zip(self.batches, states)
            ]
            for off, (b, s) in enumerate(zip(self.batches, states)):
                det |= b.observe(s, g) << (off * cw)
        return det


def test_packed_fault_sim_speedup_and_throughput():
    """Arena walk ≥10x over the PR-5 chunked kernel on a 2560-machine
    universe (measured ~24x), with an absolute throughput floor in
    fault-words x gate-evals per second."""
    from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
    from repro.circuit.faults import fault_universe
    from repro.sgraph.cssg import build_cssg
    from repro.sim.batch import FaultBatch

    circuit = max(
        (load_benchmark(name, "complex") for name in TABLE1_NAMES),
        key=lambda c: c.n_signals,
    )
    base = fault_universe(circuit, "input") + fault_universe(circuit, "output")
    # Replicate the universe to a wide-regime width: identical detection
    # words per replica double as a self-check.
    faults = base * -(-2560 // len(base))
    width = len(faults)
    cssg = build_cssg(circuit)
    patterns = cssg.random_walk(random.Random(3), 100)
    goods = []
    good = cssg.reset
    for pattern in patterns:
        good = cssg.edges[good][pattern]
        goods.append(good)

    old = Pr5ChunkedSim(circuit, faults)
    batch = FaultBatch(circuit, faults)

    def run_old():
        return old.run(cssg.reset, patterns, goods)

    def run_walk():
        walk = batch.walk(cssg.reset)
        det = walk.observe(cssg.reset)
        for pattern, g in zip(patterns, goods):
            det |= walk.step(pattern, g)
        return det

    assert run_old() == run_walk()  # bit-identical detection words

    def best_of(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_old = best_of(run_old)
    t_walk = best_of(run_walk)
    speedup = t_old / t_walk
    n_patterns = len(patterns)
    n_words = -(-width // 64)
    # Each pattern settles every gate for every 64-machine word at least
    # once, so this undercounts work — a safe throughput denominator.
    throughput = n_words * len(circuit.gates) * n_patterns / t_walk
    print(
        f"\n{circuit.name} W={width}: pr5-chunked "
        f"{1e6 * t_old / n_patterns:.1f}us/pat vs arena walk "
        f"{1e6 * t_walk / n_patterns:.1f}us/pat -> {speedup:.1f}x, "
        f"{throughput / 1e6:.1f}M words*gates/s"
    )
    _results["packed_fault_sim"] = {
        "benchmark": circuit.name,
        "width": width,
        "n_patterns": n_patterns,
        "pr5_chunked_us_per_pattern": round(1e6 * t_old / n_patterns, 1),
        "arena_walk_us_per_pattern": round(1e6 * t_walk / n_patterns, 1),
        "speedup": round(speedup, 2),
        "words_gates_per_sec": round(throughput),
    }
    _results["pr5_reference"] = _PR5_REFERENCE
    # Measured ~24x on an idle machine (and rising with width); the 10x
    # floor is the PR's acceptance bar with >2x noise headroom.
    assert speedup >= 10.0, (
        f"packed-sim speedup {speedup:.2f}x below the 10x floor"
    )
    # Absolute floor: measured ~13M words*gates/s; even a heavily loaded
    # runner clears 1M, while the PR-5 kernel (~0.6M) cannot.
    assert throughput >= 1e6, (
        f"packed-sim throughput {throughput / 1e6:.2f}M words*gates/s "
        f"below the 1M floor"
    )
