"""Experiment E7 — ternary simulation cost scaling (paper §5.4).

The paper quotes [6]: ternary simulation is O(n^2) in the number of
gates — at most 2n sweep states with n evaluations each.  We measure
settling time on inverter chains of growing length and check the growth
is polynomial (time ratio bounded by ~cubic in the size ratio, allowing
interpreter noise), not exponential.
"""

import time

import pytest

from repro.circuit.netlist import Circuit
from repro.sim import ternary

CHAIN_SIZES = [8, 16, 32, 64]


def inverter_chain(n: int) -> Circuit:
    """A buffered input driving n chained inverters."""
    c = Circuit(f"chain{n}")
    c.add_input("A")
    prev = "A"
    reset = {"A": 0}
    for i in range(n):
        name = f"g{i}"
        c.add_gate(name, gtype="INV", inputs=[prev])
        reset[name] = (i + 1) % 2
        prev = name
    c.mark_output(prev)
    c.set_reset(reset)
    return c.finalize()


@pytest.mark.parametrize("n", CHAIN_SIZES)
def test_ternary_settle_chain(benchmark, n):
    circuit = inverter_chain(n)
    reset = circuit.require_reset()
    started = circuit.apply_input_pattern(reset, 1)
    start_ts = ternary.from_binary(started, circuit.n_signals)

    result = benchmark(lambda: ternary.settle(circuit, start_ts))
    assert ternary.is_definite(result)


def test_growth_is_polynomial():
    times = {}
    for n in (16, 64):
        circuit = inverter_chain(n)
        started = circuit.apply_input_pattern(circuit.require_reset(), 1)
        start_ts = ternary.from_binary(started, circuit.n_signals)
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            ternary.settle(circuit, start_ts)
        times[n] = (time.perf_counter() - t0) / reps
    ratio = times[64] / times[16]
    # O(n^2) predicts ~16x; leave generous headroom for noise, but an
    # exponential blow-up (2^48) is firmly excluded.
    assert ratio < 200, f"settling cost ratio {ratio:.1f} looks super-polynomial"
