"""Fault-model workload benchmark: the four universes on Table 1.

For every bundled Table-1 benchmark and every registered fault model,
record the universe size, the collapse ratio, and the wall time of one
full default-flow ATPG run (shared CSSG per circuit, in-process — the
timed work is the ATPG itself).  Results go to
``benchmarks/out/BENCH_faultmodels.json`` (uploaded as a CI artifact)
so the per-model cost trajectory is tracked as the corpus and the
models grow.

Assertions are deliberately *shape* checks, not speed floors: every
model must run end to end on the whole corpus, stuck-at universes must
match their closed-form sizes, and the per-model scenario count must
multiply the corpus as advertised (23 benchmarks × 4 models).
"""

import json
import time
from pathlib import Path

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.circuit.faults import fault_universe
from repro.core.atpg import AtpgOptions, cssg_for
from repro.core.collapse import collapse_faults, collapse_ratio
from repro.faultmodels import model_names
from repro.flow import Flow

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_faultmodels.json"

_results = {"models": {}, "totals": {}}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    models = _results["models"]
    _results["totals"] = {
        model: {
            "n_faults": sum(r["n_faults"] for r in rows.values()),
            "n_covered": sum(r["n_covered"] for r in rows.values()),
            "n_undetectable": sum(r["n_undetectable"] for r in rows.values()),
            "atpg_seconds": round(
                sum(r["atpg_seconds"] for r in rows.values()), 3
            ),
            "n_benchmarks": len(rows),
        }
        for model, rows in models.items()
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")
    for model, tot in sorted(_results["totals"].items()):
        print(
            f"  {model:<12} {tot['n_faults']:>5} faults  "
            f"{tot['n_covered']:>5} covered  {tot['atpg_seconds']:>7.2f}s"
        )


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_all_models_run_on(name):
    circuit = load_benchmark(name, "complex")
    cssg = cssg_for(circuit, AtpgOptions(seed=0))
    for model in model_names():
        faults = fault_universe(circuit, model)
        reps, _ = collapse_faults(circuit, faults)
        t0 = time.perf_counter()
        result = Flow.default().run(
            circuit, AtpgOptions(fault_model=model, seed=0), cssg=cssg
        )
        elapsed = time.perf_counter() - t0
        # Closed-form universe sizes for the stuck-at pair; the new
        # models may legitimately be empty (bridging on chains).
        if model == "input":
            assert len(faults) == 2 * sum(len(g.support) for g in circuit.gates)
        elif model in ("output", "transition"):
            assert len(faults) == 2 * circuit.n_gates
        assert result.n_total == len(faults)
        assert set(result.statuses) == set(faults)
        _results["models"].setdefault(model, {})[name] = {
            "n_faults": len(faults),
            "n_collapsed": len(reps),
            "collapse_ratio": round(collapse_ratio(len(faults), len(reps)), 4),
            "n_covered": result.n_covered,
            "n_undetectable": result.n_undetectable,
            "n_aborted": result.n_aborted,
            "coverage": round(result.coverage, 4),
            "atpg_seconds": round(elapsed, 4),
        }


def test_corpus_scenario_multiplier():
    """The registry turns the 23-benchmark corpus into 4x the scenarios
    (one per registered model) — the ROADMAP's new-workload axis."""
    assert len(TABLE1_NAMES) * len(model_names()) == 92
