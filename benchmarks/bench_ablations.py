"""Experiment E9 — ablations over the design choices DESIGN.md calls out.

* random-TPG budget vs the rnd/3-ph split (paper §5.4 / §6);
* k (test-cycle bound) sweep: too-small k starves the CSSG (paper §4.1);
* max simultaneous input changes (tester pin constraints);
* CSSG validity methods: exact vs ternary vs hybrid edge counts;
* explicit vs symbolic (BDD) reachability agreement and cost.
"""

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import input_fault_universe
from repro.core.atpg import AtpgOptions
from repro.flow import Flow
from repro.core.random_tpg import random_tpg
from repro.sgraph.cssg import build_cssg
from repro.sgraph.symbolic import SymbolicTcsg


def test_random_budget_split(benchmark):
    """More random budget -> more rnd, fewer 3-ph detections, same FC."""
    circuit = load_benchmark("sbuf-send-ctl", "complex")
    results = {}

    def sweep():
        for walks, length in ((1, 1), (4, 8), (16, 64)):
            options = AtpgOptions(seed=11, random_walks=walks, walk_len=length)
            results[(walks, length)] = Flow.default().run(circuit, options)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    coverages = {key: r.coverage for key, r in results.items()}
    assert len(set(coverages.values())) == 1, "final FC must not depend on budget"
    assert results[(1, 1)].n_random <= results[(16, 64)].n_random
    assert results[(1, 1)].n_three_phase >= results[(16, 64)].n_three_phase


def test_k_sweep(benchmark):
    """The CSSG grows monotonically with k and saturates (§4.1)."""
    circuit = load_benchmark("master-read", "complex")

    def sweep():
        return {k: build_cssg(circuit, k=k, method="exact").n_edges
                for k in (1, 2, 4, 8, 32)}

    edges = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = [edges[k] for k in (1, 2, 4, 8, 32)]
    assert values == sorted(values)
    assert edges[32] == edges[8], "edge count saturates once k covers |sigma|"
    assert edges[1] < edges[32]


def test_max_input_changes(benchmark):
    """Restricting simultaneous pin changes shrinks the vector set."""
    circuit = load_benchmark("chu150", "complex")

    def sweep():
        return {
            limit: build_cssg(circuit, max_input_changes=limit).n_edges
            for limit in (1, 2, None)
        }

    edges = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert edges[1] <= edges[2] <= edges[None]


@pytest.mark.parametrize("name", ["ebergen", "converta"])
def test_cssg_method_comparison(benchmark, name):
    """hybrid accepts the union of exact and ternary acceptances."""
    circuit = load_benchmark(name, "two-level")

    def build_all():
        return {m: build_cssg(circuit, method=m)
                for m in ("exact", "ternary", "hybrid")}

    cssgs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    exact, tern, hybrid = (cssgs[m] for m in ("exact", "ternary", "hybrid"))
    assert hybrid.n_edges >= max(exact.n_edges, tern.n_edges)


def test_symbolic_vs_explicit_reachability(benchmark):
    circuit = load_benchmark("vbe5b", "complex")
    sym = SymbolicTcsg(circuit)

    reached = benchmark(lambda: sym.reachable())
    explicit = build_cssg(circuit, method="exact")
    symbolic_stable = set(sym.enumerate_states(sym.mgr.apply_and(reached, sym.stable)))
    assert explicit.states <= symbolic_stable


# The textbook circuit where ternary conservatism hides a perfectly
# good test (the exact_sim docstring's "interlocked complex gates"):
# ``b`` lags ``a``, so the window gate ``w = a & ~b`` never opens under
# the gate-delay model and the transparent arbiter q1/q2 stays silent —
# the good machine is confluent.  Stick w's ``b`` pin at 0 and ``w``
# follows ``a``: the arbiter races to (1,0) or (0,1), *both* of which
# corrupt an output, so exact set-semantics detection succeeds — while
# ternary simulation dissolves the cross-coupled pair into Φ and can
# never certify a definite difference.
_INTERLOCK_NET = """
.model interlock
.inputs A
.gate a BUF A
.gate b BUF a
.expr w = a & ~b
.expr q1 = (w & ~q2) | (q1 & w)
.expr q2 = (w & ~q1) | (q2 & w)
.outputs q1 q2
.reset A=0 a=0 b=0 w=0 q1=0 q2=0
"""


def test_exact_vs_ternary_faulty_semantics(benchmark):
    """Exact faulty-machine semantics never loses coverage vs ternary,
    and recovers it where ternary conservatism bites (interlocked
    gates racing to all-corrupted outcomes)."""
    from repro.circuit.parser import parse_netlist

    circuit = parse_netlist(_INTERLOCK_NET)
    results = {}

    def run_both():
        for semantics in ("exact", "ternary"):
            options = AtpgOptions(seed=11, faulty_semantics=semantics)
            results[semantics] = Flow.default().run(circuit, options)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert results["exact"].n_covered >= results["ternary"].n_covered
    assert results["exact"].n_covered > results["ternary"].n_covered
    # And on the bundled handshake suite the two semantics agree — the
    # conservatism gap needs interlocked gates the suite avoids.
    suite = load_benchmark("chu150", "complex")
    per = {}
    for semantics in ("exact", "ternary"):
        options = AtpgOptions(seed=11, faulty_semantics=semantics)
        per[semantics] = Flow.default().run(suite, options)
    assert per["exact"].n_covered >= per["ternary"].n_covered


def test_fault_collapsing_ablation(benchmark):
    """Collapsing shrinks the per-fault work list losslessly."""
    from repro.core.collapse import collapse_faults

    circuit = load_benchmark("sbuf-send-ctl", "complex")
    faults = input_fault_universe(circuit)
    results = {}

    def run_both():
        for collapse in (False, True):
            options = AtpgOptions(seed=11, collapse=collapse)
            results[collapse] = Flow.default().run(circuit, options)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    reps, _ = collapse_faults(circuit, faults)
    assert len(reps) <= len(faults)
    assert results[False].n_covered == results[True].n_covered
