"""Benchmark harness support.

Each table bench times the full ATPG flow per circuit and accumulates a
Table 1/2-style row; at session end the rendered tables are printed and
written to ``benchmarks/out/*.txt`` so EXPERIMENTS.md can cite them.

The random-TPG budget (one walk of one vector before deterministic
generation takes over) is calibrated so the rnd / 3-ph / sim split is in
the paper's regime (~45–55% random coverage) — see DESIGN.md E8.
"""

from pathlib import Path
from typing import Dict, List

import pytest

from repro.campaign import CampaignSpec, expand, run_campaign
from repro.core.atpg import AtpgOptions
from repro.core.report import TableRow, format_table

OUT_DIR = Path(__file__).resolve().parent / "out"

#: Budget used by the table benches (paper-calibrated split).
PAPER_BUDGET = dict(random_walks=1, walk_len=1)

_tables: Dict[str, List[TableRow]] = {}


def run_flow(name, style, seed=11):
    """Both fault-model runs for one benchmark, through the campaign
    layer's in-process mode (``workers=0``, no cache) so the timed work
    is the ATPG itself — the CSSG is shared between the two model jobs
    exactly as the pre-campaign harness did."""
    spec = CampaignSpec(
        benchmarks=[name],
        styles=(style,),
        fault_models=("output", "input"),
        seeds=(seed,),
        options=AtpgOptions(**PAPER_BUDGET),
    )
    report = run_campaign(expand(spec), workers=0, store=None)
    failed = [o for o in report.outcomes if not o.ok]
    assert not failed, failed
    by_model = {o.job.fault_model: o.result() for o in report.outcomes}
    return by_model["output"], by_model["input"]


def record_row(table: str, row: TableRow) -> None:
    _tables.setdefault(table, []).append(row)


@pytest.fixture(scope="session", autouse=True)
def emit_tables():
    yield
    OUT_DIR.mkdir(exist_ok=True)
    for name, rows in sorted(_tables.items()):
        text = format_table(rows, title=name)
        print("\n" + text)
        out = OUT_DIR / f"{name.split()[0].lower().replace(':', '')}.txt"
        out.write_text(text + "\n")
