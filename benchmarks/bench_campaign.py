"""Experiment E-campaign — the orchestration layer on the full corpus.

Runs the whole Table-1 campaign three ways and pins the subsystem's
contract:

* **parity** — the sharded parallel path produces byte-identical result
  payloads (up to ``cpu_seconds``) to the serial in-process path, for
  every benchmark, model and seed;
* **warm cache** — a rerun against a populated store executes zero ATPG
  jobs;
* **speedup** — with 4 workers the cold run beats ``workers=0`` by at
  least 1.5x wall clock.  Asserted only when the machine actually has
  >= 4 CPUs (CI runners and the 1-CPU sandbox merely report the ratio —
  a speedup bar on hardware without parallelism measures the scheduler,
  not the subsystem).

Circuits are pre-synthesized before timing starts so both modes measure
CSSG + ATPG work; three seeds give the pool enough work per group for
scheduling overhead to amortize.
"""

import os
import time

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.campaign import CampaignSpec, ResultStore, expand, run_campaign
from repro.core.atpg import AtpgOptions


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _spec() -> CampaignSpec:
    return CampaignSpec(
        benchmarks=TABLE1_NAMES,
        styles=("complex",),
        fault_models=("output", "input"),
        seeds=(0, 1, 2),
        options=AtpgOptions(random_walks=1, walk_len=1),
    )


def _strip_cpu(payload):
    clean = dict(payload)
    clean.pop("cpu_seconds")
    return clean


def test_campaign_parallel_parity_cache_and_speedup(tmp_path, capsys):
    for name in TABLE1_NAMES:  # both paths start from warm synthesis
        load_benchmark(name, "complex")
    jobs = expand(_spec())
    # Untimed warm-up: populates the per-circuit compiled-engine caches,
    # which forked workers would otherwise inherit from the serial pass
    # for free (that asymmetry once produced a "2.5x speedup" on 1 CPU).
    run_campaign(jobs, workers=0, store=None)

    serial_store = ResultStore(tmp_path / "serial")
    t0 = time.perf_counter()
    serial = run_campaign(jobs, workers=0, store=serial_store)
    serial_wall = time.perf_counter() - t0
    assert serial.all_ok and serial.n_ran == len(jobs)

    parallel_store = ResultStore(tmp_path / "parallel")
    t0 = time.perf_counter()
    parallel = run_campaign(jobs, workers=4, store=parallel_store)
    parallel_wall = time.perf_counter() - t0
    assert parallel.all_ok and parallel.n_ran == len(jobs)

    # Parity: identical results job-for-job, serial vs sharded.
    serial_by_key = serial.by_key
    for outcome in parallel.outcomes:
        expected = serial_by_key[outcome.job.key]
        assert _strip_cpu(outcome.payload) == _strip_cpu(expected.payload), (
            outcome.job.name
        )

    # Warm cache: a rerun executes zero ATPG jobs.
    warm = run_campaign(jobs, workers=4, store=parallel_store)
    assert warm.n_ran == 0 and warm.n_cached == len(jobs)

    ratio = serial_wall / parallel_wall if parallel_wall else float("inf")
    with capsys.disabled():
        print(
            f"\n[campaign] {len(jobs)} jobs serial {serial_wall:.2f}s, "
            f"4 workers {parallel_wall:.2f}s, speedup {ratio:.2f}x "
            f"({_cpus()} CPUs), warm rerun {warm.wall_seconds:.2f}s "
            f"({warm.n_cached} cache hits)"
        )
    if _cpus() >= 4:
        assert ratio >= 1.5, (
            f"4-worker cold run only {ratio:.2f}x faster than workers=0"
        )
