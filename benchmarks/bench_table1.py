"""Experiment E1 — regenerate **Table 1** (speed-independent circuits).

For every benchmark name in the paper's Table 1: synthesize the
speed-independent complex-gate implementation, run the full flow under
both stuck-at models, and report tot/cov for each model plus the
random / 3-phase / fault-sim split and CPU time.  The rendered table is
written to ``benchmarks/out/table1.txt``.

Paper-shape expectations (EXPERIMENTS.md records the measured values):
100% output stuck-at coverage on every circuit, high (but not complete)
input stuck-at coverage, random TPG covering roughly half the faults.
"""

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from benchmarks.conftest import record_row, run_flow
from repro.core.report import result_row


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_row(benchmark, name):
    circuit = load_benchmark(name, "complex")

    def flow():
        return run_flow(circuit)

    out_res, in_res = benchmark.pedantic(flow, rounds=1, iterations=1)
    record_row("Table-1: speed-independent (complex-gate)",
               result_row(name, out_res, in_res))
    # The paper's theoretical touchstone holds on every SI circuit:
    assert out_res.coverage == 1.0, f"{name}: SI circuits are 100% output-testable"
    assert in_res.coverage >= 0.6
