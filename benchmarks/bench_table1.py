"""Experiment E1 — regenerate **Table 1** (speed-independent circuits).

For every benchmark name in the paper's Table 1: synthesize the
speed-independent complex-gate implementation, run the full flow under
both stuck-at models, and report tot/cov for each model plus the
random / 3-phase / fault-sim split and CPU time.  The rendered table is
written to ``benchmarks/out/table1.txt``.

Paper-shape expectations (EXPERIMENTS.md records the measured values):
100% output stuck-at coverage on every circuit, high (but not complete)
input stuck-at coverage, random TPG covering roughly half the faults.
"""

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from benchmarks.conftest import record_row, run_flow
from repro.core.report import result_row


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_row(benchmark, name):
    circuit = load_benchmark(name, "complex")

    def flow():
        return run_flow(name, "complex")

    out_res, in_res = benchmark.pedantic(flow, rounds=1, iterations=1)
    record_row("Table-1: speed-independent (complex-gate)",
               result_row(name, out_res, in_res))
    # The paper's theoretical touchstone: SI circuits are 100%
    # output-testable.  It presumes every gate output is observable
    # through the specified behaviour; benchmarks carrying *internal*
    # (CSC-style) signals behind a gated observer — converta, vbe6a, the
    # partial-scan motivation cases of §6 — may hide the internal node's
    # stuck-at at the observer's masking polarity, and only there.
    if not circuit_has_internal_signals(circuit):
        assert out_res.coverage == 1.0, (
            f"{name}: SI circuits are 100% output-testable"
        )
    else:
        assert out_res.coverage >= 0.9
        internal = internal_signal_indices(circuit)
        for fault in out_res.undetected_faults():
            assert fault.site in internal, (
                f"{name}: observable-signal output fault escaped: "
                f"{fault.describe(circuit)}"
            )
    assert in_res.coverage >= 0.6


def internal_signal_indices(circuit):
    """Gate outputs that are neither primary outputs nor input buffers."""
    from repro.stg.synthesis import BUFFER_SUFFIX

    out_set = set(circuit.outputs)
    return {
        g.index
        for g in circuit.gates
        if g.index not in out_set and not g.name.endswith(BUFFER_SUFFIX)
    }


def circuit_has_internal_signals(circuit):
    return bool(internal_signal_indices(circuit))
