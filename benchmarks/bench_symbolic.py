"""Symbolic-kernel benchmarks: new engine vs the seed BDD manager.

Two experiments, results written to ``benchmarks/out/BENCH_symbolic.json``
so the BENCH_* trajectory tracking has a machine-readable record:

* **Image-computation microbench** — TCSG reachability on a
  benchmark-shaped wide handshake (``m`` buffered request lines + a
  completion tree).  Declaration order puts all inputs before all
  buffers, so each (input, buffer) pair sits ``m`` levels apart — the
  classic pattern that is exponential under a fixed variable order.
  The seed path (:class:`SeedMonolithicTraversal`: interleaved 2n-var
  encoding, monolithic relation, ``LegacyBddManager`` — a faithful copy
  of the seed ``sgraph/symbolic.py``) is stuck with that order; the
  production arena kernel starts from a DFS static order and
  garbage-collects and sifts in place as the fixpoint grows.  A ≥6x
  floor is asserted at m=10 (measured ~9-23x against the dict-based
  PR-5 kernel's ~530ms reference this was ~2x), and GC must keep the
  new kernel's peak live nodes below the seed manager's final node
  count.

* **CSSG build timing** — explicit exact vs symbolic construction on
  the largest bundled Table-1 specs, equality-checked.  No speed
  assertion: at ≤13 signals explicit enumeration is expected to win;
  the JSON row records the trajectory as the corpus grows.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bdd.legacy import FALSE, TRUE, LegacyBddManager
from repro.benchmarks_data import load_benchmark
from repro.circuit.expr import OP_AND, OP_NOT, OP_OR, OP_VAR, OP_XOR
from repro.circuit.netlist import Circuit
from repro.sgraph.cssg import build_cssg
from repro.sgraph.symbolic import SymbolicTcsg

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_symbolic.json"

# PR-5 reference for the trajectory record: the dict-based BddManager
# (per-node tuples, dict unique table) ran the m=10 image microbench in
# ~530ms against the seed's ~1060ms — barely 2x.  The flat int-array
# arena rebuild is what buys the rest.
_PR5_REFERENCE = {"m": 10, "new_ms": 529.7, "speedup": 2.0}

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


def best_of(fn, reps=2):
    result = None
    elapsed = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        elapsed = min(elapsed, time.perf_counter() - t0)
    return elapsed, result


class SeedMonolithicTraversal:
    """The seed symbolic traversal, verbatim in structure: interleaved
    current/next variables, monolithic ``R_delta`` / ``R_I`` with frame
    conjuncts, and-exists + rename image — on :class:`LegacyBddManager`
    (fixed variable order, no GC).  The benchmark baseline."""

    def __init__(self, circuit):
        self.circuit = circuit
        n = circuit.n_signals
        self.mgr = LegacyBddManager(2 * n)
        self.n = n
        self.gate_fn = {g.index: self._compile(g.program) for g in circuit.gates}
        self.stable = self._stable_set()
        self.r_delta = self._build_r_delta()
        self.r_input = self._build_r_input()

    def cur(self, i):
        return 2 * i

    def nxt(self, i):
        return 2 * i + 1

    def _compile(self, program):
        mgr = self.mgr
        stack = []
        for op, arg in program:
            if op == OP_VAR:
                stack.append(mgr.var(self.cur(arg)))
            elif op == OP_NOT:
                stack.append(mgr.apply_not(stack.pop()))
            elif op == OP_AND:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_and(a, b))
            elif op == OP_OR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_or(a, b))
            elif op == OP_XOR:
                b, a = stack.pop(), stack.pop()
                stack.append(mgr.apply_xor(a, b))
            else:
                stack.append(TRUE if arg else FALSE)
        return stack[0]

    def state_bdd(self, state):
        mgr = self.mgr
        return mgr.and_all(
            mgr.var(self.cur(i)) if (state >> i) & 1 else mgr.nvar(self.cur(i))
            for i in range(self.n)
        )

    def _stable_set(self):
        mgr = self.mgr
        return mgr.and_all(
            mgr.apply_iff(mgr.var(self.cur(g.index)), self.gate_fn[g.index])
            for g in self.circuit.gates
        )

    def _same(self, indices):
        mgr = self.mgr
        return mgr.and_all(
            mgr.apply_iff(mgr.var(self.nxt(i)), mgr.var(self.cur(i)))
            for i in indices
        )

    def _build_r_delta(self):
        mgr = self.mgr
        inputs_hold = self._same(range(self.circuit.n_inputs))
        disjuncts = []
        all_gates = [g.index for g in self.circuit.gates]
        for g in self.circuit.gates:
            excited = mgr.apply_xor(
                mgr.var(self.cur(g.index)), self.gate_fn[g.index]
            )
            flip = mgr.apply_xor(
                mgr.var(self.nxt(g.index)), mgr.var(self.cur(g.index))
            )
            others_hold = self._same(i for i in all_gates if i != g.index)
            disjuncts.append(mgr.and_all([excited, flip, others_hold]))
        stable_loop = mgr.apply_and(self.stable, self._same(all_gates))
        return mgr.apply_and(
            inputs_hold, mgr.apply_or(mgr.or_all(disjuncts), stable_loop)
        )

    def _build_r_input(self):
        mgr = self.mgr
        gates_hold = self._same(g.index for g in self.circuit.gates)
        differs = mgr.apply_not(self._same(range(self.circuit.n_inputs)))
        return mgr.and_all([self.stable, gates_hold, differs])

    def image(self, states, relation):
        mgr = self.mgr
        cur_vars = [self.cur(i) for i in range(self.n)]
        img = mgr.and_exists(relation, states, cur_vars)
        return mgr.rename(img, {self.nxt(i): self.cur(i) for i in range(self.n)})

    def reachable(self):
        mgr = self.mgr
        reached = frontier = self.state_bdd(self.circuit.require_reset())
        relation = mgr.apply_or(self.r_delta, self.r_input)
        while True:
            img = self.image(frontier, relation)
            new = mgr.apply_and(img, mgr.apply_not(reached))
            if new == FALSE:
                return reached
            reached = mgr.apply_or(reached, new)
            frontier = new

    def count(self, bdd):
        return self.mgr.sat_count(bdd, [self.cur(i) for i in range(self.n)])


def wide_handshake(m):
    """``m`` buffered request lines and a completion-tree ack — the
    reorder-sensitive image workload (see module docstring)."""
    c = Circuit(f"wide{m}")
    reset = {}
    for i in range(m):
        c.add_input(f"I{i}")
        reset[f"I{i}"] = 0
    for i in range(m):
        c.add_gate(f"b{i}", gtype="BUF", inputs=[f"I{i}"])
        reset[f"b{i}"] = 0
    c.add_gate("ack", expr=" & ".join(f"b{i}" for i in range(m)))
    reset["ack"] = 0
    c.mark_output("ack")
    c.set_reset(reset)
    return c.finalize()


def test_kernel_image_microbench():
    """Arena kernel ≥6x over the seed manager on reachability images,
    with GC keeping peak live nodes below the seed's ever-growing
    store."""
    rows = []
    for m, assert_floor in ((6, None), (8, None), (10, 6.0)):
        circuit = wide_handshake(m)
        seed_store = {}

        def run_seed():
            t = SeedMonolithicTraversal(circuit)
            n = t.count(t.reachable())
            seed_store["n_nodes"] = t.mgr.n_nodes
            return n

        new_store = {}

        def run_new():
            s = SymbolicTcsg(circuit, auto_gc_nodes=5_000, auto_reorder_nodes=1_000)
            n = s.count_states(s.reachable())
            new_store["peak"] = s.mgr.stats.peak_nodes
            new_store["gc_passes"] = s.mgr.stats.n_gc_passes
            new_store["reorders"] = s.mgr.stats.n_reorders
            return n

        n_seed = run_seed()
        n_new = run_new()
        assert n_seed == n_new  # both engines agree on the reachable count
        t_seed, _ = best_of(run_seed)
        t_new, _ = best_of(run_new)
        speedup = t_seed / t_new
        row = {
            "m": m,
            "n_signals": circuit.n_signals,
            "reachable_states": n_new,
            "seed_ms": round(1000 * t_seed, 2),
            "new_ms": round(1000 * t_new, 2),
            "speedup": round(speedup, 2),
            "seed_total_nodes": seed_store["n_nodes"],
            "new_peak_nodes": new_store["peak"],
            "gc_passes": new_store["gc_passes"],
            "reorders": new_store["reorders"],
        }
        rows.append(row)
        print(
            f"\nwide{m} ({circuit.n_signals} signals, {n_new} reachable): "
            f"seed {1000 * t_seed:.1f}ms ({seed_store['n_nodes']} nodes, no GC) "
            f"vs new {1000 * t_new:.1f}ms (peak {new_store['peak']} nodes, "
            f"{new_store['gc_passes']} GC passes, {new_store['reorders']} "
            f"reorders) -> {speedup:.1f}x"
        )
        # GC + reordering keep the working set bounded: the new kernel's
        # high-water mark stays below the seed's ever-growing store.
        assert new_store["gc_passes"] >= 1
        assert new_store["peak"] < seed_store["n_nodes"]
        if assert_floor is not None:
            # Measured ~9-23x on an idle machine (timer noise is high on
            # shared runners); the floor leaves generous headroom while
            # still being far above the ~2x the PR-5 dict kernel managed.
            assert speedup >= assert_floor, (
                f"kernel speedup {speedup:.2f}x below the {assert_floor}x floor"
            )
    _results["image_microbench"] = rows
    _results["image_microbench_pr5_reference"] = _PR5_REFERENCE


def test_cssg_build_timing_on_largest_specs():
    """Explicit exact vs symbolic CSSG build on the biggest bundled
    specs — equality-checked, timings recorded for the trajectory."""
    rows = []
    for name in ("master-read", "trimos-send", "vbe10b"):
        circuit = load_benchmark(name, "complex")
        t_explicit, explicit = best_of(
            lambda c=circuit: build_cssg(c, method="exact")
        )
        t_symbolic, symbolic = best_of(
            lambda c=circuit: build_cssg(c, method="symbolic")
        )
        assert symbolic.states == explicit.states
        assert symbolic.edges == explicit.edges
        rows.append(
            {
                "name": name,
                "n_signals": circuit.n_signals,
                "cssg_states": explicit.n_states,
                "cssg_edges": explicit.n_edges,
                "tcsg_states": symbolic.stats.n_tcsg_states,
                "explicit_ms": round(1000 * t_explicit, 2),
                "symbolic_ms": round(1000 * t_symbolic, 2),
                "peak_bdd_nodes": symbolic.stats.peak_bdd_nodes,
            }
        )
        print(
            f"\n{name}: explicit {1000 * t_explicit:.1f}ms vs symbolic "
            f"{1000 * t_symbolic:.1f}ms "
            f"({symbolic.stats.n_tcsg_states} TCSG states, "
            f"peak {symbolic.stats.peak_bdd_nodes} nodes)"
        )
    _results["cssg_build"] = rows
