"""Experiment E-fuzz — scenario generation + health-gate throughput.

The fuzzing loop is only useful if specs come out fast: every seed
pays Johnson-ring construction, decoration draws, state-graph
reachability, the full STG health analysis (free-choice, input-choice,
persistency, CSC), and logic synthesis for STG scenarios — rejected
draws are retried.  This bench pins that cost:

* **generation floor** — seeded generation with the default config
  must sustain at least ``GEN_FLOOR_PER_SEC`` accepted scenarios per
  second (measured ~14/sec on CI-class hardware; the floor is the
  conservative regression bar, ~4x headroom).
* **oracle battery rate** — the full five-pair differential battery
  per scenario, recorded for trajectory tracking (no floor: the
  incremental pair's ATPG cost dominates and varies with shape).

Results land in ``benchmarks/out/BENCH_fuzz.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.fuzz import generate_scenario, run_scenario

OUT_PATH = Path(__file__).resolve().parent / "out" / "BENCH_fuzz.json"

GEN_SEEDS = 60  #: seeds timed for the generation floor
BATTERY_SEEDS = 8  #: seeds timed through the full oracle battery

#: Asserted accepted-scenarios/sec floor for generation + health gate.
GEN_FLOOR_PER_SEC = 3.0

_results = {}


@pytest.fixture(scope="session", autouse=True)
def emit_json():
    yield
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(_results, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")


def test_generation_throughput_floor(capsys):
    t0 = time.perf_counter()
    scenarios = [generate_scenario(seed) for seed in range(GEN_SEEDS)]
    seconds = time.perf_counter() - t0
    accepted = [s for s in scenarios if s is not None]
    attempts = sum(s.rejections.attempts for s in accepted)
    rate = len(accepted) / seconds
    _results["generation"] = {
        "seeds": GEN_SEEDS,
        "accepted": len(accepted),
        "attempts": attempts,
        "seconds": round(seconds, 3),
        "scenarios_per_sec": round(rate, 2),
        "floor_per_sec": GEN_FLOOR_PER_SEC,
    }
    with capsys.disabled():
        print(
            f"\ngeneration: {len(accepted)}/{GEN_SEEDS} accepted in "
            f"{seconds:.2f}s = {rate:.1f}/sec "
            f"({attempts} attempts incl. rejections)"
        )
    assert len(accepted) >= GEN_SEEDS * 0.8, "generator yield collapsed"
    assert rate >= GEN_FLOOR_PER_SEC, (
        f"generation+health throughput {rate:.2f}/sec fell below the "
        f"{GEN_FLOOR_PER_SEC}/sec floor"
    )


def test_oracle_battery_rate(capsys):
    scenarios = [
        s for s in (generate_scenario(seed) for seed in range(BATTERY_SEEDS))
        if s is not None
    ]
    t0 = time.perf_counter()
    reports = [run_scenario(s) for s in scenarios]
    seconds = time.perf_counter() - t0
    checks = sum(sum(r.checks.values()) for r in reports)
    divergent = sum(0 if r.ok else 1 for r in reports)
    _results["battery"] = {
        "scenarios": len(scenarios),
        "seconds": round(seconds, 3),
        "seconds_per_scenario": round(seconds / len(scenarios), 3),
        "checks": checks,
        "divergent": divergent,
    }
    with capsys.disabled():
        print(
            f"battery: {len(scenarios)} scenarios, {checks} checks in "
            f"{seconds:.2f}s = {seconds / len(scenarios):.2f}s/scenario"
        )
    assert divergent == 0, f"{divergent} scenarios diverged"
    assert checks > 0
