"""Exhaustive settling analysis (the TCR_k validity oracle)."""

import pytest

from repro.errors import StateGraphError
from repro.sgraph.explore import settle_report


def test_stable_state_reports_itself(celem):
    reset = celem.require_reset()
    report = settle_report(celem, reset)
    assert report.confluent
    assert report.stable_states == frozenset([reset])
    assert report.longest_path == 0
    assert report.valid(k=0)


def test_confluent_rise(celem):
    started = celem.apply_input_pattern(celem.require_reset(), 0b11)
    report = settle_report(celem, started)
    assert report.confluent and not report.oscillating
    settled = report.unique_stable
    assert celem.value(settled, "c") == 1
    # a, b, c must all switch: longest interleaving is exactly 3.
    assert report.longest_path == 3
    assert report.valid(3) and not report.valid(2)


def test_nonconfluence_detected(race):
    # Figure 1(a): both settle states are stable, differing in y.
    started = race.apply_input_pattern(race.require_reset(), 0b01)
    report = settle_report(race, started)
    assert report.nonconfluent
    assert len(report.stable_states) == 2
    ys = {race.value(s, "y") for s in report.stable_states}
    assert ys == {0, 1}
    assert not report.valid(k=100)


def test_oscillation_detected(oscillator):
    started = oscillator.apply_input_pattern(oscillator.require_reset(), 1)
    report = settle_report(oscillator, started)
    assert report.oscillating
    assert not report.valid(k=10_000)
    assert report.longest_path is None


def test_unique_stable_raises_when_ambiguous(race):
    started = race.apply_input_pattern(race.require_reset(), 0b01)
    report = settle_report(race, started)
    with pytest.raises(StateGraphError):
        _ = report.unique_stable


def test_truncation_cap(celem):
    started = celem.apply_input_pattern(celem.require_reset(), 0b11)
    report = settle_report(celem, started, cap=2)
    assert report.truncated
    assert not report.valid(k=100)


def test_opposing_edges_race_on_celem(celem):
    """From c=1 with one input already low, raising it while dropping the
    other creates the classic C-element hazard."""
    up = celem.state_of({"A": 1, "B": 1, "a": 1, "b": 1, "c": 1})
    assert celem.is_stable(up)
    half = celem.state_of({"A": 1, "B": 0, "a": 1, "b": 0, "c": 1})
    assert celem.is_stable(half)
    started = celem.apply_input_pattern(half, 0b10)  # A-, B+ together
    report = settle_report(celem, started)
    assert report.nonconfluent
