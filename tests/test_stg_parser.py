"""The .g (astg) STG format."""

import pytest

from repro.errors import ParseError
from repro.stg.parser import parse_stg, stg_to_text


def test_parse_handshake(handshake_stg):
    stg = handshake_stg
    assert stg.name == "hs"
    assert stg.inputs == ("ri",)
    assert stg.outputs == ("ro", "ai")
    assert len(stg.transitions) == 6
    assert stg.n_places == 6
    assert len(stg.initial_marking) == 1


def test_signals_order_inputs_outputs_internal():
    stg = parse_stg(
        ".inputs b\n.outputs a\n.internal x\n.graph\n"
        "b+ a+\na+ x+\nx+ b-\nb- a-\na- x-\nx- b+\n"
        ".marking { <x-,b+> }\n"
    )
    assert stg.signals == ("b", "a", "x")
    assert stg.non_input_signals == ("a", "x")
    assert stg.is_input("b") and not stg.is_input("a")


def test_instance_suffixes():
    stg = parse_stg(
        ".inputs a\n.outputs z\n.graph\n"
        "p0 a+\na+ z+/1\nz+/1 a-\na- z-/1\nz-/1 p0\n"
        ".marking { p0 }\n"
    )
    labels = {t.label for t in stg.transitions}
    assert "z+/1" in labels
    z = next(t for t in stg.transitions if t.label == "z+/1")
    assert z.signal == "z" and z.direction == 1


def test_explicit_places_and_fanout_lines():
    stg = parse_stg(
        ".inputs a\n.outputs y z\n.graph\n"
        "a+ y+ z+\ny+ pj\nz+ pj\npj a-\na- y- z-\ny- pk\nz- pk\npk a+\n"
        ".marking { pk }\n"
    )
    # A place with two producers is legal as long as tokens alternate.
    pj = stg.place_names.index("pj")
    producers = [t for t in stg.transitions if pj in stg.t_out_places[t.index]]
    assert len(producers) == 2


@pytest.mark.parametrize(
    "text,message",
    [
        (".graph\na+ b+\n.marking { <a+,b+> }", "undeclared"),
        (".inputs a\na+ a-\n.marking { x }", "before .graph"),
        (".inputs a\n.graph\na+\n.marking { x }", "source and targets"),
        (".inputs a\n.dummy t\n.graph\n.marking { }", "not supported"),
        (".inputs a\n.graph\np q\n.marking { p }", "two places"),
        (".inputs a\n.graph\na+ a-\na- a+\n.marking { zz }", "unknown place"),
        (".inputs a\n.graph\na+ a-\na- a+\n.marking x", "expects {"),
        (".inputs a\n.graph\na+ a-\na- a+\n.initial a", "bad .initial"),
        (".inputs a\n.frob\n.graph\n.marking { }", "unknown directive"),
    ],
)
def test_parse_errors(text, message):
    with pytest.raises(ParseError, match=message):
        parse_stg(text)


def test_missing_marking_rejected():
    with pytest.raises(ParseError, match="marking"):
        parse_stg(".inputs a\n.graph\na+ a-\na- a+\n")


def test_marking_token_regex_handles_implicit_places():
    stg = parse_stg(
        ".inputs a\n.outputs z\n.graph\na+ z+\nz+ a-\na- z-\nz- a+\n"
        ".marking { <z-,a+> }\n"
    )
    name = stg.place_names[next(iter(stg.initial_marking))]
    assert name == "<z-,a+>"


def test_roundtrip(handshake_stg):
    text = stg_to_text(handshake_stg)
    stg2 = parse_stg(text)
    assert stg2.signals == handshake_stg.signals
    assert len(stg2.transitions) == len(handshake_stg.transitions)
    assert stg2.n_places == handshake_stg.n_places
    # The reachable behaviour must be identical.
    from repro.stg.reachability import build_state_graph

    sg1 = build_state_graph(handshake_stg)
    sg2 = build_state_graph(stg2)
    assert sg1.n_states == sg2.n_states
    assert sg1.codes() == sg2.codes()


def test_initial_directive_roundtrip():
    text = (
        ".inputs c\n.outputs q\n.graph\nc+ q-\nq- c-\nc- q+\nq+ c+\n"
        ".marking { <q+,c+> }\n.initial c=0 q=1\n"
    )
    stg = parse_stg(text)
    assert stg.initial_values == {"c": 0, "q": 1}
    assert parse_stg(stg_to_text(stg)).initial_values == {"c": 0, "q": 1}


RING = ".graph\na+ b+\nb+ a-\na- b-\nb- a+\n"


class TestErrorLocations:
    """Parse errors must carry the line number and the offending token
    (a bare "unknown place" with no location is useless on a 500-line
    generated spec)."""

    def test_duplicate_signal_same_directive(self):
        with pytest.raises(ParseError, match=r"x\.g:1: duplicate signal declaration 'a'"):
            parse_stg(".inputs a a\n.outputs b\n" + RING + ".marking { <b-,a+> }\n",
                      filename="x.g")

    def test_duplicate_signal_across_directives(self):
        with pytest.raises(ParseError, match=r"x\.g:2: duplicate signal declaration 'a'"):
            parse_stg(".inputs a\n.outputs a b\n" + RING + ".marking { <b-,a+> }\n",
                      filename="x.g")

    def test_unclosed_marking_token(self):
        text = ".inputs a\n.outputs b\n" + RING + ".marking { <b-,a+ }\n"
        with pytest.raises(ParseError, match=r"x\.g:8: unbalanced marking token '<b-,a\+'"):
            parse_stg(text, filename="x.g")

    def test_stray_closing_bracket_in_marking(self):
        text = ".inputs a\n.outputs b\n" + RING + ".marking { b-,a+> }\n"
        with pytest.raises(ParseError, match=r"x\.g:8: unbalanced marking token 'b-,a\+>'"):
            parse_stg(text, filename="x.g")

    def test_unknown_place_reports_marking_line(self):
        text = ".inputs a\n.outputs b\n" + RING + ".marking { nowhere }\n"
        with pytest.raises(ParseError, match=r"x\.g:8: marking references unknown place 'nowhere'"):
            parse_stg(text, filename="x.g")

    def test_balanced_marking_still_parses(self):
        stg = parse_stg(
            ".inputs a\n.outputs b\n" + RING + ".marking { <b-,a+> }\n"
        )
        assert len(stg.initial_marking) == 1
