"""Circuit construction, validation and packed-state operations."""

import pytest

from repro.circuit.netlist import Circuit
from repro.errors import NetlistError


def small():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("a", gtype="BUF", inputs=["A"])
    c.add_gate("y", expr="a & ~y")
    c.mark_output("y")
    c.set_reset({"A": 0, "a": 0, "y": 0})
    return c.finalize()


def test_shape():
    c = small()
    assert c.n_inputs == 1
    assert c.n_gates == 2
    assert c.n_signals == 3
    assert c.input_names == ("A",)
    assert c.output_names == ("y",)
    assert [s.name for s in c.signals] == ["A", "a", "y"]
    assert c.outputs == (2,)


def test_index_and_value():
    c = small()
    assert c.index("y") == 2
    state = c.state_of({"A": 1, "a": 1, "y": 0})
    assert c.value(state, "a") == 1
    with pytest.raises(NetlistError):
        c.index("nope")


def test_input_pattern_ops():
    c = small()
    state = c.state_of({"A": 0, "a": 1, "y": 1})
    assert c.input_pattern(state) == 0
    moved = c.apply_input_pattern(state, 1)
    assert c.value(moved, "A") == 1
    assert c.value(moved, "a") == 1  # gates untouched by R_I


def test_stability_and_switching():
    c = small()
    reset = c.require_reset()
    assert c.is_stable(reset)
    poked = c.apply_input_pattern(reset, 1)
    excited = c.excited_gates(poked)
    assert [g.name for g in excited] == ["a"]
    after = c.switch(poked, excited[0])
    assert c.value(after, "a") == 1
    # now y = a & ~y = 1 is excited
    assert [g.name for g in c.excited_gates(after)] == ["y"]


def test_enumerate_stable_states():
    c = small()
    stable = c.enumerate_stable_states()
    assert c.require_reset() in stable
    for s in stable:
        assert c.is_stable(s)


def test_output_values_and_formatting():
    c = small()
    state = c.state_of({"A": 1, "a": 1, "y": 1})
    assert c.output_values(state) == (1,)
    assert c.format_state(state) == "A=1 | a=1 y=1"
    assert c.state_bits(state) == "111"


def test_duplicate_names_rejected():
    c = Circuit("t")
    c.add_input("A")
    with pytest.raises(NetlistError):
        c.add_input("A")
    c.add_gate("g", expr="A")
    with pytest.raises(NetlistError):
        c.add_gate("g", expr="A")


def test_undefined_reference_rejected():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("g", expr="A & zz")
    with pytest.raises(NetlistError, match="zz"):
        c.finalize()


def test_unknown_output_rejected():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("g", expr="A")
    c.mark_output("nope")
    with pytest.raises(NetlistError):
        c.finalize()


def test_reset_must_cover_all_signals():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("g", expr="A")
    c.set_reset({"A": 0})
    with pytest.raises(NetlistError, match="missing"):
        c.finalize()


def test_reset_unknown_signal_rejected():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("g", expr="A")
    c.set_reset({"A": 0, "g": 0, "zz": 1})
    with pytest.raises(NetlistError, match="unknown"):
        c.finalize()


def test_require_reset_without_one():
    c = Circuit("t")
    c.add_input("A")
    c.add_gate("g", expr="A")
    c.finalize()
    with pytest.raises(NetlistError):
        c.require_reset()


def test_finalized_is_immutable():
    c = small()
    with pytest.raises(NetlistError):
        c.add_input("B")
    with pytest.raises(NetlistError):
        c.add_gate("z", expr="A")


def test_gate_needs_expr_or_gtype():
    c = Circuit("t")
    c.add_input("A")
    with pytest.raises(NetlistError):
        c.add_gate("g")
    with pytest.raises(NetlistError):
        c.add_gate("g", expr="A", gtype="BUF")


def test_empty_circuit_rejected():
    with pytest.raises(NetlistError):
        Circuit("t").finalize()


def test_k_default_and_override():
    c = small()
    assert c.k == 4 * 3 + 8
    c2 = Circuit("t2")
    c2.add_input("A")
    c2.add_gate("g", expr="A")
    c2.set_k(5)
    c2.finalize()
    assert c2.k == 5
    with pytest.raises(NetlistError):
        Circuit("t3").set_k(0)


def test_self_feedback_counts_as_support_pin():
    c = small()
    y = next(g for g in c.gates if g.name == "y")
    assert c.index("y") in y.support
