"""The observability subsystem: metrics, tracing, exposition, dashboard.

Every test here restores the process-global switches (ambient registry,
enabled flag, ambient tracer) on exit — telemetry must never leak into
the determinism-sensitive tests of the rest of the suite.
"""

import json
import os

import pytest

from repro.benchmarks_data import load_benchmark
from repro.core.atpg import AtpgOptions, AtpgResult
from repro.errors import ReproError
from repro.flow import Flow
from repro.flow.events import EventBus, StageFinished, StageStarted
from repro.obs import metrics as obs_metrics
from repro.obs.dashboard import CampaignDashboard
from repro.obs.export import (
    parse_prometheus_text,
    to_json_text,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.metrics import MetricsConsumer, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    format_profile,
    get_tracer,
    set_tracer,
    use_tracer,
)

FAST = dict(random_walks=1, walk_len=1)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Isolate the process-global telemetry state per test."""
    previous_registry = obs_metrics.set_registry(MetricsRegistry())
    obs_metrics.disable()
    previous_tracer = set_tracer(None)
    try:
        yield
    finally:
        obs_metrics.set_registry(previous_registry)
        obs_metrics.disable()
        set_tracer(previous_tracer)


# -- registry ---------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    jobs = reg.counter("jobs_total", "Jobs.", ("status",))
    jobs.labels("ran").inc()
    jobs.labels("ran").inc(2)
    jobs.labels("cached").inc()
    assert reg.value("jobs_total", "ran") == 3.0
    assert reg.value("jobs_total", "cached") == 1.0
    assert reg.value("jobs_total", "failed") == 0.0  # unseen series

    depth = reg.gauge("depth")
    depth.set(7)
    depth.inc(-2)
    assert depth.value == 5.0

    lat = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        lat.observe(v)
    child = lat.labels()
    assert child.count == 3
    assert child.sum == pytest.approx(5.55)
    assert child.cumulative_counts() == [1, 2, 3]


def test_registry_get_or_create_and_shape_conflicts():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "X.", ("k",))
    assert reg.counter("x_total", "X.", ("k",)) is a
    with pytest.raises(ReproError, match="already registered"):
        reg.gauge("x_total")
    with pytest.raises(ReproError, match="already registered"):
        reg.counter("x_total", label_names=("other",))
    with pytest.raises(ReproError, match="bind them"):
        a.inc()  # labeled family used without binding labels
    with pytest.raises(ReproError, match="label value"):
        a.labels("k", "extra")


def test_snapshot_merge_is_the_fleet_transport():
    worker1, worker2, parent = (
        MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    )
    for i, reg in enumerate((worker1, worker2), start=1):
        reg.counter("faults_total", "F.", ("status",)).labels("detected").inc(i)
        reg.gauge("live_nodes").set(100 * i)
        reg.histogram("seconds", buckets=(1.0,)).observe(0.5 * i)
    for reg in (worker1, worker2):
        parent.merge_snapshot(json.loads(json.dumps(reg.snapshot())))
    # counters add, gauges last-write-win, histograms add
    assert parent.value("faults_total", "detected") == 3.0
    assert parent.get("live_nodes").value == 200.0
    hist = parent.get("seconds").labels()
    assert hist.count == 2 and hist.sum == pytest.approx(1.5)


# -- exposition -------------------------------------------------------------


def test_prometheus_text_round_trips_through_parser():
    reg = MetricsRegistry()
    reg.counter("c_total", "A counter.", ("k",)).labels('we"ird\n').inc(2)
    reg.gauge("g").set(1.5)
    reg.histogram("h_seconds", "H.", buckets=(0.1, 1.0)).observe(0.25)
    text = to_prometheus_text(reg)
    series = parse_prometheus_text(text)
    assert series["c_total"][(("k", 'we"ird\n'),)] == 2.0
    assert series["g"][()] == 1.5
    assert series["h_seconds_bucket"][(("le", "1"),)] == 1.0
    assert series["h_seconds_bucket"][(("le", "+Inf"),)] == 1.0
    assert series["h_seconds_count"][()] == 1.0
    # snapshots render identically to the live registry
    assert to_prometheus_text(reg.snapshot()) == text


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError, match="malformed comment"):
        parse_prometheus_text("# BOGUS x\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("name{k=unquoted} 1\n")


def test_write_metrics_picks_format_from_extension(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c_total").inc()
    prom = tmp_path / "m.prom"
    jsn = tmp_path / "m.json"
    assert write_metrics(str(prom), reg) == "prom"
    assert write_metrics(str(jsn), reg) == "json"
    assert "c_total 1" in prom.read_text()
    assert json.loads(jsn.read_text()) == reg.snapshot()
    assert to_json_text(reg).endswith("\n")
    # atomic writes leave no temp droppings behind
    assert [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")] == []


# -- tracer -----------------------------------------------------------------


def test_tracer_spans_nest_and_profile_accounts_self_time(tmp_path):
    tracer = Tracer()
    with tracer.span("outer", circuit="dff"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner") as span:
            span.set("iteration", 2)
    inner, outer = tracer.spans[0], tracer.spans[-1]
    assert outer["name"] == "outer" and outer["parent_id"] == -1
    assert inner["parent_id"] == outer["span_id"]
    assert tracer.spans[1]["attrs"] == {"iteration": 2}

    rows = {r["name"]: r for r in tracer.profile()}
    assert rows["inner"]["calls"] == 2
    # outer's self time excludes the nested inner time
    assert rows["outer"]["self_seconds"] <= rows["outer"]["total_seconds"]

    path = tmp_path / "spans.jsonl"
    assert tracer.write_jsonl(str(path)) == 3
    lines = path.read_text().splitlines()
    assert [json.loads(l)["name"] for l in lines] == ["inner", "inner", "outer"]

    table = format_profile(tracer.profile())
    assert "span" in table and "inner" in table and "self%" in table


def test_ambient_tracer_scoping():
    assert get_tracer() is NULL_TRACER
    with use_tracer() as tracer:
        assert get_tracer() is tracer
        with get_tracer().span("x"):
            pass
    assert get_tracer() is NULL_TRACER
    assert tracer.spans[0]["name"] == "x"
    # the null tracer records nothing and costs nothing
    with NULL_TRACER.span("ignored") as span:
        span.set("k", 1)


def test_error_inside_span_is_recorded_and_propagates():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert tracer.spans[0]["error"] == "RuntimeError"


# -- event-bus isolation ----------------------------------------------------


def test_raising_listener_is_unsubscribed_with_one_warning():
    bus = EventBus()
    seen = []

    def bad(event):
        raise ValueError("broken consumer")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    first = StageStarted(stage="s", n_remaining=3)
    with pytest.warns(RuntimeWarning, match="broken consumer"):
        bus.emit(first)
    # the healthy listener saw the event despite its broken neighbour...
    assert seen == [first]
    second = StageFinished(stage="s", seconds=0.1)
    bus.emit(second)  # ...and the broken one is gone: no further warning
    assert seen == [first, second]
    assert bus.n_listener_errors == 1
    assert bus.n_emitted == 2


def test_flow_completes_with_raising_listener():
    circuit = load_benchmark("dff", "complex")
    boom = lambda event: (_ for _ in ()).throw(RuntimeError("io error"))
    with pytest.warns(RuntimeWarning, match="io error"):
        result = Flow.default().run(
            circuit, AtpgOptions(seed=1, **FAST), listeners=[boom]
        )
    assert result.n_total > 0  # the run finished normally


# -- flow integration -------------------------------------------------------


def run_dff(listeners=(), **opts):
    circuit = load_benchmark("dff", "complex")
    return Flow.default().run(
        circuit, AtpgOptions(seed=1, **FAST, **opts), listeners=listeners
    )


def test_default_run_has_no_telemetry_block():
    result = run_dff()
    assert result.telemetry is None
    assert "telemetry" not in result.to_json_dict()


def test_metrics_enabled_run_attaches_telemetry_and_counts_faults():
    reg = obs_metrics.enable(MetricsRegistry())
    result = run_dff()
    tel = result.telemetry
    assert tel is not None
    assert set(tel) == {"stage_seconds", "bdd", "metrics"}
    assert "random-tpg" in tel["stage_seconds"]
    # the MetricsConsumer-derived verdict counts match the result's
    family = reg.get("repro_flow_faults_classified_total")
    total = sum(ch.value for _, ch in family.children())
    assert total == result.n_total
    assert reg.value("repro_flow_events_total", "StageFinished") > 0
    # telemetry survives the JSON round trip, stripped stays stripped
    data = result.to_json_dict()
    back = AtpgResult.from_json_dict(data, result.circuit)
    assert back.telemetry == tel
    data.pop("telemetry")
    assert AtpgResult.from_json_dict(data, result.circuit).telemetry is None


def test_traced_run_produces_stage_spans():
    with use_tracer() as tracer:
        result = run_dff()
    assert result.telemetry is not None  # tracing alone arms the block
    names = {rec["name"] for rec in tracer.spans}
    assert {"flow.run", "stage.cssg", "stage.random-tpg",
            "cssg.traverse"} <= names
    flow_span = next(r for r in tracer.spans if r["name"] == "flow.run")
    assert flow_span["attrs"]["circuit"] == "dff-complex"


def test_symbolic_run_traces_image_iterations_and_bdd_cache():
    registry = MetricsRegistry()
    obs_metrics.enable(registry)
    with use_tracer() as tracer:
        result = run_dff(cssg_method="symbolic")
    names = [rec["name"] for rec in tracer.spans]
    assert "cssg.reach" in names and "cssg.image" in names
    bdd = result.telemetry["bdd"]
    assert bdd["cache_lookups"] >= bdd["cache_hits"] >= 0
    assert bdd["cache_lookups"] > 0
    assert bdd["peak_nodes"] > 0
    # dff is far too small to trigger GC/sift, but the build's final
    # flush must still land the kernel series in the registry.
    assert registry.value("repro_bdd_cache_lookups_total") == (
        bdd["cache_lookups"]
    )
    assert registry.value("repro_bdd_peak_nodes") == bdd["peak_nodes"]


def test_event_stream_identical_with_and_without_metrics():
    """Determinism: subscribing telemetry never changes the stream."""

    def stream():
        events = []
        run_dff(listeners=[lambda e: events.append(e.to_json_dict())])
        for doc in events:
            doc.pop("seconds", None)  # the one wall-clock field
        return events

    plain = stream()
    obs_metrics.enable(MetricsRegistry())
    with use_tracer():
        observed = stream()
    assert plain == observed


# -- consumers --------------------------------------------------------------


class _Pipe:
    """A not-a-TTY text sink."""

    def __init__(self):
        self.chunks = []

    def write(self, text):
        self.chunks.append(text)

    def flush(self):
        pass

    def isatty(self):
        return False

    @property
    def text(self):
        return "".join(self.chunks)


def test_progress_line_non_tty_emits_plain_lines():
    from repro.flow.consumers import ProgressLine

    pipe = _Pipe()
    with ProgressLine(stream=pipe, plain_interval=3600.0) as line:
        line(StageStarted(stage="random-tpg", n_remaining=8))
        from repro.flow.events import ProgressTick

        # throttled: ticks inside the interval produce no output
        line(ProgressTick(stage="random-tpg", done=1, total=8, covered=0))
        line(StageFinished(stage="random-tpg", seconds=0.2))
    out = pipe.text
    assert "\r" not in out  # never the TTY carriage-return dance
    lines = out.splitlines()
    assert len(lines) == 3  # start boundary, finish boundary, close
    assert all(l.startswith("[random-tpg]") for l in lines)


def test_trace_writer_atomic_publish_and_crash_safety(tmp_path):
    from repro.flow.consumers import TraceWriter

    target = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(target))
    writer(StageStarted(stage="s", n_remaining=1))
    writer(StageFinished(stage="s", seconds=0.1))
    assert not target.exists()  # nothing published before close
    writer.close()
    writer.close()  # idempotent
    records = [json.loads(l) for l in target.read_text().splitlines()]
    assert [r["event"] for r in records] == ["StageStarted", "StageFinished"]
    assert [r["seq"] for r in records] == [0, 1]

    # a writer that never reaches close leaves no file at the target
    orphan = tmp_path / "never.jsonl"
    writer2 = TraceWriter(str(orphan))
    writer2(StageStarted(stage="s", n_remaining=1))
    del writer2
    assert not orphan.exists()


def test_trace_writer_truncates_half_record_at_close(tmp_path):
    from repro.flow.consumers import TraceWriter

    target = tmp_path / "trace.jsonl"
    writer = TraceWriter(str(target))
    writer(StageStarted(stage="s", n_remaining=1))
    # simulate a mid-record failure: bytes past the watermark
    writer._handle.write(b'{"seq":1,"truncat')
    writer.close()
    lines = target.read_text().splitlines()
    assert len(lines) == 1
    json.loads(lines[0])  # the published file ends on a record boundary


# -- dashboard --------------------------------------------------------------


def test_dashboard_reads_ambient_registry_and_renders():
    reg = obs_metrics.enable(MetricsRegistry())
    reg.counter(
        "repro_flow_faults_classified_total", "F.", ("status", "reason")
    ).labels("detected", "").inc(9)
    reg.counter(
        "repro_campaign_cache_requests_total", "C.", ("outcome",)
    ).labels("hit").inc(3)
    reg.get("repro_campaign_cache_requests_total").labels("miss").inc(1)

    pipe = _Pipe()
    dash = CampaignDashboard(total_jobs=4, stream=pipe, min_interval=0.0)
    assert dash.registry is reg  # defaults to the ambient aggregate

    class Job:
        key = "k1"

    class Outcome:
        job = Job()
        status = "ran"

    dash.on_beat(0, "k1", None)
    dash.on_outcome(Outcome(), 1, 4)
    dash.close()
    out = pipe.text
    assert "1/4 jobs" in out
    assert "detected=9 (100.0%)" in out
    assert "cache: 3/4 hits (75.0%)" in out
    # non-TTY frames are single flattened lines
    assert all(" | " in l for l in out.splitlines() if l)


# -- campaign integration ---------------------------------------------------


def test_campaign_collect_telemetry_aggregates_and_keeps_cache_clean(tmp_path):
    from repro.campaign import CampaignSpec, ResultStore, expand, run_campaign

    spec = CampaignSpec(
        benchmarks=["dff"],
        fault_models=("output", "input"),
        options=AtpgOptions(**FAST),
    )
    jobs = expand(spec)
    store = ResultStore(tmp_path / "cache")

    class Recorder:
        def __init__(self):
            self.outcomes = []

        def on_beat(self, wid, key, snapshot):
            pass

        def on_outcome(self, outcome, done, total):
            self.outcomes.append((outcome.status, done, total))

        def close(self):
            pass

    dash = Recorder()
    report = run_campaign(
        jobs, workers=0, store=store, collect_telemetry=True, dashboard=dash
    )
    assert report.n_ran == len(jobs)
    assert [d for _, d, _ in dash.outcomes] == [1, 2]

    reg = obs_metrics.get_registry()
    assert reg.value("repro_campaign_jobs_total", "ran") == len(jobs)
    assert reg.value("repro_campaign_cache_requests_total", "miss") == len(jobs)
    family = reg.get("repro_flow_faults_classified_total")
    classified = sum(ch.value for _, ch in family.children())
    assert classified == sum(o.payload["n_total"] for o in report.outcomes)

    warm = run_campaign(jobs, workers=0, store=store, collect_telemetry=True)
    assert warm.n_cached == len(jobs)
    assert reg.value("repro_campaign_cache_requests_total", "hit") == len(jobs)

    # the cache never stores telemetry: warm payloads are canonical
    obs_metrics.disable()
    for job in jobs:
        cached = store.get(job.key)
        assert cached is not None and "telemetry" not in cached


def test_campaign_pool_merges_worker_snapshots(tmp_path):
    from repro.campaign import CampaignSpec, ResultStore, expand, run_campaign

    spec = CampaignSpec(benchmarks=["dff"], options=AtpgOptions(**FAST))
    jobs = expand(spec)
    store = ResultStore(tmp_path / "cache")
    report = run_campaign(jobs, workers=1, store=store, collect_telemetry=True)
    assert report.n_ran == len(jobs)
    reg = obs_metrics.get_registry()
    # worker-side flow metrics crossed the process boundary exactly once
    family = reg.get("repro_flow_faults_classified_total")
    classified = sum(ch.value for _, ch in family.children())
    assert classified == sum(o.payload["n_total"] for o in report.outcomes)
    assert reg.get("repro_campaign_job_seconds").labels().count == len(jobs)
    assert reg.get("repro_campaign_queue_wait_seconds").labels().count == len(jobs)
    for job in jobs:
        assert "telemetry" not in store.get(job.key)


# -- report columns ---------------------------------------------------------


def test_telemetry_report_columns():
    from repro.core.report import result_row

    obs_metrics.enable(MetricsRegistry())
    result = run_dff(cssg_method="symbolic")
    row = result_row("dff", None, result)
    assert "random-tpg:" in row.stage_seconds
    assert row.bdd_cache_lookups >= row.bdd_cache_hits >= 0
    assert row.bdd_cache_lookups > 0

    obs_metrics.disable()
    plain = result_row("dff", None, run_dff())
    assert plain.stage_seconds == ""
    assert plain.bdd_cache_hits == plain.bdd_cache_lookups == 0


# -- CLI --------------------------------------------------------------------


def test_cli_metrics_spans_and_self_profile(tmp_path, capsys):
    from repro.cli import main

    metrics = tmp_path / "m.prom"
    spans = tmp_path / "spans.jsonl"
    assert main([
        "dff", "--metrics", str(metrics), "--spans", str(spans),
        "--self-profile",
    ]) == 0
    err = capsys.readouterr().err
    assert "self(s)" in err and "flow.run" in err  # the self-profile table
    series = parse_prometheus_text(metrics.read_text())
    assert any(n.startswith("repro_flow_") for n in series)
    records = [json.loads(l) for l in spans.read_text().splitlines()]
    assert any(r["name"] == "flow.run" for r in records)
    # the CLI restored the process-global switches on the way out
    assert not obs_metrics.enabled()
    assert get_tracer() is NULL_TRACER


def test_cli_profile_writes_pstats(tmp_path, capsys):
    import pstats

    from repro.cli import main

    out = tmp_path / "run.pstats"
    assert main(["dff", "--profile", str(out)]) == 0
    assert "cumulative" in capsys.readouterr().err
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0


def test_campaign_cli_dashboard_and_metrics(tmp_path, capsys, monkeypatch):
    from repro.cli import campaign_main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    metrics = tmp_path / "metrics.json"
    args = [
        "dff", "--models", "input", "--workers", "0",
        "--random-walks", "1", "--walk-len", "1",
        "--out", str(tmp_path / "art"), "--dashboard",
        "--metrics", str(metrics),
    ]
    assert campaign_main(args) == 0
    err = capsys.readouterr().err
    assert "campaign [" in err and "jobs" in err  # dashboard frames
    snap = json.loads(metrics.read_text())
    names = {rec["name"] for rec in snap["counters"]}
    assert "repro_campaign_jobs_total" in names

    # warm rerun: everything cached, the dashboard says so
    assert campaign_main(args) == 0
    err = capsys.readouterr().err
    assert "cache: 1/1 hits (100.0%)" in err
