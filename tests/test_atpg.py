"""End-to-end ATPG engine behaviour and accounting invariants."""

import pytest

from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import fault_universe
from repro.core.atpg import AtpgEngine, AtpgOptions
from repro.sgraph.cssg import build_cssg
from repro.sim import ternary


def test_full_coverage_on_celem(celem):
    for model in ("output", "input"):
        result = AtpgEngine(celem, AtpgOptions(fault_model=model, seed=3)).run()
        assert result.coverage == 1.0
        assert result.n_covered == result.n_total == len(
            fault_universe(celem, model)
        )


def test_accounting_adds_up(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run()
    assert (
        result.n_random + result.n_three_phase + result.n_fault_sim
        + result.n_undetectable + result.n_aborted
        == result.n_total
    )
    detected = [s for s in result.statuses.values() if s.status == "detected"]
    assert len(detected) == result.n_covered
    phases = {s.phase for s in detected}
    assert phases <= {"rnd", "3-ph", "sim"}


def test_statuses_reference_tests(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run()
    for fault, status in result.statuses.items():
        if status.status == "detected":
            assert status.test_index is not None
            test = result.tests.tests[status.test_index]
            assert fault in test.faults


def test_every_test_detects_its_faults(celem):
    """Global soundness: replay every test on every credited fault."""
    result = AtpgEngine(celem, AtpgOptions(seed=2)).run()
    cssg = result.cssg
    for test in result.tests:
        for fault in test.faults:
            good = cssg.reset
            faulty = ternary.settle_from_reset(celem, good, fault)
            hit = ternary.detects(celem, good, faulty)
            for pattern in test.patterns:
                good = cssg.edges[good][pattern]
                faulty = ternary.apply_pattern(celem, faulty, pattern, fault)
                hit = hit or ternary.detects(celem, good, faulty)
            assert hit, f"{test.source} test fails on {fault.describe(celem)}"


def test_without_random_tpg_three_phase_carries_all(celem):
    options = AtpgOptions(seed=1, use_random_tpg=False)
    result = AtpgEngine(celem, options).run()
    assert result.n_random == 0
    assert result.coverage == 1.0
    assert result.n_three_phase + result.n_fault_sim == result.n_total


def test_fault_sim_credits_extra_faults(celem):
    options = AtpgOptions(seed=1, use_random_tpg=False)
    result = AtpgEngine(celem, options).run()
    # With fault simulation on, several faults ride along for free.
    assert result.n_fault_sim > 0
    off = AtpgOptions(seed=1, use_random_tpg=False, use_fault_sim=False)
    result_off = AtpgEngine(celem, off).run()
    assert result_off.n_fault_sim == 0
    assert result_off.coverage == result.coverage  # same faults, own tests


def test_reusing_cssg_and_fault_subset(celem):
    cssg = build_cssg(celem)
    faults = fault_universe(celem, "input")[:4]
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run(faults=faults, cssg=cssg)
    assert result.n_total == 4
    assert result.cssg is cssg


def test_deterministic_given_seed(celem):
    r1 = AtpgEngine(celem, AtpgOptions(seed=9)).run()
    r2 = AtpgEngine(celem, AtpgOptions(seed=9)).run()
    assert [t.patterns for t in r1.tests] == [t.patterns for t in r2.tests]
    assert r1.n_random == r2.n_random


def test_summary_mentions_key_numbers(celem):
    result = AtpgEngine(celem, AtpgOptions(seed=1)).run()
    text = result.summary()
    assert "celem" in text and "100.00%" in text


@pytest.mark.parametrize("name", ["hazard", "rcv-setup", "seq4", "vbe5b"])
def test_si_benchmarks_fully_output_testable(name):
    """The paper's theoretical touchstone: SI circuits are 100%
    output-stuck-at testable, and our flow achieves it."""
    circuit = load_benchmark(name, "complex")
    result = AtpgEngine(circuit, AtpgOptions(fault_model="output", seed=4)).run()
    assert result.coverage == 1.0


def test_auto_method_picks_ternary_for_big_circuits():
    circuit = load_benchmark("vbe10b", "two-level")
    options = AtpgOptions(seed=1, auto_exact_limit=4)  # force ternary
    result = AtpgEngine(circuit, options).run()
    assert result.cssg.stats.n_phi >= 0  # ternary bookkeeping present
    assert result.n_total > 0


def test_undetectable_faults_reported(celem):
    # Two-level redundant circuit has provably untestable faults.
    circuit = load_benchmark("vbe6a", "two-level")
    result = AtpgEngine(circuit, AtpgOptions(seed=1)).run()
    assert result.n_undetectable > 0
    assert result.coverage < 1.0
    assert len(result.undetected_faults()) == result.n_undetectable + result.n_aborted
