"""The campaign orchestration subsystem: plan, store, runner, artifacts."""

import json
import os

import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    campaign_manifest,
    expand,
    job_key,
    rows_from_outcomes,
    run_campaign,
    source_fingerprint,
    write_artifacts,
)
from repro.campaign.plan import CODE_VERSION
from repro.campaign.runner import CRASH_ONCE_ENV
from repro.cli import campaign_main
from repro.core.atpg import AtpgOptions
from repro.errors import ReproError

#: Tiny, fast circuits for orchestration tests.
SMALL = ["dff", "chu150", "hazard"]

FAST = dict(random_walks=1, walk_len=1)


def small_spec(**option_overrides):
    opts = dict(FAST)
    opts.update(option_overrides)
    return CampaignSpec(benchmarks=SMALL, options=AtpgOptions(**opts))


def strip_cpu(payload):
    clean = dict(payload)
    clean.pop("cpu_seconds")
    return clean


# -- plan -------------------------------------------------------------------


def test_expand_axes_and_stable_keys():
    spec = CampaignSpec(
        benchmarks=["dff", "hazard"],
        fault_models=("output", "input"),
        seeds=(0, 1),
        options=AtpgOptions(**FAST),
    )
    jobs = expand(spec)
    assert len(jobs) == 2 * 2 * 2
    assert len({j.key for j in jobs}) == len(jobs)
    assert expand(spec) == jobs  # expansion is deterministic, keys stable


def test_key_changes_with_options_and_source(tmp_path):
    fp = source_fingerprint("benchmark", "dff")
    base = job_key(fp, "complex", AtpgOptions(seed=0))
    assert job_key(fp, "complex", AtpgOptions(seed=1)) != base
    assert job_key(fp, "two-level", AtpgOptions(seed=0)) != base
    # Touching the netlist bytes changes the fingerprint, hence the key.
    net = tmp_path / "toy.net"
    net.write_text(
        ".model toy\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    fp1 = source_fingerprint("netlist", str(net))
    net.write_text(net.read_text() + "# a comment\n")
    assert source_fingerprint("netlist", str(net)) != fp1


def test_expand_cssg_method_axis():
    spec = CampaignSpec(
        benchmarks=["dff"],
        fault_models=("input",),
        cssg_methods=("hybrid", "symbolic"),
        options=AtpgOptions(**FAST),
    )
    jobs = expand(spec)
    assert len(jobs) == 2
    assert len({j.key for j in jobs}) == 2  # cached results stay distinct
    assert {j.options.cssg_method for j in jobs} == {"hybrid", "symbolic"}
    assert {j.name for j in jobs} == {
        "dff[complex]/input/hybrid",
        "dff[complex]/input/symbolic",
    }
    # The default (None) axis inherits the template's method and folds away.
    inherit = expand(
        CampaignSpec(
            benchmarks=["dff"],
            fault_models=("input",),
            options=AtpgOptions(cssg_method="symbolic", **FAST),
        )
    )
    assert len(inherit) == 1
    assert inherit[0].options.cssg_method == "symbolic"


def test_expand_rejects_unknown_benchmark():
    with pytest.raises(ReproError, match="unknown benchmark"):
        expand(CampaignSpec(benchmarks=["no-such-circuit"]))


def test_expand_accepts_netlist_paths(tmp_path):
    net = tmp_path / "toy.net"
    net.write_text(
        ".model toy\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    jobs = expand(CampaignSpec(benchmarks=[str(net)], fault_models=("input",)))
    assert len(jobs) == 1
    assert jobs[0].source_kind == "netlist"
    report = run_campaign(jobs, workers=0, store=None)
    assert report.all_ok
    assert report.outcomes[0].result().coverage == 1.0


# -- store ------------------------------------------------------------------


def test_store_roundtrip_and_corruption(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("ab" * 32) is None
    store.put("ab" * 32, {"x": 1})
    assert store.get("ab" * 32) == {"x": 1}
    assert list(store.iter_keys()) == ["ab" * 32]
    store.path_for("ab" * 32).write_text("{not json")
    assert store.get("ab" * 32) is None  # corrupt entry reads as a miss
    assert store.delete("ab" * 32) and not store.has("ab" * 32)


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
    assert ResultStore().root == tmp_path / "cachedir"


# -- runner: cache behaviour -----------------------------------------------


def test_cache_hit_on_rerun_and_miss_on_option_change(tmp_path):
    store = ResultStore(tmp_path)
    jobs = expand(small_spec())
    cold = run_campaign(jobs, workers=0, store=store)
    assert cold.all_ok and cold.n_ran == len(jobs) and cold.n_cached == 0
    warm = run_campaign(jobs, workers=0, store=store)
    assert warm.n_ran == 0 and warm.n_cached == len(jobs)
    # Same circuits, different options: every job misses.
    changed = run_campaign(expand(small_spec(walk_len=2)), workers=0, store=store)
    assert changed.n_cached == 0 and changed.n_ran == len(jobs)


def test_cache_miss_on_netlist_change(tmp_path):
    net = tmp_path / "toy.net"
    net.write_text(
        ".model toy\n.inputs A\n.gate a BUF A\n.gate y BUF a\n"
        ".outputs y\n.reset A=0 a=0 y=0\n"
    )
    spec = CampaignSpec(benchmarks=[str(net)], fault_models=("input",))
    store = ResultStore(tmp_path / "cache")
    assert run_campaign(expand(spec), workers=0, store=store).n_ran == 1
    assert run_campaign(expand(spec), workers=0, store=store).n_cached == 1
    net.write_text(net.read_text().replace("y BUF a", "y INV a"))
    rerun = run_campaign(expand(spec), workers=0, store=store)
    assert rerun.n_ran == 1 and rerun.n_cached == 0


def test_store_none_disables_caching(tmp_path):
    jobs = expand(small_spec())
    first = run_campaign(jobs, workers=0, store=None)
    second = run_campaign(jobs, workers=0, store=None)
    assert first.n_ran == second.n_ran == len(jobs)


# -- runner: determinism across worker counts -------------------------------


@pytest.mark.parametrize("workers", [0, 1, 2])
def test_results_identical_regardless_of_workers(tmp_path, workers):
    jobs = expand(small_spec())
    report = run_campaign(jobs, workers=workers, store=ResultStore(tmp_path))
    assert report.all_ok
    baseline = run_campaign(jobs, workers=0, store=None)
    base_by_key = baseline.by_key
    for outcome in report.outcomes:
        assert strip_cpu(outcome.payload) == strip_cpu(
            base_by_key[outcome.job.key].payload
        ), outcome.job.name


def test_failed_job_is_isolated(tmp_path):
    net = tmp_path / "bad.net"
    net.write_text(".model bad\n.inputs A\n.gate y BUF A\n.outputs y\n")  # no reset
    spec = CampaignSpec(
        benchmarks=SMALL + [str(net)], fault_models=("input",),
        options=AtpgOptions(**FAST),
    )
    report = run_campaign(expand(spec), workers=2, store=ResultStore(tmp_path / "c"))
    assert report.n_failed == 1
    failed = [o for o in report.outcomes if not o.ok]
    assert failed[0].job.source == str(net)
    assert failed[0].status == "failed" and failed[0].error
    assert sum(1 for o in report.outcomes if o.ok) == len(SMALL)


# -- runner: crash isolation and resume -------------------------------------


def test_resume_after_worker_crash(tmp_path, monkeypatch):
    marker = tmp_path / "crashed-once"
    monkeypatch.setenv(CRASH_ONCE_ENV, f"chu150:{marker}")
    store = ResultStore(tmp_path / "cache")
    jobs = expand(small_spec())
    first = run_campaign(jobs, workers=2, store=store, timeout=60)
    assert marker.exists()  # the simulated crash fired
    crashed = [o for o in first.outcomes if o.status == "crashed"]
    assert len(crashed) == 1 and crashed[0].job.source == "chu150"
    assert crashed[0].error == "worker process died"
    # Healthy jobs from the same campaign all completed and were cached.
    assert first.n_ran == len(jobs) - 1
    # Second run resumes: only the crashed job is recomputed.
    resumed = run_campaign(jobs, workers=2, store=store, timeout=60)
    assert resumed.all_ok
    assert resumed.n_ran == 1 and resumed.n_cached == len(jobs) - 1


def test_hung_job_times_out_and_campaign_continues(tmp_path, monkeypatch):
    """A job that never returns is killed at the per-job timeout; the
    rest of the campaign still completes.  (Workers are forked, so they
    inherit the patched hang below — Linux/fork only.)"""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method")
    import repro.campaign.runner as runner_mod

    real_execute = runner_mod.execute_job

    def hang_on_chu150(job, cssg_memo=None, listeners=()):
        if job.source == "chu150":
            import time as time_mod

            time_mod.sleep(60)
        return real_execute(job, cssg_memo, listeners)

    monkeypatch.setattr(runner_mod, "execute_job", hang_on_chu150)
    store = ResultStore(tmp_path)
    report = run_campaign(expand(small_spec()), workers=2, store=store, timeout=1.0)
    timed_out = [o for o in report.outcomes if o.status == "timeout"]
    # The first chu150 job hits the deadline; its group-mate is re-queued
    # onto a replacement worker, hangs the same way, and times out too.
    assert {o.job.source for o in timed_out} == {"chu150"}
    assert len(timed_out) == 2
    assert all("timeout" in o.error for o in timed_out)
    ok = [o for o in report.outcomes if o.ok]
    assert {o.job.source for o in ok} == {"dff", "hazard"}


# -- runner: heartbeats distinguish slow-but-alive from hung -----------------


def _fork_only():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method")


def test_silent_job_is_culled_by_hang_timeout(tmp_path, monkeypatch):
    """A job emitting no flow events (no heartbeats) is presumed hung
    after hang_timeout, well before the hard per-job timeout."""
    _fork_only()
    import time as time_mod

    import repro.campaign.runner as runner_mod

    real_execute = runner_mod.execute_job

    def silent_hang(job, cssg_memo=None, listeners=()):
        if job.source == "chu150":
            time_mod.sleep(60)  # never touches the listeners: silent
        return real_execute(job, cssg_memo, listeners)

    monkeypatch.setattr(runner_mod, "execute_job", silent_hang)
    t0 = time_mod.monotonic()
    report = run_campaign(
        expand(small_spec()),
        workers=2,
        store=ResultStore(tmp_path),
        timeout=60.0,
        hang_timeout=1.0,
    )
    hung = [o for o in report.outcomes if o.status == "hung"]
    assert {o.job.source for o in hung} == {"chu150"}
    assert all("no heartbeat" in o.error for o in hung)
    assert all(not o.ok and not o.executed for o in hung)
    # Culled at ~hang_timeout, not the 60 s hard budget.
    assert time_mod.monotonic() - t0 < 30
    ok = [o for o in report.outcomes if o.ok]
    assert {o.job.source for o in ok} == {"dff", "hazard"}


def test_beating_job_survives_hang_timeout(tmp_path, monkeypatch):
    """A slow-but-alive job — its flow keeps emitting events, so
    heartbeats keep flowing — outlives hang_timeout and completes."""
    _fork_only()
    import time as time_mod

    import repro.campaign.runner as runner_mod
    from repro.flow.events import ProgressTick

    real_execute = runner_mod.execute_job

    def slow_but_alive(job, cssg_memo=None, listeners=()):
        if job.source == "chu150":
            # 2.4 s of work, narrated: beats outpace the 1 s hang_timeout.
            for i in range(12):
                time_mod.sleep(0.2)
                for listener in listeners:
                    listener(ProgressTick("slow-stage", i + 1, 12, 0))
        return real_execute(job, cssg_memo, listeners)

    monkeypatch.setattr(runner_mod, "execute_job", slow_but_alive)
    report = run_campaign(
        expand(small_spec()),
        workers=2,
        store=ResultStore(tmp_path),
        timeout=60.0,
        hang_timeout=1.0,
    )
    assert report.all_ok, [(o.job.name, o.status, o.error) for o in report.outcomes]


# -- artifacts ---------------------------------------------------------------


def test_rows_and_artifacts(tmp_path):
    spec = small_spec()
    report = run_campaign(expand(spec), workers=0, store=None)
    rows = rows_from_outcomes(report.outcomes)
    assert [r.name for r in rows] == [f"{n}[complex]" for n in SMALL]
    for row in rows:
        assert row.out_tot > 0 and row.in_tot > 0
    manifest = campaign_manifest(spec, report)
    assert manifest["summary"]["n_jobs"] == len(report.jobs)
    assert manifest["code_version"] == CODE_VERSION
    paths = write_artifacts(tmp_path / "art", report, spec, title="T")
    data = json.loads(paths["json"].read_text())
    assert data["rows"] == [r.to_dict() for r in rows]
    assert paths["table"].read_text().startswith("T\n")
    csv_text = paths["csv"].read_text()
    assert csv_text.splitlines()[0].startswith("name,")
    assert len(csv_text.splitlines()) == 1 + len(rows)


# -- CLI ---------------------------------------------------------------------


def test_repro_campaign_cli_smoke(tmp_path, capsys):
    args = [
        "dff", "chu150", "--workers", "0", "--cache-dir", str(tmp_path / "c"),
        "--random-walks", "1", "--walk-len", "1", "--quiet",
        "--out", str(tmp_path / "art"),
    ]
    assert campaign_main(args) == 0
    out = capsys.readouterr()
    assert "dff[complex]" in out.out and "chu150[complex]" in out.out
    assert "4 jobs: 4 ran, 0 cached" in out.err
    assert (tmp_path / "art" / "campaign.json").exists()
    # Warm rerun: zero executed jobs, --json manifest says all cached.
    assert campaign_main(args + ["--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["summary"]["n_ran"] == 0
    assert manifest["summary"]["n_cached"] == 4


def test_repro_campaign_cli_method_axis(tmp_path, capsys):
    args = [
        "hazard", "--workers", "0", "--no-cache", "--quiet",
        "--models", "input", "--random-walks", "1", "--walk-len", "1",
        "--cssg-method", "hybrid,symbolic", "--json",
        "--out", str(tmp_path / "art"),
    ]
    assert campaign_main(args) == 0
    out = capsys.readouterr()
    manifest = json.loads(out.out)
    names = {j["name"] for j in manifest["jobs"]}
    assert names == {
        "hazard[complex]/input/hybrid",
        "hazard[complex]/input/symbolic",
    }
    covs = {j["name"]: j["n_covered"] for j in manifest["jobs"]}
    assert len(set(covs.values())) == 1  # methods agree on coverage
    # One table row per method — the method is part of the variant key.
    rows = manifest["rows"]
    assert len(rows) == 2
    by_method = {r["cssg_method"]: r for r in rows}
    assert set(by_method) == {"hybrid", "symbolic"}
    assert by_method["hybrid"]["in_cov"] == by_method["symbolic"]["in_cov"]
    assert by_method["symbolic"]["tcsg_states"] > 0
    csv_text = (tmp_path / "art" / "campaign.csv").read_text()
    assert csv_text.count("hazard[complex]") == 2


def test_repro_campaign_cli_rejects_unknown_method(capsys):
    assert campaign_main(["dff", "--cssg-method", "magic"]) == 2
    assert "unknown --cssg-method" in capsys.readouterr().err


def test_repro_campaign_cli_unknown_benchmark(capsys):
    assert campaign_main(["definitely-not-a-benchmark", "--workers", "0"]) == 1
    assert "unknown benchmark" in capsys.readouterr().err


def test_repro_atpg_campaign_alias(tmp_path, capsys):
    from repro.cli import main

    code = main(
        ["--campaign", "dff", "--workers", "0", "--no-cache",
         "--random-walks", "1", "--walk-len", "1", "--quiet"]
    )
    assert code == 0
    assert "dff[complex]" in capsys.readouterr().out


def test_refresh_forces_recompute(tmp_path, capsys):
    args = [
        "dff", "--workers", "0", "--cache-dir", str(tmp_path),
        "--random-walks", "1", "--walk-len", "1", "--quiet",
    ]
    assert campaign_main(args) == 0
    capsys.readouterr()
    assert campaign_main(args + ["--json"]) == 0
    assert json.loads(capsys.readouterr().out)["summary"]["n_cached"] == 2
    assert campaign_main(args + ["--refresh", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["summary"]["n_ran"] == 2
