"""Test-sequence containers and the errors module."""

from repro import errors
from repro.benchmarks_data import load_benchmark
from repro.circuit.faults import input_fault_universe
from repro.core.sequences import Test, TestSet


def test_test_formatting():
    circuit = load_benchmark("celem" if False else "hazard", "complex")
    t = Test((0b1, 0b0), source="random")
    assert t.format_patterns(circuit) == ["1", "0"]
    assert len(t) == 2


def test_testset_accounting():
    circuit = load_benchmark("hazard", "complex")
    faults = input_fault_universe(circuit)
    ts = TestSet(circuit)
    ts.add(Test((1,), faults[:2]))
    ts.add(Test((1, 0), faults[2:3]))
    assert len(ts) == 2
    assert ts.n_vectors == 3
    assert ts.covered_faults() == faults[:3]
    assert [len(t) for t in ts] == [1, 2]


def test_error_hierarchy():
    for exc in (
        errors.NetlistError,
        errors.ParseError,
        errors.SimulationError,
        errors.StateGraphError,
        errors.StgError,
        errors.ConsistencyError,
        errors.SafenessError,
        errors.CscError,
        errors.SynthesisError,
        errors.BddError,
    ):
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.ConsistencyError, errors.StgError)
    assert issubclass(errors.CscError, errors.StgError)


def test_parse_error_position_formatting():
    err = errors.ParseError("boom", "file.g", 12)
    assert str(err) == "file.g:12: boom"
    assert err.filename == "file.g" and err.line == 12
    bare = errors.ParseError("boom")
    assert str(bare) == "boom"


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__ == "1.0.0"
