"""Differential acceptance: stuck-at results are unchanged by the
fault-model registry refactor.

``tests/data/golden_stuckat_digests.json`` holds SHA-256 digests of the
canonical ``AtpgResult.to_json_dict()`` payload (minus the wall-clock
``cpu_seconds`` and the intentionally bumped ``schema_version``) for
both stuck-at models on every Table-1 benchmark, recorded from the
pre-registry implementation at ``seed=0`` with default options.  Any
behavioural drift in universe enumeration, collapsing, simulation
overlays, the three-phase search, or serialization shows up as a digest
mismatch naming the benchmark and model.

Regenerate (only after an *intentional* result change, with the bump
ritual: CODE_VERSION + a fresh review of the diff)::

    PYTHONPATH=src python tests/test_faultmodels_diff.py --regen
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.benchmarks_data import TABLE1_NAMES, load_benchmark
from repro.core.atpg import AtpgOptions, cssg_for
from repro.flow import Flow

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_stuckat_digests.json"


def payload_digest(result) -> str:
    payload = result.to_json_dict()
    payload.pop("cpu_seconds")  # wall clock
    payload.pop("schema_version")  # bumped intentionally (3 -> 4)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def compute_digests(name: str):
    circuit = load_benchmark(name, "complex")
    cssg = cssg_for(circuit, AtpgOptions(seed=0))
    out = {}
    for model in ("output", "input"):
        result = Flow.default().run(
            circuit, AtpgOptions(seed=0, fault_model=model), cssg=cssg
        )
        out[f"{name}/{model}"] = payload_digest(result)
    return out


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_stuckat_results_byte_identical_to_seed(name):
    golden = json.loads(GOLDEN_PATH.read_text())
    for key, digest in compute_digests(name).items():
        assert digest == golden[key], (
            f"{key}: stuck-at payload drifted from the recorded seed "
            "behaviour — if intentional, bump CODE_VERSION and regen "
            "the goldens (see module docstring)"
        )


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing: pass --regen to overwrite the goldens")
    digests = {}
    for bench in TABLE1_NAMES:
        digests.update(compute_digests(bench))
        print(bench, "done", flush=True)
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")
